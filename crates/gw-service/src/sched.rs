//! The weighted-fair slot scheduler.
//!
//! A pure, clock-free state machine (the caller supplies `now`), so the
//! fairness properties are unit-testable under a virtual clock. The
//! discipline is virtual-time weighted fair queueing over *slot-seconds*
//! (the Hadoop-style slot vocabulary from `gw-baseline`, one slot = one
//! node's full lane set):
//!
//! - Each tenant keeps a virtual time. Dispatching one of its jobs
//!   charges `estimated slot-seconds ÷ weight` immediately (the estimate
//!   is an EWMA over the tenant's completed jobs); completion settles the
//!   difference against the measured cost. A tenant with weight 2 thus
//!   accrues virtual time half as fast and receives twice the slot-
//!   seconds of a weight-1 tenant under saturation.
//! - [`FairScheduler::next`] picks the eligible tenant (non-empty queue,
//!   head fits in the free slots) with the smallest virtual time, ties
//!   broken by tenant name — deterministic given identical histories.
//! - A tenant going idle→busy is floored to the minimum active virtual
//!   time, so sleeping never banks credit.
//! - **Starvation override:** when any queued head's age exceeds the
//!   configured deadline, the oldest starving head preempts the virtual-
//!   time order; if it does not fit yet, the scheduler dispatches
//!   *nothing* and lets slots drain until it fits. A starving tenant's
//!   oldest job age is therefore bounded by the deadline plus the
//!   longest residency of the jobs ahead of it.
//!
//! Per-tenant queues are FIFO and heads are never bypassed by their own
//! tenant's younger jobs (no intra-tenant backfill), which keeps each
//! tenant's completion order equal to its submission order.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

/// EWMA factor for the per-tenant cost estimate (weight of the newest
/// completed job's measured slot-seconds).
const EST_ALPHA: f64 = 0.5;

/// Scheduler tuning.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Queue age beyond which a head job overrides the fair order.
    pub starvation_deadline: Duration,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            starvation_deadline: Duration::from_secs(30),
        }
    }
}

/// One dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// The dispatched job.
    pub job: u32,
    /// Its tenant.
    pub tenant: String,
    /// Slots (nodes) the job will occupy.
    pub slots: u32,
    /// How long it sat queued.
    pub queued_for: Duration,
    /// Whether the starvation override (not the fair order) chose it.
    pub starvation_override: bool,
}

#[derive(Debug)]
struct Queued {
    job: u32,
    slots: u32,
    at: Duration,
}

#[derive(Debug)]
struct Tenant {
    weight: u32,
    vtime: f64,
    /// EWMA of measured slot-seconds per completed job.
    est: f64,
    queue: VecDeque<Queued>,
    inflight: usize,
}

#[derive(Debug)]
struct Inflight {
    tenant: String,
    charged: f64,
}

/// Weighted-fair queueing over tenants; see the module docs.
#[derive(Debug)]
pub struct FairScheduler {
    cfg: SchedConfig,
    tenants: BTreeMap<String, Tenant>,
    inflight: HashMap<u32, Inflight>,
    /// System virtual clock: the highest vtime any dispatch has reached.
    /// Wakers are floored to the active minimum when tenants are active,
    /// and to this clock when the whole system was idle — either way, an
    /// idle period banks no credit.
    clock: f64,
}

impl FairScheduler {
    /// An empty scheduler.
    pub fn new(cfg: SchedConfig) -> Self {
        FairScheduler {
            cfg,
            tenants: BTreeMap::new(),
            inflight: HashMap::new(),
            clock: 0.0,
        }
    }

    /// Register `name` with `weight` (≥ 1). Re-registering updates the
    /// weight and keeps the queue.
    pub fn add_tenant(&mut self, name: &str, weight: u32) {
        let weight = weight.max(1);
        self.tenants
            .entry(name.to_string())
            .and_modify(|t| t.weight = weight)
            .or_insert(Tenant {
                weight,
                vtime: 0.0,
                est: 1.0,
                queue: VecDeque::new(),
                inflight: 0,
            });
    }

    /// Whether `name` is registered.
    pub fn has_tenant(&self, name: &str) -> bool {
        self.tenants.contains_key(name)
    }

    /// Jobs queued (not yet dispatched) for `name`.
    pub fn queued(&self, name: &str) -> usize {
        self.tenants.get(name).map_or(0, |t| t.queue.len())
    }

    /// Jobs queued across all tenants.
    pub fn total_queued(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Drain every queued job (shutdown), returning their ids.
    pub fn drain(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        for t in self.tenants.values_mut() {
            out.extend(t.queue.drain(..).map(|q| q.job));
        }
        out
    }

    /// Queue `job` for `tenant`. The caller (admission controller) has
    /// already verified the tenant exists and quotas hold.
    pub fn enqueue(&mut self, tenant: &str, job: u32, slots: u32, now: Duration) {
        let floor = self.min_active_vtime().unwrap_or(self.clock);
        let t = self.tenants.get_mut(tenant).expect("tenant registered");
        if t.queue.is_empty() && t.inflight == 0 {
            // Idle→busy: no banked credit from the idle period.
            t.vtime = t.vtime.max(floor);
        }
        t.queue.push_back(Queued {
            job,
            slots,
            at: now,
        });
    }

    /// Age of the oldest queued job, if any.
    pub fn oldest_age(&self, now: Duration) -> Option<Duration> {
        self.tenants
            .values()
            .filter_map(|t| t.queue.front())
            .map(|q| now.saturating_sub(q.at))
            .max()
    }

    /// Pick the next job to dispatch given `free_slots`, or `None` when
    /// nothing eligible fits (including the starvation-drain case).
    pub fn next(&mut self, now: Duration, free_slots: u32) -> Option<Dispatch> {
        // Starvation override: the oldest over-deadline head wins, or
        // blocks dispatch entirely until it fits.
        let starving = self
            .tenants
            .iter()
            .filter_map(|(name, t)| {
                let head = t.queue.front()?;
                let age = now.saturating_sub(head.at);
                (age > self.cfg.starvation_deadline).then_some((age, name.clone()))
            })
            .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));
        if let Some((_, name)) = starving {
            let fits = self.tenants[&name]
                .queue
                .front()
                .is_some_and(|h| h.slots <= free_slots);
            return fits.then(|| self.dispatch(&name, now, true));
        }

        // Fair order: smallest virtual time among tenants whose head fits.
        let winner = self
            .tenants
            .iter()
            .filter(|(_, t)| t.queue.front().is_some_and(|h| h.slots <= free_slots))
            .min_by(|(an, a), (bn, b)| a.vtime.total_cmp(&b.vtime).then_with(|| an.cmp(bn)))
            .map(|(name, _)| name.clone())?;
        Some(self.dispatch(&winner, now, false))
    }

    /// Settle a dispatched job's measured cost (slot-seconds) against the
    /// provisional charge, and feed the tenant's estimate.
    pub fn complete(&mut self, job: u32, actual_slot_seconds: f64) {
        let Some(inflight) = self.inflight.remove(&job) else {
            return;
        };
        if let Some(t) = self.tenants.get_mut(&inflight.tenant) {
            t.vtime += (actual_slot_seconds - inflight.charged) / t.weight as f64;
            t.est = (1.0 - EST_ALPHA) * t.est + EST_ALPHA * actual_slot_seconds;
            t.inflight = t.inflight.saturating_sub(1);
        }
    }

    fn dispatch(&mut self, tenant: &str, now: Duration, starvation_override: bool) -> Dispatch {
        let t = self.tenants.get_mut(tenant).expect("tenant exists");
        let head = t.queue.pop_front().expect("non-empty queue");
        let charged = t.est;
        t.vtime += charged / t.weight as f64;
        t.inflight += 1;
        self.clock = self.clock.max(t.vtime);
        self.inflight.insert(
            head.job,
            Inflight {
                tenant: tenant.to_string(),
                charged,
            },
        );
        Dispatch {
            job: head.job,
            tenant: tenant.to_string(),
            slots: head.slots,
            queued_for: now.saturating_sub(head.at),
            starvation_override,
        }
    }

    /// Per-tenant queue state for telemetry: `(name, queued, vtime lag)`
    /// where lag is the tenant's virtual time minus the active minimum —
    /// 0 for the next-in-line tenant, larger for tenants that already
    /// consumed more than their share (served later under saturation).
    pub fn tenant_stats(&self) -> Vec<(String, usize, f64)> {
        let floor = self.min_active_vtime().unwrap_or(self.clock);
        self.tenants
            .iter()
            .map(|(name, t)| (name.clone(), t.queue.len(), t.vtime - floor))
            .collect()
    }

    /// Minimum virtual time over tenants that are queued or running.
    fn min_active_vtime(&self) -> Option<f64> {
        self.tenants
            .values()
            .filter(|t| !t.queue.is_empty() || t.inflight > 0)
            .map(|t| t.vtime)
            .min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Virtual-clock saturation harness: `slots` total, every job takes
    /// `job_dur` wall seconds on `job_slots` slots, both tenants' queues
    /// are kept non-empty. Returns per-tenant dispatched slot-seconds.
    fn saturate(
        sched: &mut FairScheduler,
        slots: u32,
        job_slots: u32,
        job_dur: f64,
        dispatches: usize,
    ) -> HashMap<String, f64> {
        let mut now = 0.0f64;
        let mut next_job = 1u32;
        let mut running: Vec<(f64, u32, String)> = Vec::new(); // (ends, job, tenant)
        let mut used = 0u32;
        let mut occupancy: HashMap<String, f64> = HashMap::new();
        let tenants: Vec<String> = sched.tenants.keys().cloned().collect();
        let mut done = 0usize;
        while done < dispatches {
            // Keep every tenant's queue saturated.
            for t in &tenants {
                while sched.queued(t) < 2 {
                    sched.enqueue(t, next_job, job_slots, Duration::from_secs_f64(now));
                    next_job += 1;
                }
            }
            while let Some(d) = sched.next(Duration::from_secs_f64(now), slots - used) {
                used += d.slots;
                *occupancy.entry(d.tenant.clone()).or_default() += job_dur * d.slots as f64;
                running.push((now + job_dur, d.job, d.tenant.clone()));
                done += 1;
                if done >= dispatches {
                    break;
                }
                for t in &tenants {
                    while sched.queued(t) < 2 {
                        sched.enqueue(t, next_job, job_slots, Duration::from_secs_f64(now));
                        next_job += 1;
                    }
                }
            }
            // Advance to the earliest completion.
            running.sort_by(|a, b| a.0.total_cmp(&b.0));
            if let Some((ends, job, _tenant)) = running.first().cloned() {
                now = ends;
                running.remove(0);
                used -= job_slots;
                sched.complete(job, job_dur * job_slots as f64);
            } else {
                break;
            }
        }
        occupancy
    }

    #[test]
    fn weights_two_to_one_converge_within_ten_percent() {
        let mut sched = FairScheduler::new(SchedConfig {
            starvation_deadline: Duration::from_secs(1_000_000),
        });
        sched.add_tenant("heavy", 2);
        sched.add_tenant("light", 1);
        let occ = saturate(&mut sched, 4, 2, 1.0, 300);
        let ratio = occ["heavy"] / occ["light"];
        assert!(
            (ratio - 2.0).abs() <= 0.2,
            "slot occupancy ratio {ratio:.3} strayed more than 10% from 2:1 \
             (heavy {:.1}, light {:.1})",
            occ["heavy"],
            occ["light"]
        );
    }

    #[test]
    fn extreme_weights_still_approximate_their_ratio() {
        let mut sched = FairScheduler::new(SchedConfig {
            starvation_deadline: Duration::from_secs(1_000_000),
        });
        sched.add_tenant("a", 3);
        sched.add_tenant("b", 1);
        let occ = saturate(&mut sched, 6, 2, 1.0, 400);
        let ratio = occ["a"] / occ["b"];
        assert!((ratio - 3.0).abs() <= 0.3, "ratio {ratio:.3} not ~3:1");
    }

    #[test]
    fn starving_tenants_oldest_job_age_is_bounded_by_the_deadline() {
        // A weight-1000 tenant saturates the cluster; the weight-1 tenant
        // submits one job. Without the override it would wait ~1000 jobs;
        // with it, its dispatch age stays ≤ deadline + one job residency.
        let deadline = Duration::from_secs(5);
        let job_dur = 1.0f64;
        let mut sched = FairScheduler::new(SchedConfig {
            starvation_deadline: deadline,
        });
        sched.add_tenant("hog", 1000);
        sched.add_tenant("meek", 1);

        let slots = 2u32;
        let mut now = 0.0f64;
        let mut next_job = 10u32;
        let mut running: Vec<(f64, u32)> = Vec::new();
        let mut used = 0u32;
        sched.enqueue("meek", 1, 2, Duration::from_secs_f64(now));
        let mut meek_dispatch_age = None;
        for _ in 0..10_000 {
            while sched.queued("hog") < 2 {
                sched.enqueue("hog", next_job, 1, Duration::from_secs_f64(now));
                next_job += 1;
            }
            while let Some(d) = sched.next(Duration::from_secs_f64(now), slots - used) {
                used += d.slots;
                running.push((now + job_dur, d.job));
                if d.tenant == "meek" {
                    assert!(d.starvation_override, "meek must win via the override");
                    meek_dispatch_age = Some(d.queued_for);
                }
                while sched.queued("hog") < 2 {
                    sched.enqueue("hog", next_job, 1, Duration::from_secs_f64(now));
                    next_job += 1;
                }
            }
            if meek_dispatch_age.is_some() {
                break;
            }
            running.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (ends, job) = running.remove(0);
            now = ends;
            used -= 1;
            sched.complete(job, job_dur);
        }
        let age = meek_dispatch_age.expect("the starving job must eventually dispatch");
        let bound = deadline + Duration::from_secs_f64(2.0 * job_dur);
        assert!(
            age <= bound,
            "starving job waited {age:?}, bound was {bound:?}"
        );
    }

    #[test]
    fn starvation_drain_blocks_younger_jobs_until_the_big_head_fits() {
        let mut sched = FairScheduler::new(SchedConfig {
            starvation_deadline: Duration::from_secs(1),
        });
        sched.add_tenant("a", 1);
        sched.add_tenant("b", 1);
        sched.enqueue("a", 1, 4, Duration::ZERO); // needs the whole cluster
        sched.enqueue("b", 2, 1, Duration::ZERO);
        let late = Duration::from_secs(10);
        // Only 2 slots free: the starving 4-slot head does not fit, and
        // the scheduler refuses to dispatch b's 1-slot job past it.
        assert_eq!(sched.next(late, 2), None);
        // Once the cluster drains, the starving head goes first.
        let d = sched.next(late, 4).unwrap();
        assert_eq!((d.job, d.starvation_override), (1, true));
        let d = sched.next(late, 4).unwrap();
        assert_eq!(d.job, 2);
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        sched.add_tenant("busy", 1);
        sched.add_tenant("sleeper", 1);
        // busy runs many jobs while sleeper idles.
        for j in 0..10 {
            sched.enqueue("busy", j, 1, Duration::ZERO);
            let d = sched.next(Duration::ZERO, 4).unwrap();
            sched.complete(d.job, 1.0);
        }
        // sleeper wakes: it is floored to busy's vtime, so it cannot
        // monopolize. After one sleeper dispatch the two alternate.
        sched.enqueue("sleeper", 100, 1, Duration::ZERO);
        sched.enqueue("sleeper", 101, 1, Duration::ZERO);
        sched.enqueue("busy", 102, 1, Duration::ZERO);
        sched.enqueue("busy", 103, 1, Duration::ZERO);
        let first = sched.next(Duration::ZERO, 1).unwrap();
        sched.complete(first.job, 1.0);
        let second = sched.next(Duration::ZERO, 1).unwrap();
        assert_ne!(
            first.tenant, second.tenant,
            "a floored waker must alternate, not monopolize"
        );
    }

    #[test]
    fn per_tenant_order_is_fifo() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        sched.add_tenant("t", 1);
        for j in [5, 3, 9] {
            sched.enqueue("t", j, 1, Duration::ZERO);
        }
        let order: Vec<u32> = (0..3)
            .map(|_| sched.next(Duration::ZERO, 4).unwrap().job)
            .collect();
        assert_eq!(order, vec![5, 3, 9]);
    }

    #[test]
    fn drain_empties_every_queue() {
        let mut sched = FairScheduler::new(SchedConfig::default());
        sched.add_tenant("a", 1);
        sched.add_tenant("b", 1);
        sched.enqueue("a", 1, 1, Duration::ZERO);
        sched.enqueue("b", 2, 1, Duration::ZERO);
        let mut drained = sched.drain();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(sched.total_queued(), 0);
    }
}
