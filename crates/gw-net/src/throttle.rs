//! Token-bucket pacing for simulated NICs.
//!
//! Each node owns one [`Throttle`] per direction; every byte sent through
//! the fabric reserves wire time on it. Pacing uses *virtual transmission
//! scheduling*: a message of `b` bytes occupies the link for `b/bandwidth`
//! seconds starting no earlier than the end of the previous message, and
//! the sender sleeps until its transmission completes (store-and-forward).
//! This serialises concurrent senders on the same NIC — the contention that
//! makes the partitioning/shuffle stage a bottleneck at scale.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::profile::NetProfile;

#[derive(Debug)]
struct State {
    /// Virtual time at which the link becomes free.
    next_free: Instant,
}

/// A paced, shared link (NIC direction).
#[derive(Debug)]
pub struct Throttle {
    profile: NetProfile,
    state: Mutex<State>,
}

impl Throttle {
    /// Create a throttle for the given profile.
    pub fn new(profile: NetProfile) -> Self {
        Throttle {
            profile,
            state: Mutex::new(State {
                next_free: Instant::now(),
            }),
        }
    }

    /// The profile this throttle enforces.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// Reserve wire time for `bytes` and sleep until the transmission
    /// completes. Returns the modeled wire duration of this message.
    pub fn acquire(&self, bytes: usize) -> Duration {
        let wire = self.profile.wire_time(bytes);
        if wire.is_zero() {
            return wire;
        }
        let completes_at = {
            let mut st = self.state.lock();
            let now = Instant::now();
            let start = if st.next_free > now {
                st.next_free
            } else {
                now
            };
            let completes = start + wire;
            st.next_free = completes;
            completes
        };
        let now = Instant::now();
        if completes_at > now {
            std::thread::sleep(completes_at - now);
        }
        wire
    }

    /// Modeled cost without pacing (for accounting-only callers).
    pub fn modeled_cost(&self, bytes: usize) -> Duration {
        self.profile.wire_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_throttle_does_not_sleep() {
        let t = Throttle::new(NetProfile::unlimited());
        let start = Instant::now();
        for _ in 0..100 {
            t.acquire(1 << 20);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn pacing_enforces_bandwidth() {
        // 1 MB/s link, send 200 KB → ≥ 200 ms.
        let t = Throttle::new(NetProfile::slow_test(1.0e6));
        let start = Instant::now();
        for _ in 0..4 {
            t.acquire(50_000);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(180),
            "expected ≥180ms, got {elapsed:?}"
        );
    }

    #[test]
    fn concurrent_senders_share_the_link() {
        let t = Arc::new(Throttle::new(NetProfile::slow_test(1.0e6)));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    t.acquire(50_000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 200 KB total over a shared 1 MB/s link: ≥ ~200 ms even with 4
        // concurrent senders (the link serialises them).
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(180),
            "expected ≥180ms, got {elapsed:?}"
        );
    }

    #[test]
    fn acquire_returns_wire_time() {
        let t = Throttle::new(NetProfile::slow_test(1.0e6));
        let d = t.acquire(10_000);
        assert!((d.as_secs_f64() - 0.01).abs() < 1e-6);
    }
}
