//! Push-based shuffle transport.
//!
//! Glasswing "pushes its intermediate data to the reducer node, whereas
//! Hadoop pulls" — as soon as the map pipeline's partitioning stage has
//! sorted a chunk's partition, it ships the run to the owning node, where a
//! receiver thread adds it to the intermediate cache *while the map phase
//! is still running*. The map phase ends, cluster-wide, when every node has
//! received a [`ShuffleMsg::MapDone`] marker from every peer.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;

use gw_intermediate::{IntermediateStore, PartitionId, Run};

use crate::fabric::Endpoint;

/// Identity of one sorted run in the fault-tolerant shuffle. Present only
/// when a recovery plan is armed: it lets receivers de-duplicate runs
/// re-produced by re-executed map tasks and re-request runs lost to node
/// crashes or message drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunTag {
    /// Node that produced (or re-produced) the run.
    pub producer: u32,
    /// Global partition the run belongs to.
    pub partition: u32,
    /// Input block the run was computed from.
    pub block: u32,
    /// Producer-side lane (0 when lanes are merged per block).
    pub lane: u32,
}

/// Messages of the shuffle protocol.
#[derive(Debug)]
pub enum ShuffleMsg {
    /// A sorted run for one of the receiver's partitions.
    Partition {
        /// Partition index at the receiver (global partition id when the
        /// fault-tolerant protocol is armed).
        partition: PartitionId,
        /// Serialized sorted run bytes (refcounted; shipping a run shares
        /// the producer's arena rather than copying it).
        bytes: bytes::Bytes,
        /// Record count of the run.
        records: usize,
        /// Recovery identity; `None` in the plain (fault-free) protocol.
        tag: Option<RunTag>,
    },
    /// The sender has finished its map phase (no more partitions follow).
    MapDone,
    /// Recovery protocol: the sender is missing these runs and asks their
    /// producer to re-serve them from its retention buffer.
    Resend {
        /// Identities of the missing runs.
        ids: Vec<RunTag>,
    },
}

impl ShuffleMsg {
    /// Wire size estimate used for throttling.
    pub fn wire_bytes(&self) -> usize {
        match self {
            ShuffleMsg::Partition { bytes, tag, .. } => {
                bytes.len() + 16 + if tag.is_some() { 16 } else { 0 }
            }
            ShuffleMsg::MapDone => 8,
            ShuffleMsg::Resend { ids } => 8 + 16 * ids.len(),
        }
    }
}

/// Summary of a completed shuffle reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleSummary {
    /// Runs received from peers.
    pub runs: usize,
    /// Total serialized bytes received.
    pub bytes: usize,
    /// `MapDone` markers received.
    pub done_markers: usize,
}

/// Background thread feeding received partitions into the local
/// intermediate store.
pub struct ShuffleReceiver {
    handle: JoinHandle<ShuffleSummary>,
}

impl ShuffleReceiver {
    /// Spawn a receiver on `endpoint` that adds incoming runs to `store`
    /// and completes after `expected_done` `MapDone` markers (normally the
    /// number of peer nodes). The endpoint is shared: this thread receives
    /// while the map pipeline's partitioning stage sends through it.
    pub fn spawn(
        endpoint: Arc<Endpoint<ShuffleMsg>>,
        store: Arc<IntermediateStore>,
        expected_done: usize,
    ) -> Self {
        let handle = std::thread::Builder::new()
            .name(format!("gw-shuffle-rx-{}", endpoint.node()))
            .spawn(move || {
                let mut summary = ShuffleSummary {
                    runs: 0,
                    bytes: 0,
                    done_markers: 0,
                };
                // Duplicate-attempt suppression: tagged runs are admitted
                // once per (partition, block, lane) identity, regardless of
                // which producer's attempt arrives first — speculative
                // clones re-produce byte-identical runs under the same
                // identity. Untagged runs (the plain protocol) pass through
                // unconditionally.
                let mut admitted: HashSet<(u32, u32, u32)> = HashSet::new();
                while summary.done_markers < expected_done {
                    let Some(env) = endpoint.recv() else {
                        // Defensive: cannot normally happen (every endpoint
                        // keeps the fabric alive), but never spin on a dead
                        // channel.
                        break;
                    };
                    match env.payload {
                        ShuffleMsg::Partition {
                            partition,
                            bytes,
                            records,
                            tag,
                        } => {
                            if let Some(t) = tag {
                                if !admitted.insert((t.partition, t.block, t.lane)) {
                                    continue;
                                }
                            }
                            summary.runs += 1;
                            summary.bytes += bytes.len();
                            store.add_run(partition, Run::from_sorted_bytes(bytes, records));
                        }
                        ShuffleMsg::MapDone => summary.done_markers += 1,
                        // The plain receiver has no retention buffer; the
                        // fault-tolerant receiver (gw-core) serves these.
                        ShuffleMsg::Resend { .. } => {}
                    }
                }
                summary
            })
            .expect("spawn shuffle receiver");
        ShuffleReceiver { handle }
    }

    /// Wait for the receiver to finish (all peers done).
    pub fn join(self) -> ShuffleSummary {
        self.handle.join().expect("shuffle receiver panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::profile::NetProfile;
    use gw_intermediate::kv::run_from_pairs;
    use gw_intermediate::IntermediateConfig;
    use gw_storage::NodeId;

    fn store(parts: u32) -> Arc<IntermediateStore> {
        Arc::new(
            IntermediateStore::new(IntermediateConfig {
                num_partitions: parts,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn runs_flow_from_peers_into_store() {
        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(3, NetProfile::unlimited());
        let rx_ep = fabric.endpoint(NodeId(0));
        let store0 = store(2);
        let receiver = ShuffleReceiver::spawn(Arc::new(rx_ep), Arc::clone(&store0), 2);

        let senders: Vec<_> = [NodeId(1), NodeId(2)]
            .into_iter()
            .map(|n| {
                let ep = fabric.endpoint(n);
                std::thread::spawn(move || {
                    let run = run_from_pairs([(format!("from-{n}").as_bytes(), b"1".as_slice())]);
                    let records = run.records();
                    let bytes = run.into_shared();
                    let msg = ShuffleMsg::Partition {
                        partition: (n.0 - 1) % 2,
                        bytes,
                        records,
                        tag: None,
                    };
                    let wire = msg.wire_bytes();
                    ep.send(NodeId(0), msg, wire);
                    ep.send(NodeId(0), ShuffleMsg::MapDone, 8);
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }
        let summary = receiver.join();
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.done_markers, 2);
        store0.finish_map().expect("finish_map");
        assert_eq!(store0.partition_records(0) + store0.partition_records(1), 2);
    }

    #[test]
    fn duplicate_tagged_runs_are_admitted_once() {
        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(3, NetProfile::unlimited());
        let rx_ep = fabric.endpoint(NodeId(0));
        let store0 = store(1);
        let receiver = ShuffleReceiver::spawn(Arc::new(rx_ep), Arc::clone(&store0), 2);
        // Two producers race the same run identity (a speculative clone):
        // only the first arrival is admitted, whoever produced it.
        for producer in [1u32, 2] {
            let ep = fabric.endpoint(NodeId(producer));
            let run = run_from_pairs([(b"key".as_slice(), b"1".as_slice())]);
            let records = run.records();
            let bytes = run.into_shared();
            let msg = ShuffleMsg::Partition {
                partition: 0,
                bytes,
                records,
                tag: Some(RunTag {
                    producer,
                    partition: 0,
                    block: 7,
                    lane: 0,
                }),
            };
            let wire = msg.wire_bytes();
            ep.send(NodeId(0), msg, wire);
            ep.send(NodeId(0), ShuffleMsg::MapDone, 8);
        }
        let summary = receiver.join();
        assert_eq!(summary.done_markers, 2);
        assert_eq!(summary.runs, 1, "duplicate identity suppressed");
        store0.finish_map().expect("finish_map");
        assert_eq!(store0.partition_records(0), 1);
    }

    #[test]
    fn receiver_stops_exactly_at_expected_done_markers() {
        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(2, NetProfile::unlimited());
        let rx_ep = fabric.endpoint(NodeId(0));
        let tx_ep = fabric.endpoint(NodeId(1));
        let store0 = store(1);
        let receiver = ShuffleReceiver::spawn(Arc::new(rx_ep), Arc::clone(&store0), 1);
        tx_ep.send(NodeId(0), ShuffleMsg::MapDone, 8);
        // Messages after the final marker are ignored by the (finished)
        // receiver rather than consumed.
        let summary = receiver.join();
        assert_eq!(summary.done_markers, 1);
        assert_eq!(summary.runs, 0);
    }

    #[test]
    fn zero_expected_done_returns_immediately() {
        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(1, NetProfile::unlimited());
        let rx_ep = fabric.endpoint(NodeId(0));
        let store0 = store(1);
        let receiver = ShuffleReceiver::spawn(Arc::new(rx_ep), store0, 0);
        let summary = receiver.join();
        assert_eq!(summary.runs, 0);
    }
}
