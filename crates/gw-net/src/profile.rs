//! Network profiles matching the paper's cluster interconnects.

use std::time::Duration;

/// Bandwidth/latency description of a NIC + link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// Sustained point-to-point bandwidth in bytes/second.
    /// `f64::INFINITY` disables throttling.
    pub bandwidth: f64,
    /// One-way message latency.
    pub latency: Duration,
}

impl NetProfile {
    /// Gigabit Ethernet: ~117 MB/s effective, ~50 µs latency.
    pub fn gigabit_ethernet() -> Self {
        NetProfile {
            bandwidth: 117.0e6,
            latency: Duration::from_micros(50),
        }
    }

    /// QDR InfiniBand used as IP-over-InfiniBand: the IP stack caps the
    /// 32 Gbit/s link at roughly 1.2 GB/s with ~20 µs latency.
    pub fn ipoib_qdr() -> Self {
        NetProfile {
            bandwidth: 1.2e9,
            latency: Duration::from_micros(20),
        }
    }

    /// Unthrottled fabric for correctness-only runs and tests.
    pub fn unlimited() -> Self {
        NetProfile {
            bandwidth: f64::INFINITY,
            latency: Duration::ZERO,
        }
    }

    /// A deliberately slow profile for tests that need to observe pacing
    /// without large payloads.
    pub fn slow_test(bytes_per_sec: f64) -> Self {
        NetProfile {
            bandwidth: bytes_per_sec,
            latency: Duration::ZERO,
        }
    }

    /// Modeled wire time for a message of `bytes`.
    pub fn wire_time(&self, bytes: usize) -> Duration {
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
        } else {
            self.latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipoib_is_faster_than_gbe() {
        let n = 100 << 20;
        assert!(NetProfile::ipoib_qdr().wire_time(n) < NetProfile::gigabit_ethernet().wire_time(n));
    }

    #[test]
    fn unlimited_is_free() {
        assert_eq!(NetProfile::unlimited().wire_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn wire_time_includes_latency() {
        let p = NetProfile::gigabit_ethernet();
        assert!(p.wire_time(0) >= Duration::from_micros(50));
    }
}
