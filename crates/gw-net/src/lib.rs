//! In-process cluster fabric for the Glasswing reproduction.
//!
//! The paper's cluster is connected by Gigabit Ethernet and QDR InfiniBand
//! (used as IP-over-InfiniBand). This crate replaces the physical network
//! with an in-process fabric whose links are bounded channels wrapped in a
//! token-bucket [`throttle::Throttle`], so the *protocol* (Glasswing's
//! push-based shuffle vs. Hadoop's pull) executes for real while bandwidth
//! and latency follow a configurable [`profile::NetProfile`].
//!
//! The key behavioural property preserved from the paper: Glasswing
//! "pushes its intermediate data to the reducer node, whereas Hadoop pulls
//! its intermediate data" — push overlaps the shuffle with the map phase,
//! pull serialises it after map completion.

pub mod fabric;
pub mod profile;
pub mod throttle;
pub mod transport;

pub use fabric::{Endpoint, Fabric, NetFaultAction, NetFaultHook, NetStats};
pub use profile::NetProfile;
pub use throttle::Throttle;
pub use transport::{RunTag, ShuffleMsg, ShuffleReceiver, ShuffleSummary};

pub use gw_storage::NodeId;
