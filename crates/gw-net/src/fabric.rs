//! The in-process cluster fabric: one inbox per node, paced egress.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use crate::profile::NetProfile;
use crate::throttle::Throttle;
use gw_storage::NodeId;
use gw_trace::{CounterId, LaneId, Realm, Tracer};

/// A message in flight.
#[derive(Debug)]
pub struct Envelope<T> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub payload: T,
}

/// Per-node traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicUsize,
    bytes_received: AtomicUsize,
    messages_sent: AtomicUsize,
}

impl NetStats {
    /// Bytes sent by this node.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received by this node.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Messages sent by this node.
    pub fn messages_sent(&self) -> usize {
        self.messages_sent.load(Ordering::Relaxed)
    }
}

/// Outcome of consulting a [`NetFaultHook`] for one data-class message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message (the bytes still left the NIC).
    Drop,
    /// Deliver after sleeping for the given duration.
    Delay(std::time::Duration),
}

/// Chaos hook for injecting message loss and delay. Only *data-class*
/// traffic sent through [`Endpoint::send_data`] consults the hook; control
/// messages (end-of-map markers, resend requests, re-served runs) use
/// [`Endpoint::send`] and stay reliable, so the recovery protocol itself
/// cannot be wedged by the faults it is recovering from.
pub trait NetFaultHook: Send + Sync {
    /// Decide the fate of a data message from `from` to `to`.
    fn on_data_message(&self, from: NodeId, to: NodeId) -> NetFaultAction;
}

struct Shared<T> {
    inboxes: Vec<Sender<Envelope<T>>>,
    egress: Vec<Throttle>,
    stats: Vec<NetStats>,
    fault: Option<Arc<dyn NetFaultHook>>,
    tracer: RwLock<Option<Arc<Tracer>>>,
}

/// A cluster fabric for `n` nodes carrying messages of type `T`.
pub struct Fabric<T> {
    shared: Arc<Shared<T>>,
    receivers: Vec<Option<Receiver<Envelope<T>>>>,
}

impl<T: Send + 'static> Fabric<T> {
    /// Build a fabric where every node's egress NIC follows `profile`.
    pub fn new(nodes: u32, profile: NetProfile) -> Self {
        Self::with_fault_hook(nodes, profile, None)
    }

    /// Like [`Fabric::new`], with a chaos fault hook armed on data-class
    /// traffic (see [`NetFaultHook`]).
    pub fn with_fault_hook(
        nodes: u32,
        profile: NetProfile,
        fault: Option<Arc<dyn NetFaultHook>>,
    ) -> Self {
        let mut inboxes = Vec::with_capacity(nodes as usize);
        let mut receivers = Vec::with_capacity(nodes as usize);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(Some(rx));
        }
        let egress = (0..nodes).map(|_| Throttle::new(profile)).collect();
        let stats = (0..nodes).map(|_| NetStats::default()).collect();
        Fabric {
            shared: Arc::new(Shared {
                inboxes,
                egress,
                stats,
                fault,
                tracer: RwLock::new(None),
            }),
            receivers,
        }
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> u32 {
        self.shared.inboxes.len() as u32
    }

    /// Take node `n`'s endpoint. Each endpoint can be taken once; the
    /// endpoint is `Send` and moves into the node's runtime thread.
    ///
    /// # Panics
    /// Panics if the endpoint was already taken or `n` is out of range.
    pub fn endpoint(&mut self, n: NodeId) -> Endpoint<T> {
        let rx = self.receivers[n.index()]
            .take()
            .expect("endpoint already taken");
        Endpoint {
            node: n,
            shared: Arc::clone(&self.shared),
            rx,
        }
    }

    /// Traffic counters for node `n`.
    pub fn stats(&self, n: NodeId) -> &NetStats {
        &self.shared.stats[n.index()]
    }

    /// Arm (or disarm, with `None`) the observability tracer. While
    /// armed, every endpoint emits shuffle send/recv counters on its
    /// node's net lanes.
    pub fn arm_tracer(&self, tracer: Option<Arc<Tracer>>) {
        *self.shared.tracer.write() = tracer;
    }
}

/// One node's attachment to the fabric.
pub struct Endpoint<T> {
    node: NodeId,
    shared: Arc<Shared<T>>,
    rx: Receiver<Envelope<T>>,
}

impl<T: Send + 'static> Endpoint<T> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Count one departing message on this node's egress net lane.
    fn trace_send(&self, wire_bytes: usize) {
        if let Some(t) = self.shared.tracer.read().as_ref() {
            let lane = t.lane(LaneId {
                job: 0,
                node: self.node.0,
                realm: Realm::Net,
            });
            lane.count(CounterId::ShuffleSendMsgs, 1);
            lane.count(CounterId::ShuffleSendBytes, wire_bytes as u64);
        }
    }

    /// Count one arriving message on this node's ingress net lane.
    fn trace_recv(&self) {
        if let Some(t) = self.shared.tracer.read().as_ref() {
            t.lane(LaneId {
                job: 0,
                node: self.node.0,
                realm: Realm::NetRx,
            })
            .count(CounterId::ShuffleRecvMsgs, 1);
        }
    }

    /// Send `payload` (`wire_bytes` long on the wire) to node `to`,
    /// blocking for the modeled transmission time on this node's egress
    /// link. Returns the modeled wire duration.
    ///
    /// # Panics
    /// Panics if `to` is out of range. Delivery to a dropped endpoint is
    /// silently discarded (the peer has left the computation).
    pub fn send(&self, to: NodeId, payload: T, wire_bytes: usize) -> std::time::Duration {
        let stats = &self.shared.stats[self.node.index()];
        stats.bytes_sent.fetch_add(wire_bytes, Ordering::Relaxed);
        stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.trace_send(wire_bytes);
        self.shared.stats[to.index()]
            .bytes_received
            .fetch_add(wire_bytes, Ordering::Relaxed);
        let wire = self.shared.egress[self.node.index()].acquire(wire_bytes);
        let _ = self.shared.inboxes[to.index()].send(Envelope {
            from: self.node,
            payload,
        });
        wire
    }

    /// Send a *data-class* message: like [`Endpoint::send`], but consults
    /// the fabric's chaos fault hook (if armed), which may drop the
    /// message or delay its delivery. Dropped messages are still charged
    /// to the sender's stats and throttle — the bytes left the NIC.
    pub fn send_data(&self, to: NodeId, payload: T, wire_bytes: usize) -> std::time::Duration {
        if let Some(hook) = &self.shared.fault {
            match hook.on_data_message(self.node, to) {
                NetFaultAction::Deliver => {}
                NetFaultAction::Drop => {
                    let stats = &self.shared.stats[self.node.index()];
                    stats.bytes_sent.fetch_add(wire_bytes, Ordering::Relaxed);
                    stats.messages_sent.fetch_add(1, Ordering::Relaxed);
                    self.trace_send(wire_bytes);
                    return self.shared.egress[self.node.index()].acquire(wire_bytes);
                }
                NetFaultAction::Delay(d) => std::thread::sleep(d),
            }
        }
        self.send(to, payload, wire_bytes)
    }

    /// Receive the next message, blocking until one arrives or all senders
    /// are gone (returns `None`).
    pub fn recv(&self) -> Option<Envelope<T>> {
        let env = self.rx.recv().ok();
        if env.is_some() {
            self.trace_recv();
        }
        env
    }

    /// Receive with a timeout; `Ok(None)` means all senders are gone.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<Envelope<T>>, RecvTimeoutError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                self.trace_recv();
                Ok(Some(env))
            }
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(e @ RecvTimeoutError::Timeout) => Err(e),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<T>> {
        let env = self.rx.try_recv().ok();
        if env.is_some() {
            self.trace_recv();
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let mut fabric: Fabric<String> = Fabric::new(3, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send(NodeId(1), "hello".to_string(), 5);
        let env = b.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.payload, "hello");
    }

    #[test]
    fn stats_track_traffic() {
        let mut fabric: Fabric<u32> = Fabric::new(2, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send(NodeId(1), 42, 1000);
        a.send(NodeId(1), 43, 500);
        assert_eq!(fabric.stats(NodeId(0)).bytes_sent(), 1500);
        assert_eq!(fabric.stats(NodeId(0)).messages_sent(), 2);
        assert_eq!(fabric.stats(NodeId(1)).bytes_received(), 1500);
        drop(b);
    }

    #[test]
    fn send_to_self_works() {
        let mut fabric: Fabric<u8> = Fabric::new(1, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        a.send(NodeId(0), 7, 1);
        assert_eq!(a.recv().unwrap().payload, 7);
    }

    #[test]
    #[should_panic(expected = "endpoint already taken")]
    fn endpoint_can_only_be_taken_once() {
        let mut fabric: Fabric<u8> = Fabric::new(1, NetProfile::unlimited());
        let _a = fabric.endpoint(NodeId(0));
        let _b = fabric.endpoint(NodeId(0));
    }

    #[test]
    fn random_traffic_is_conserved() {
        // Every sent message arrives exactly once at its addressee, and
        // the byte accounting matches, under arbitrary traffic patterns.
        use std::collections::HashMap;
        let nodes = 4u32;
        let mut fabric: Fabric<(u32, u64)> = Fabric::new(nodes, NetProfile::unlimited());
        let endpoints: Vec<_> = (0..nodes)
            .map(|n| Arc::new(fabric.endpoint(NodeId(n))))
            .collect();
        let mut expected: HashMap<u32, Vec<u64>> = HashMap::new();
        // Deterministic pseudo-random pattern.
        let mut x = 0x12345678u64;
        for msg_id in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let from = (x >> 33) as u32 % nodes;
            let to = (x >> 17) as u32 % nodes;
            endpoints[from as usize].send(NodeId(to), (to, msg_id), 16);
            expected.entry(to).or_default().push(msg_id);
        }
        for (n, ep) in endpoints.iter().enumerate() {
            let want = expected.remove(&(n as u32)).unwrap_or_default();
            let mut got = Vec::new();
            for _ in 0..want.len() {
                let env = ep.recv().unwrap();
                assert_eq!(env.payload.0, n as u32, "misrouted message");
                got.push(env.payload.1);
            }
            assert!(ep.try_recv().is_none(), "extra messages at node {n}");
            assert_eq!(got.len(), want.len());
            // FIFO per (sender, receiver) pair is not global FIFO; compare
            // as multisets.
            let mut got_s = got;
            let mut want_s = want;
            got_s.sort_unstable();
            want_s.sort_unstable();
            assert_eq!(got_s, want_s);
        }
        let sent: usize = (0..nodes)
            .map(|n| fabric.stats(NodeId(n)).messages_sent())
            .sum();
        assert_eq!(sent, 500);
        use std::sync::Arc;
    }

    #[test]
    fn fault_hook_drops_and_delays_data_messages_only() {
        use std::sync::atomic::AtomicUsize;
        struct DropFirst(AtomicUsize);
        impl NetFaultHook for DropFirst {
            fn on_data_message(&self, _from: NodeId, _to: NodeId) -> NetFaultAction {
                match self.0.fetch_add(1, Ordering::Relaxed) {
                    0 => NetFaultAction::Drop,
                    1 => NetFaultAction::Delay(std::time::Duration::from_millis(10)),
                    _ => NetFaultAction::Deliver,
                }
            }
        }
        let mut fabric: Fabric<u32> = Fabric::with_fault_hook(
            2,
            NetProfile::unlimited(),
            Some(Arc::new(DropFirst(AtomicUsize::new(0)))),
        );
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send_data(NodeId(1), 1, 8); // dropped
        let t0 = std::time::Instant::now();
        a.send_data(NodeId(1), 2, 8); // delayed
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        a.send_data(NodeId(1), 3, 8); // delivered
        a.send(NodeId(1), 4, 8); // control path: never consults the hook
        assert_eq!(b.recv().unwrap().payload, 2);
        assert_eq!(b.recv().unwrap().payload, 3);
        assert_eq!(b.recv().unwrap().payload, 4);
        // Dropped messages are still charged to the sender.
        assert_eq!(fabric.stats(NodeId(0)).messages_sent(), 4);
    }

    #[test]
    fn armed_tracer_counts_shuffle_traffic() {
        let mut fabric: Fabric<u8> = Fabric::new(2, NetProfile::unlimited());
        let tracer = Arc::new(Tracer::new());
        fabric.arm_tracer(Some(Arc::clone(&tracer)));
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send(NodeId(1), 1, 100);
        a.send(NodeId(1), 2, 50);
        assert!(b.recv().is_some());
        assert!(b.recv().is_some());
        fabric.arm_tracer(None);
        a.send(NodeId(1), 3, 10); // disarmed: charged to stats only
        let m = tracer.finish().metrics();
        assert_eq!(m.counter(0, CounterId::ShuffleSendMsgs), 2);
        assert_eq!(m.counter(0, CounterId::ShuffleSendBytes), 150);
        assert_eq!(m.counter(1, CounterId::ShuffleRecvMsgs), 2);
        assert_eq!(fabric.stats(NodeId(0)).messages_sent(), 3);
    }

    #[test]
    fn cross_thread_messaging() {
        let mut fabric: Fabric<usize> = Fabric::new(2, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let sender = std::thread::spawn(move || {
            for i in 0..100 {
                a.send(NodeId(1), i, 8);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(b.recv().unwrap().payload);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
