//! The in-process cluster fabric: one inbox per node, paced egress.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::profile::NetProfile;
use crate::throttle::Throttle;
use gw_storage::NodeId;

/// A message in flight.
#[derive(Debug)]
pub struct Envelope<T> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub payload: T,
}

/// Per-node traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicUsize,
    bytes_received: AtomicUsize,
    messages_sent: AtomicUsize,
}

impl NetStats {
    /// Bytes sent by this node.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received by this node.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Messages sent by this node.
    pub fn messages_sent(&self) -> usize {
        self.messages_sent.load(Ordering::Relaxed)
    }
}

struct Shared<T> {
    inboxes: Vec<Sender<Envelope<T>>>,
    egress: Vec<Throttle>,
    stats: Vec<NetStats>,
}

/// A cluster fabric for `n` nodes carrying messages of type `T`.
pub struct Fabric<T> {
    shared: Arc<Shared<T>>,
    receivers: Vec<Option<Receiver<Envelope<T>>>>,
}

impl<T: Send + 'static> Fabric<T> {
    /// Build a fabric where every node's egress NIC follows `profile`.
    pub fn new(nodes: u32, profile: NetProfile) -> Self {
        let mut inboxes = Vec::with_capacity(nodes as usize);
        let mut receivers = Vec::with_capacity(nodes as usize);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(Some(rx));
        }
        let egress = (0..nodes).map(|_| Throttle::new(profile)).collect();
        let stats = (0..nodes).map(|_| NetStats::default()).collect();
        Fabric {
            shared: Arc::new(Shared {
                inboxes,
                egress,
                stats,
            }),
            receivers,
        }
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> u32 {
        self.shared.inboxes.len() as u32
    }

    /// Take node `n`'s endpoint. Each endpoint can be taken once; the
    /// endpoint is `Send` and moves into the node's runtime thread.
    ///
    /// # Panics
    /// Panics if the endpoint was already taken or `n` is out of range.
    pub fn endpoint(&mut self, n: NodeId) -> Endpoint<T> {
        let rx = self.receivers[n.index()]
            .take()
            .expect("endpoint already taken");
        Endpoint {
            node: n,
            shared: Arc::clone(&self.shared),
            rx,
        }
    }

    /// Traffic counters for node `n`.
    pub fn stats(&self, n: NodeId) -> &NetStats {
        &self.shared.stats[n.index()]
    }
}

/// One node's attachment to the fabric.
pub struct Endpoint<T> {
    node: NodeId,
    shared: Arc<Shared<T>>,
    rx: Receiver<Envelope<T>>,
}

impl<T: Send + 'static> Endpoint<T> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send `payload` (`wire_bytes` long on the wire) to node `to`,
    /// blocking for the modeled transmission time on this node's egress
    /// link. Returns the modeled wire duration.
    ///
    /// # Panics
    /// Panics if `to` is out of range. Delivery to a dropped endpoint is
    /// silently discarded (the peer has left the computation).
    pub fn send(&self, to: NodeId, payload: T, wire_bytes: usize) -> std::time::Duration {
        let stats = &self.shared.stats[self.node.index()];
        stats.bytes_sent.fetch_add(wire_bytes, Ordering::Relaxed);
        stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.shared.stats[to.index()]
            .bytes_received
            .fetch_add(wire_bytes, Ordering::Relaxed);
        let wire = self.shared.egress[self.node.index()].acquire(wire_bytes);
        let _ = self.shared.inboxes[to.index()].send(Envelope {
            from: self.node,
            payload,
        });
        wire
    }

    /// Receive the next message, blocking until one arrives or all senders
    /// are gone (returns `None`).
    pub fn recv(&self) -> Option<Envelope<T>> {
        self.rx.recv().ok()
    }

    /// Receive with a timeout; `Ok(None)` means all senders are gone.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<Envelope<T>>, RecvTimeoutError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(e @ RecvTimeoutError::Timeout) => Err(e),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<T>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let mut fabric: Fabric<String> = Fabric::new(3, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send(NodeId(1), "hello".to_string(), 5);
        let env = b.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.payload, "hello");
    }

    #[test]
    fn stats_track_traffic() {
        let mut fabric: Fabric<u32> = Fabric::new(2, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        a.send(NodeId(1), 42, 1000);
        a.send(NodeId(1), 43, 500);
        assert_eq!(fabric.stats(NodeId(0)).bytes_sent(), 1500);
        assert_eq!(fabric.stats(NodeId(0)).messages_sent(), 2);
        assert_eq!(fabric.stats(NodeId(1)).bytes_received(), 1500);
        drop(b);
    }

    #[test]
    fn send_to_self_works() {
        let mut fabric: Fabric<u8> = Fabric::new(1, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        a.send(NodeId(0), 7, 1);
        assert_eq!(a.recv().unwrap().payload, 7);
    }

    #[test]
    #[should_panic(expected = "endpoint already taken")]
    fn endpoint_can_only_be_taken_once() {
        let mut fabric: Fabric<u8> = Fabric::new(1, NetProfile::unlimited());
        let _a = fabric.endpoint(NodeId(0));
        let _b = fabric.endpoint(NodeId(0));
    }

    #[test]
    fn random_traffic_is_conserved() {
        // Every sent message arrives exactly once at its addressee, and
        // the byte accounting matches, under arbitrary traffic patterns.
        use std::collections::HashMap;
        let nodes = 4u32;
        let mut fabric: Fabric<(u32, u64)> = Fabric::new(nodes, NetProfile::unlimited());
        let endpoints: Vec<_> = (0..nodes).map(|n| Arc::new(fabric.endpoint(NodeId(n)))).collect();
        let mut expected: HashMap<u32, Vec<u64>> = HashMap::new();
        // Deterministic pseudo-random pattern.
        let mut x = 0x12345678u64;
        for msg_id in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let from = (x >> 33) as u32 % nodes;
            let to = (x >> 17) as u32 % nodes;
            endpoints[from as usize].send(NodeId(to), (to, msg_id), 16);
            expected.entry(to).or_default().push(msg_id);
        }
        for (n, ep) in endpoints.iter().enumerate() {
            let want = expected.remove(&(n as u32)).unwrap_or_default();
            let mut got = Vec::new();
            for _ in 0..want.len() {
                let env = ep.recv().unwrap();
                assert_eq!(env.payload.0, n as u32, "misrouted message");
                got.push(env.payload.1);
            }
            assert!(ep.try_recv().is_none(), "extra messages at node {n}");
            assert_eq!(got.len(), want.len());
            // FIFO per (sender, receiver) pair is not global FIFO; compare
            // as multisets.
            let mut got_s = got;
            let mut want_s = want;
            got_s.sort_unstable();
            want_s.sort_unstable();
            assert_eq!(got_s, want_s);
        }
        let sent: usize = (0..nodes).map(|n| fabric.stats(NodeId(n)).messages_sent()).sum();
        assert_eq!(sent, 500);
        use std::sync::Arc;
    }

    #[test]
    fn cross_thread_messaging() {
        let mut fabric: Fabric<usize> = Fabric::new(2, NetProfile::unlimited());
        let a = fabric.endpoint(NodeId(0));
        let b = fabric.endpoint(NodeId(1));
        let sender = std::thread::spawn(move || {
            for i in 0..100 {
                a.send(NodeId(1), i, 8);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(b.recv().unwrap().payload);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
