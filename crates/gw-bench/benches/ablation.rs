//! Ablation studies of the design decisions DESIGN.md calls out.
//!
//! 1. **Buffering level** (paper §III-D): single/double/triple buffering
//!    over the measured per-chunk stage times of a real WC run, replayed
//!    through the schedule model, plus the simulator at paper scale.
//! 2. **Network fabric**: the DAS-4 cluster has both Gigabit Ethernet and
//!    QDR InfiniBand; TeraSort's shuffle is where the difference shows.
//! 3. **Intermediate compression** (paper §III-B stores partitions
//!    "in a serialized and compressed form"): spill bytes and job time
//!    with the codec on vs off, on the real engine.
//! 4. **Push vs pull shuffle**: Glasswing's push overlap vs a Hadoop-style
//!    post-map shuffle, isolated in the simulator by zeroing every other
//!    difference.

use std::sync::Arc;

use gw_apps::WordCount;
use gw_bench::{bench_cfg, corpus_cluster_paced, rule, secs, sim_secs};
use gw_core::schedule::{pipeline_makespan, ChunkTimes};
use gw_core::{Buffering, CollectorKind};
use gw_sim::sweep::{simulate, FrameworkKind};
use gw_sim::{AppParams, ClusterParams};

fn main() {
    // ---------------- 1. Buffering level ----------------
    println!("=== Ablation 1: pipeline buffering level (paper §III-D) ===\n");
    let cluster = corpus_cluster_paced(60_000, 40_000, 1, 256 << 10);
    let mut cfg = bench_cfg();
    cfg.collector = CollectorKind::HashTable;
    let report = cluster
        .run(Arc::new(WordCount::new()), &cfg)
        .expect("job failed");
    let chunks: Vec<ChunkTimes> = report.nodes[0]
        .map_samples
        .iter()
        .map(|s| [s[0].wall, s[1].wall, s[2].wall, s[3].wall, s[4].wall])
        .collect();
    println!("WC measured per-chunk times replayed through the schedule model:");
    rule(44);
    println!("{:<10} | {:>16}", "buffering", "map makespan (s)");
    rule(44);
    let mut makespans = Vec::new();
    for (label, b) in [
        ("single", Buffering::Single),
        ("double", Buffering::Double),
        ("triple", Buffering::Triple),
    ] {
        let m = pipeline_makespan(&chunks, b);
        println!("{label:<10} | {:>16}", secs(m));
        makespans.push(m);
    }
    rule(44);
    println!(
        "double recovers most of the win over single: {} (triple adds {:.1}%)\n",
        ok(makespans[1] < makespans[0]),
        (makespans[1].as_secs_f64() - makespans[2].as_secs_f64())
            / makespans[1].as_secs_f64().max(1e-9)
            * 100.0
    );

    // ---------------- 2. Network fabric ----------------
    println!("=== Ablation 2: GbE vs QDR IPoIB (TeraSort, 64 nodes, simulator) ===\n");
    // The interesting result: Glasswing's *push* shuffle overlaps the wire
    // time with the (disk-bound) map pipeline, so the slow fabric hides;
    // Hadoop's *pull* shuffle sits serially on the critical path and pays
    // the fabric difference in full.
    let ts = AppParams::ts();
    let mut gbe = ClusterParams::das4_cpu_hdfs();
    gbe.net_bw_mb = 117.0; // Gigabit Ethernet
    let ipoib = ClusterParams::das4_cpu_hdfs();
    rule(56);
    println!(
        "{:<10} | {:>14} | {:>14}",
        "fabric", "glasswing (s)", "hadoop (s)"
    );
    rule(56);
    let mut gw_totals = Vec::new();
    let mut hd_totals = Vec::new();
    for (label, c) in [("gbe", &gbe), ("ipoib-qdr", &ipoib)] {
        let gw = simulate(FrameworkKind::Glasswing, &ts, c, 64).total;
        let hd = simulate(FrameworkKind::Hadoop, &ts, c, 64).total;
        println!("{label:<10} | {:>14} | {:>14}", sim_secs(gw), sim_secs(hd));
        gw_totals.push(gw);
        hd_totals.push(hd);
    }
    rule(56);
    let gw_penalty = gw_totals[0] / gw_totals[1] - 1.0;
    let hd_penalty = hd_totals[0] / hd_totals[1] - 1.0;
    println!(
        "GbE penalty: glasswing {:.1}% (hidden by push overlap), hadoop {:.1}% \
         (serial pull)\nhadoop pays more for the slow fabric: {}\n",
        gw_penalty * 100.0,
        hd_penalty * 100.0,
        ok(hd_penalty > gw_penalty + 0.05)
    );

    // ---------------- 3. Intermediate compression ----------------
    println!("=== Ablation 3: intermediate-data compression (real engine) ===\n");
    rule(56);
    println!(
        "{:<12} | {:>14} | {:>14} | {:>9}",
        "codec", "raw spill (B)", "disk spill (B)", "ratio"
    );
    rule(56);
    let mut ratios = Vec::new();
    for (label, compress) in [("lz-on", true), ("lz-off", false)] {
        let cluster = corpus_cluster_paced(60_000, 40_000, 1, 256 << 10);
        let mut cfg = bench_cfg();
        cfg.collector = CollectorKind::BufferPool;
        cfg.compress_intermediate = compress;
        cfg.cache_threshold = 1 << 20; // force spills
        let report = cluster
            .run(Arc::new(WordCount::without_combiner()), &cfg)
            .expect("job failed");
        let raw: usize = report
            .nodes
            .iter()
            .map(|n| n.intermediate.spilled_raw)
            .sum();
        let disk: usize = report
            .nodes
            .iter()
            .map(|n| n.intermediate.spilled_disk)
            .sum();
        let ratio = disk as f64 / raw.max(1) as f64;
        println!("{label:<12} | {raw:>14} | {disk:>14} | {ratio:>9.3}");
        ratios.push(ratio);
    }
    rule(56);
    println!(
        "codec shrinks sorted intermediate runs: {}\n",
        ok(ratios[0] < 0.8 && (ratios[1] - 1.0).abs() < 1e-9)
    );

    // ---------------- 4. Push vs pull shuffle ----------------
    println!("=== Ablation 4: push vs pull shuffle (simulator, WC) ===\n");
    // Pull-only Hadoop variant with every other handicap removed: native
    // kernel speed, no JVM/task/job overheads — isolating the shuffle
    // placement and the missing pipeline overlap.
    let wc = AppParams::wc();
    let base = ClusterParams::das4_cpu_hdfs();
    let mut pull_only = base.clone();
    pull_only.hadoop_jvm_factor = 1.0;
    pull_only.hadoop_task_startup = 0.0;
    pull_only.hadoop_job_fixed = 0.0;
    pull_only.hadoop_shuffle_seek = 0.0;
    rule(56);
    println!(
        "{:<22} | {:>10} | {:>10}",
        "configuration", "16 nodes", "64 nodes"
    );
    rule(56);
    let gw16 = simulate(FrameworkKind::Glasswing, &wc, &base, 16).total;
    let gw64 = simulate(FrameworkKind::Glasswing, &wc, &base, 64).total;
    println!(
        "{:<22} | {:>10} | {:>10}",
        "glasswing (push)",
        sim_secs(gw16),
        sim_secs(gw64)
    );
    let p16 = simulate(FrameworkKind::Hadoop, &wc, &pull_only, 16).total;
    let p64 = simulate(FrameworkKind::Hadoop, &wc, &pull_only, 64).total;
    println!(
        "{:<22} | {:>10} | {:>10}",
        "pull, no-overlap only",
        sim_secs(p16),
        sim_secs(p64)
    );
    let h16 = simulate(FrameworkKind::Hadoop, &wc, &base, 16).total;
    let h64 = simulate(FrameworkKind::Hadoop, &wc, &base, 64).total;
    println!(
        "{:<22} | {:>10} | {:>10}",
        "full hadoop model",
        sim_secs(h16),
        sim_secs(h64)
    );
    rule(56);
    println!(
        "pull + lost overlap alone costs {:.0}% at 64 nodes; JVM/task/job\noverheads make up the rest of the {:.2}x gap",
        (p64 / gw64 - 1.0) * 100.0,
        h64 / gw64
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISMATCH"
    }
}
