//! Vertical scalability — the same applications across compute devices.
//!
//! The paper's §IV closes the GPU discussion by checking generality: "To
//! verify whether the conclusions from the experiments on the Type-1
//! cluster of GTX 480 are also valid on other GPUs, we ran Glasswing KM
//! and MM on up to [8] Type-2 nodes equipped with a K20m and obtained
//! consistent scaling results", and §I positions the Xeon Phi as a
//! first-class target ("it does so using the same software abstraction
//! and API").
//!
//! Part 1 sweeps KM and MM over the device classes with the cluster
//! simulator (1–8 nodes). Part 2 runs the *real engine* on every device
//! profile and verifies outputs stay identical while modeled kernel times
//! follow the device hierarchy.

use std::sync::Arc;

use gw_apps::KMeans;
use gw_bench::{bench_cfg, kmeans_cluster, rule, sim_secs};
use gw_core::{GwApp, StageId, TimingMode};
use gw_device::DeviceProfile;
use gw_sim::sweep::sweep;
use gw_sim::{AppParams, ClusterParams, DeviceClass, FrameworkKind};

fn main() {
    println!("=== Vertical scalability: one job, many devices ===\n");

    // ---- Part 1: simulated scaling per device class ----
    let counts = [1usize, 2, 4, 8];
    for app in [AppParams::km_many_centers(), AppParams::mm()] {
        println!("{} (Glasswing, HDFS), total seconds:", app.name);
        rule(70);
        println!(
            "{:>6} | {:>10} | {:>10} | {:>10} | {:>10}",
            "nodes", "cpu16", "gtx480", "k20m", "xeon-phi"
        );
        rule(70);
        let mut per_device = Vec::new();
        for device in [
            DeviceClass::Cpu16,
            DeviceClass::Gtx480,
            DeviceClass::K20m,
            DeviceClass::XeonPhi,
        ] {
            // K20m lives on the Type-2 nodes (the paper's consistency check).
            let cluster = if device == DeviceClass::K20m {
                ClusterParams::das4_type2_k20m()
            } else {
                ClusterParams {
                    device,
                    ..ClusterParams::das4_cpu_hdfs()
                }
            };
            per_device.push(sweep(FrameworkKind::Glasswing, &app, &cluster, &counts));
        }
        for (i, &n) in counts.iter().enumerate() {
            println!(
                "{:>6} | {:>10} | {:>10} | {:>10} | {:>10}",
                n,
                sim_secs(per_device[0][i].total),
                sim_secs(per_device[1][i].total),
                sim_secs(per_device[2][i].total),
                sim_secs(per_device[3][i].total),
            );
        }
        rule(70);
        // Consistent scaling: the GTX480 and K20m speedup curves must
        // track each other (the paper's "consistent scaling results").
        let speedup = |r: &[gw_sim::SimResult]| r[0].total / r[counts.len() - 1].total;
        let s480 = speedup(&per_device[1]);
        let sk20 = speedup(&per_device[2]);
        println!(
            "8-node speedup: gtx480 {s480:.2}x, k20m {sk20:.2}x -> consistent: {}\n",
            ok((s480 - sk20).abs() / s480 < 0.25)
        );
    }

    // ---- Part 2: real engine, one job, four device profiles ----
    println!("=== Real engine: K-Means across device profiles ===\n");
    println!(
        "{:<18} | {:>14} | {:>16} | {:>8}",
        "device", "kernel wall(s)", "kernel modeled(s)", "output"
    );
    rule(66);
    let mut reference: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
    let mut modeled_kernels = Vec::new();
    for device in [
        DeviceProfile::host(),
        DeviceProfile::xeon_phi(),
        DeviceProfile::gtx480(),
        DeviceProfile::k20m(),
    ] {
        let (cluster, centers) = kmeans_cluster(40_000, 8, 64, 1, 256 << 10);
        let mut cfg = bench_cfg();
        cfg.device = device.clone();
        cfg.timing = TimingMode::Modeled;
        let app: Arc<dyn GwApp> = Arc::new(KMeans::new(centers, 64, 8));
        let report = cluster.run(app, &cfg).expect("job failed");
        let mut out =
            gw_core::cluster::read_job_output(cluster.store(), &report).expect("read output");
        out.sort();
        let timers = &report.nodes[0].map_timers;
        let wall = timers.wall(StageId::Kernel);
        let modeled = timers.modeled(StageId::Kernel);
        let same = match &reference {
            None => {
                reference = Some(out);
                true
            }
            Some(r) => {
                // f32 sums may differ in last bits across run orders;
                // compare keys and lengths exactly, values by content.
                r.len() == out.len() && r.iter().zip(&out).all(|(a, b)| a.0 == b.0)
            }
        };
        println!(
            "{:<18} | {:>14.3} | {:>17.3} | {:>8}",
            device.name,
            wall.as_secs_f64(),
            modeled.as_secs_f64(),
            if same { "same" } else { "DIFFERS" }
        );
        modeled_kernels.push((device.name, modeled));
    }
    rule(66);
    // Device hierarchy: K20m < GTX480 < XeonPhi < CPU on modeled kernels.
    let get = |name: &str| modeled_kernels.iter().find(|(n, _)| *n == name).unwrap().1;
    println!(
        "modeled kernel hierarchy k20m < gtx480 < xeon-phi < cpu: {}",
        ok(get("nvidia-k20m") < get("nvidia-gtx480")
            && get("nvidia-gtx480") < get("intel-xeon-phi")
            && get("intel-xeon-phi") < get("host-cpu"))
    );
    println!("\npaper: one MapReduce abstraction, per-device performance portability");
    println!("handled by the framework (paper §I, Table I \"Compute Device: OpenCL\").");
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISMATCH"
    }
}
