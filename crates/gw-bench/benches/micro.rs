//! Criterion micro-benchmarks of the performance-critical substrates:
//! varint framing, the LZ compression codec, sorted-run building, k-way
//! merging, and the two kernel-output collectors (the mechanisms behind
//! Table II's kernel-time differences).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gw_core::collect::{BufferPoolCollector, Collector, HashTableCollector};
use gw_core::Combiner;
use gw_intermediate::kv::{Run, RunBuilder};
use gw_intermediate::{compress, merge_runs, MergeIter};
use gw_storage::varint;

fn bench_varint(c: &mut Criterion) {
    let values: Vec<u64> = (0..1000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    c.bench_function("varint/encode_1k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(10_000);
            for &v in &values {
                varint::write_u64(&mut out, v);
            }
            black_box(out)
        })
    });
    let mut encoded = Vec::new();
    for &v in &values {
        varint::write_u64(&mut encoded, v);
    }
    c.bench_function("varint/decode_1k", |b| {
        b.iter(|| {
            let mut rest: &[u8] = &encoded;
            let mut sum = 0u64;
            while !rest.is_empty() {
                let (v, n) = varint::read_u64(rest).unwrap();
                sum = sum.wrapping_add(v);
                rest = &rest[n..];
            }
            black_box(sum)
        })
    });
}

fn sample_intermediate(n: usize) -> Vec<u8> {
    // Sorted-run-like data: repetitive word keys + counters.
    let mut data = Vec::new();
    for i in 0..n {
        data.extend_from_slice(format!("word{:05}", i % 512).as_bytes());
        data.extend_from_slice(&(i as u32).to_le_bytes());
    }
    data
}

fn bench_compress(c: &mut Criterion) {
    let data = sample_intermediate(16_384);
    let compressed = compress::compress(&data);
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_192k", |b| {
        b.iter(|| black_box(compress::compress(black_box(&data))))
    });
    g.bench_function("decompress_192k", |b| {
        b.iter(|| black_box(compress::decompress(black_box(&compressed)).unwrap()))
    });
    g.finish();
}

fn make_run(n: usize, seed: usize) -> Run {
    let mut b = RunBuilder::new();
    for i in 0..n {
        let key = format!("key{:06}", (i * 7919 + seed) % (n * 2));
        b.push(key.as_bytes(), &(i as u64).to_le_bytes());
    }
    b.build()
}

fn bench_runs_and_merge(c: &mut Criterion) {
    c.bench_function("run_builder/sort_serialize_10k", |b| {
        b.iter(|| black_box(make_run(10_000, 1)))
    });
    let runs: Vec<Run> = (0..8).map(|s| make_run(4_000, s)).collect();
    let mut g = c.benchmark_group("merge");
    g.bench_function("kway_8x4k_stream", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for (k, _) in MergeIter::new(runs.iter()) {
                count += k.len();
            }
            black_box(count)
        })
    });
    g.bench_function("kway_8x4k_materialize", |b| {
        b.iter(|| black_box(merge_runs(black_box(&runs))))
    });
    g.finish();
}

struct Sum;
impl Combiner for Sum {
    fn combine(&self, _k: &[u8], acc: &mut Vec<u8>, v: &[u8]) {
        let a = u64::from_le_bytes(acc.as_slice().try_into().unwrap());
        let b = u64::from_le_bytes(v.try_into().unwrap());
        acc.copy_from_slice(&(a + b).to_le_bytes());
    }
}

fn bench_collectors(c: &mut Criterion) {
    // Zipf-ish key stream: a few hot keys and many cold ones — the WC
    // profile that separates the two collection mechanisms.
    let keys: Vec<Vec<u8>> = (0..20_000)
        .map(|i| {
            let rank = if i % 3 == 0 { i % 10 } else { i % 4000 };
            format!("word{rank:05}").into_bytes()
        })
        .collect();
    let one = 1u64.to_le_bytes();

    let mut g = c.benchmark_group("collectors/20k_emits");
    g.bench_function(BenchmarkId::new("buffer_pool", "simple"), |b| {
        b.iter(|| {
            let col = BufferPoolCollector::new(4 << 20, 8);
            for k in &keys {
                col.emit(k, &one);
            }
            black_box(col.records())
        })
    });
    g.bench_function(BenchmarkId::new("hash_table", "no_combiner"), |b| {
        b.iter(|| {
            let col = HashTableCollector::new(1 << 12, None);
            for k in &keys {
                col.emit(k, &one);
            }
            black_box(col.records())
        })
    });
    g.bench_function(BenchmarkId::new("hash_table", "combiner"), |b| {
        b.iter(|| {
            let col = HashTableCollector::new(1 << 12, Some(Arc::new(Sum)));
            for k in &keys {
                col.emit(k, &one);
            }
            black_box(col.records())
        })
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_varint, bench_compress, bench_runs_and_merge, bench_collectors
);
criterion_main!(micro);
