//! Figure 5 — reduce-pipeline efficiency for a varying number of
//! concurrently processed keys, plus the keys-per-thread optimisation.
//!
//! "Glasswing provides applications with the capability to process
//! multiple intermediate keys concurrently in the same reduce kernel ...
//! An optimization on top of that is to additionally save on kernel
//! invocation overhead by having each kernel thread process multiple keys
//! sequentially. ... Setting the number of concurrent keys to one causes
//! (at least) one kernel invocation per key, with very little value data
//! per reduce invocation."
//!
//! The data set has many unique keys (a wide-vocabulary corpus without a
//! combiner), mirroring the paper's "millions of unique keys" setup at
//! reduced scale.

use std::sync::Arc;

use gw_apps::WordCount;
use gw_bench::{bench_cfg, corpus_cluster, rule, secs};
use gw_core::{CollectorKind, PipelineKind, StageId};

fn run(concurrent_keys: usize, keys_per_thread: usize) -> (usize, f64, f64, f64) {
    let cluster = corpus_cluster(20_000, 60_000, 1, 256 << 10);
    let mut cfg = bench_cfg();
    cfg.collector = CollectorKind::BufferPool;
    cfg.reduce_concurrent_keys = concurrent_keys;
    cfg.reduce_keys_per_thread = keys_per_thread;
    let report = cluster
        .run(Arc::new(WordCount::without_combiner()), &cfg)
        .expect("job failed");
    let n = &report.nodes[0];
    (
        n.reduce.launches,
        n.reduce_timers.wall(StageId::Input).as_secs_f64(),
        n.reduce_timers.wall(StageId::Kernel).as_secs_f64(),
        n.reduce.elapsed.as_secs_f64(),
    )
}

fn main() {
    println!("=== Figure 5: reduce pipeline breakdown vs concurrent keys ===\n");
    // The reduce pipeline's first stage is "merge-read" (the map side
    // calls the same slot "input") — take the display name from the slot.
    let merge_read = format!("{}(s)", StageId::Input.name_in(PipelineKind::Reduce));
    println!(
        "{:>10} {:>4} | {:>9} | {:>13} | {:>12} | {:>12}",
        "conc.keys", "kpt", "launches", merge_read, "kernel (s)", "elapsed (s)"
    );
    rule(74);
    let mut elapsed_series = Vec::new();
    for keys in [1usize, 4, 16, 64, 256, 1024] {
        let (launches, read, kernel, elapsed) = run(keys, 1);
        println!(
            "{keys:>10} {:>4} | {launches:>9} | {:>13} | {:>12} | {:>12}",
            1,
            secs(std::time::Duration::from_secs_f64(read)),
            secs(std::time::Duration::from_secs_f64(kernel)),
            secs(std::time::Duration::from_secs_f64(elapsed)),
        );
        elapsed_series.push(elapsed);
    }
    rule(74);
    println!("\nkeys-per-thread at 1024 concurrent keys:");
    rule(74);
    let mut kpt_series = Vec::new();
    for kpt in [1usize, 4, 16] {
        let (launches, read, kernel, elapsed) = run(1024, kpt);
        println!(
            "{:>10} {kpt:>4} | {launches:>9} | {:>13} | {:>12} | {:>12}",
            1024,
            secs(std::time::Duration::from_secs_f64(read)),
            secs(std::time::Duration::from_secs_f64(kernel)),
            secs(std::time::Duration::from_secs_f64(elapsed)),
        );
        kpt_series.push(elapsed);
    }
    rule(74);

    println!("\nshape checks:");
    println!(
        "  one-key-at-a-time is the worst configuration: {}",
        ok(elapsed_series[0] > *elapsed_series.last().unwrap())
    );
    println!(
        "  elapsed falls monotonically-ish with concurrency (first vs mid vs last): {}",
        ok(elapsed_series[0] > elapsed_series[2] && elapsed_series[2] >= elapsed_series[5] * 0.5)
    );
    println!("\npaper: concurrency across keys exploits all device cores; processing");
    println!("multiple keys per thread further amortises kernel-invocation overhead.");
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISMATCH"
    }
}
