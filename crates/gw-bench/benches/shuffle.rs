//! Tracked shuffle benchmark: the zero-copy arena intermediate path
//! against its pre-arena baselines, written to `BENCH_shuffle.json` at
//! the repo root so the speedups are versioned alongside the code.
//!
//! Measured metrics (new vs baseline, best-of-N wall time):
//!
//! * `run_sort`    — arena `RunBuilder` (MSB radix on the offset index)
//!   vs owned-pair `sort_unstable` + serialize.
//! * `merge8`      — 8-way loser-tree merge vs the `BinaryHeap` merge.
//! * `partition`   — the end-to-end WordCount partition stage (lane
//!   builders + per-partition lane merge, recycled arenas) vs the same
//!   stage on the owned-pair path. This is the headline number.
//! * `compress` / `decompress` — codec throughput over run bytes
//!   (informational; the partition stage itself does not compress).
//! * `external`    — the out-of-core path: a budgeted `IntermediateStore`
//!   fed a dataset ≥ 4× its memory budget (spill + compaction + streamed
//!   cursor merge) vs the same runs merged fully in-core. Also records
//!   peak resident bytes over budget; `--check` enforces the ≤ 1.5×
//!   contract as a hard, machine-independent gate.
//!
//! Every comparison also asserts the two paths produce byte-identical
//! runs — the determinism contract the fault-tolerant shuffle's
//! de-duplication depends on.
//!
//! Usage: `cargo bench -p gw-bench --bench shuffle -- [--quick] [--check]`
//!
//! * `--quick` shrinks the workload (CI smoke). A full run additionally
//!   measures the quick workload and records its speedups as `quick_*`
//!   fields, so a quick check compares like against like (speedups vary
//!   with workload size, not just machine).
//! * `--check` does not rewrite the tracked file; instead it validates
//!   the committed `BENCH_shuffle.json` (parseable, required fields) and
//!   fails if any measured speedup fell below 0.75x the committed one
//!   for the same mode (ratios are machine-portable where absolute
//!   throughput is not).

use std::sync::Arc;
use std::time::Instant;

use gw_bench::baseline::{heap_merge, naive_run_from_pairs};
use gw_bench::flatjson::{self, Val};
use gw_core::hash::default_partition;
use gw_intermediate::{
    compress, merge_runs, CursorMerge, IntermediateConfig, IntermediateStore, Run, RunBuilder,
    RunPool,
};

/// Words drawn from a Zipf-ish rank distribution — the WordCount map
/// output profile (a few hot words, a long cold tail).
fn word_stream(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let r = next();
            // ~1/3 of draws hit the 16 hottest words; the rest spread
            // over a 16k vocabulary.
            let rank = if r % 3 == 0 { r % 16 } else { r % 16_384 };
            let key = format!("word{rank:05}").into_bytes();
            (key, 1u32.to_le_bytes().to_vec())
        })
        .collect()
}

/// Best-of-`iters` wall time of `f`, in seconds.
fn best_secs<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`iters` wall times of a new/baseline pair, interleaved so
/// both paths sample the same machine conditions (frequency scaling and
/// neighbor noise would otherwise skew whichever phase it landed on).
fn best_secs_pair<A, B>(
    iters: usize,
    mut new: impl FnMut() -> A,
    mut base: impl FnMut() -> B,
) -> (f64, f64) {
    let (mut best_new, mut best_base) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(new());
        best_new = best_new.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(base());
        best_base = best_base.min(t.elapsed().as_secs_f64());
    }
    (best_new, best_base)
}

fn assert_same_bytes(what: &str, a: &Run, b: &Run) {
    assert_eq!(
        &*a.clone().into_shared(),
        &*b.clone().into_shared(),
        "{what}: arena path diverged from baseline bytes"
    );
}

struct Sizes {
    iters: usize,
    sort_records: usize,
    merge_records_per_run: usize,
    partition_records: usize,
    /// Records pushed through the out-of-core external merge.
    external_records: usize,
    /// Memory budget for the external merge; the dataset is sized ≥ 4×
    /// this, so the run cannot complete in-core.
    external_budget: usize,
}

// Quick sizes are chosen to keep the smoke run under ~10 s while staying
// large enough that best-of-N timings are stable (tiny merges measured in
// microseconds made the speedup ratio swing run to run).
const QUICK: Sizes = Sizes {
    iters: 5,
    sort_records: 16_000,
    merge_records_per_run: 8_000,
    partition_records: 120_000,
    external_records: 120_000,
    external_budget: 256 << 10,
};

const FULL: Sizes = Sizes {
    iters: 5,
    sort_records: 64_000,
    merge_records_per_run: 16_000,
    partition_records: 600_000,
    external_records: 600_000,
    external_budget: 1 << 20,
};

const PARTS: u32 = 16;
const LANES: usize = 4;

/// The arena partition stage: per-lane recycled builders, then a
/// per-partition loser-tree merge across lanes (the supervised-mode
/// shape of `gw-core`'s Partition stage).
fn partition_arena(recs: &[(Vec<u8>, Vec<u8>)], pool: &Arc<RunPool>) -> Vec<Run> {
    let lane_len = recs.len().div_ceil(LANES);
    let lane_runs: Vec<Vec<Run>> = recs
        .chunks(lane_len)
        .map(|lane| {
            let mut builders: Vec<_> = (0..PARTS).map(|_| pool.builder()).collect();
            for (k, v) in lane {
                builders[default_partition(k, PARTS) as usize].push(k, v);
            }
            builders.into_iter().map(|b| b.build()).collect()
        })
        .collect();
    (0..PARTS as usize)
        .map(|p| merge_runs(lane_runs.iter().map(|lane| &lane[p])))
        .collect()
}

/// The pre-arena partition stage: per-lane owned-pair runs, then the
/// old gather-and-resort lane merge.
fn partition_naive(recs: &[(Vec<u8>, Vec<u8>)]) -> Vec<Run> {
    let lane_len = recs.len().div_ceil(LANES);
    let lane_runs: Vec<Vec<Run>> = recs
        .chunks(lane_len)
        .map(|lane| {
            let mut buckets: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
                (0..PARTS).map(|_| Vec::new()).collect();
            for (k, v) in lane {
                buckets[default_partition(k, PARTS) as usize].push((k.clone(), v.clone()));
            }
            buckets.into_iter().map(naive_run_from_pairs).collect()
        })
        .collect();
    (0..PARTS as usize)
        .map(|p| {
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = lane_runs
                .iter()
                .flat_map(|lane| lane[p].iter())
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            naive_run_from_pairs(pairs)
        })
        .collect()
}

struct Metrics {
    input_mb: f64,
    run_sort_new: f64,
    run_sort_naive: f64,
    merge8_new: f64,
    merge8_heap: f64,
    compress_mbps: f64,
    decompress_mbps: f64,
    partition_new: f64,
    partition_naive: f64,
    external_budget_mb: f64,
    external_dataset_mb: f64,
    external_merge_mbps: f64,
    external_incore_mbps: f64,
    external_peak_resident_mb: f64,
    external_peak_over_budget: f64,
}

impl Metrics {
    fn run_sort_speedup(&self) -> f64 {
        self.run_sort_new / self.run_sort_naive
    }
    fn merge8_speedup(&self) -> f64 {
        self.merge8_new / self.merge8_heap
    }
    fn partition_speedup(&self) -> f64 {
        self.partition_new / self.partition_naive
    }
    /// How much of in-core merge throughput the out-of-core path retains
    /// (spill writes + framed decode are the price of bounded memory).
    fn external_vs_incore(&self) -> f64 {
        self.external_merge_mbps / self.external_incore_mbps
    }
}

fn measure(sizes: &Sizes) -> Metrics {
    // --- run_sort: arena radix builder vs owned-pair sort ---
    let sort_input = word_stream(sizes.sort_records);
    let pool = Arc::new(RunPool::new());
    let (arena_sort, naive_sort) = best_secs_pair(
        sizes.iters,
        || {
            let mut b = pool.builder();
            for (k, v) in &sort_input {
                b.push(k, v);
            }
            b.build()
        },
        || naive_run_from_pairs(sort_input.clone()),
    );
    {
        let mut b = RunBuilder::new();
        for (k, v) in &sort_input {
            b.push(k, v);
        }
        assert_same_bytes(
            "run_sort",
            &b.build(),
            &naive_run_from_pairs(sort_input.clone()),
        );
    }
    let mrecs = |records: usize, secs: f64| records as f64 / secs / 1e6;

    // --- merge8: loser tree vs BinaryHeap ---
    let merge_input: Vec<Run> = (0..8)
        .map(|lane| {
            let recs = word_stream(sizes.merge_records_per_run + lane * 37);
            naive_run_from_pairs(recs)
        })
        .collect();
    let merged_records: usize = merge_input.iter().map(|r| r.records()).sum();
    let (tree_merge, heap_merge_s) = best_secs_pair(
        sizes.iters,
        || merge_runs(&merge_input),
        || heap_merge(&merge_input),
    );
    assert_same_bytes(
        "merge8",
        &merge_runs(&merge_input),
        &heap_merge(&merge_input),
    );

    // --- compress / decompress over run bytes ---
    let codec_run = merge_runs(&merge_input).into_shared();
    let packed = compress::compress(&codec_run);
    let comp = best_secs(sizes.iters, || compress::compress(&codec_run));
    let decomp = best_secs(sizes.iters, || compress::decompress(&packed).unwrap());
    let mbps = |bytes: usize, secs: f64| bytes as f64 / secs / 1e6;

    // --- partition: end-to-end WC partition stage ---
    let part_input = word_stream(sizes.partition_records);
    let input_bytes: usize = part_input.iter().map(|(k, v)| k.len() + v.len()).sum();
    let part_pool = Arc::new(RunPool::new());
    // Warm the recycling pool so the measurement sees steady state.
    std::hint::black_box(partition_arena(&part_input, &part_pool));
    let (arena_part, naive_part) = best_secs_pair(
        sizes.iters,
        || partition_arena(&part_input, &part_pool),
        || partition_naive(&part_input),
    );
    let arena_out = partition_arena(&part_input, &part_pool);
    let naive_out = partition_naive(&part_input);
    for (p, (a, n)) in arena_out.iter().zip(&naive_out).enumerate() {
        assert_same_bytes(&format!("partition p{p}"), a, n);
    }

    // --- external merge: budgeted out-of-core path vs in-core merge ---
    // The dataset is ≥ 4× the memory budget, so the budgeted store must
    // spill, compact, and stream the final merge from framed spill files;
    // the in-core comparison is a plain loser-tree merge over the same
    // runs held in memory.
    let ext_input = word_stream(sizes.external_records);
    let ext_bytes: usize = ext_input.iter().map(|(k, v)| k.len() + v.len()).sum();
    assert!(
        ext_bytes >= 4 * sizes.external_budget,
        "external dataset ({ext_bytes}B) must be ≥ 4× the budget ({}B)",
        sizes.external_budget
    );
    let ext_runs: Vec<Run> = ext_input
        .chunks(4_000)
        .map(|chunk| {
            let mut b = RunBuilder::new();
            for (k, v) in chunk {
                b.push(k, v);
            }
            b.build()
        })
        .collect();
    let ext_cfg = || {
        IntermediateConfig {
            num_partitions: 1,
            merger_threads: 2,
            compress: true,
            ..Default::default()
        }
        .with_memory_budget(sizes.external_budget)
    };
    // store construction, spills, compactions and the cursor drain are
    // all part of the out-of-core price — time the whole path.
    let run_external = || {
        let store = IntermediateStore::new(ext_cfg()).expect("intermediate store");
        for r in &ext_runs {
            store.add_run(0, r.clone());
        }
        store.finish_map().expect("finish_map");
        let mut merge = CursorMerge::new(store.partition_cursors(0).expect("partition_cursors"));
        let mut drained = 0usize;
        while let Some(rec) = merge.peek_rec() {
            drained += rec.len();
            merge.advance().expect("cursor advance");
        }
        (drained, store.metrics())
    };
    let run_incore = || {
        let merged = merge_runs(&ext_runs);
        merged.records()
    };
    let (ext_secs, incore_secs) = best_secs_pair(sizes.iters, run_external, run_incore);
    // Untimed verification pass: byte identity against the in-core merge,
    // plus the budget/spill contract on the store's own accounting.
    let incore_ref = merge_runs(&ext_runs).into_shared();
    let verify = IntermediateStore::new(ext_cfg()).expect("intermediate store");
    for r in &ext_runs {
        verify.add_run(0, r.clone());
    }
    verify.finish_map().expect("finish_map");
    let mut merge = CursorMerge::new(verify.partition_cursors(0).expect("partition_cursors"));
    let mut drained = Vec::with_capacity(incore_ref.len());
    while let Some(rec) = merge.peek_rec() {
        drained.extend_from_slice(rec);
        merge.advance().expect("cursor advance");
    }
    assert_eq!(
        &drained[..],
        &*incore_ref,
        "external merge: out-of-core bytes diverged from the in-core merge"
    );
    let ext_metrics = verify.metrics();
    assert!(
        ext_metrics.spilled_disk > 0 && ext_metrics.frames_read > 0,
        "external merge never left core — dataset or budget mis-sized"
    );

    Metrics {
        input_mb: input_bytes as f64 / 1e6,
        run_sort_new: mrecs(sizes.sort_records, arena_sort),
        run_sort_naive: mrecs(sizes.sort_records, naive_sort),
        merge8_new: mrecs(merged_records, tree_merge),
        merge8_heap: mrecs(merged_records, heap_merge_s),
        compress_mbps: mbps(codec_run.len(), comp),
        decompress_mbps: mbps(codec_run.len(), decomp),
        partition_new: mbps(input_bytes, arena_part),
        partition_naive: mbps(input_bytes, naive_part),
        external_budget_mb: sizes.external_budget as f64 / 1e6,
        external_dataset_mb: ext_bytes as f64 / 1e6,
        external_merge_mbps: mbps(ext_bytes, ext_secs),
        external_incore_mbps: mbps(ext_bytes, incore_secs),
        external_peak_resident_mb: ext_metrics.peak_resident_bytes as f64 / 1e6,
        external_peak_over_budget: ext_metrics.peak_resident_bytes as f64
            / sizes.external_budget as f64,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");

    let m = measure(if quick { &QUICK } else { &FULL });
    // A full (tracked) run also measures the quick workload so CI's quick
    // check has same-size reference speedups to compare against.
    let quick_ref = if quick { None } else { Some(measure(&QUICK)) };

    let mut fields = vec![
        ("schema", Val::Str("gw-shuffle-bench-v1".into())),
        (
            "mode",
            Val::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("partitions", Val::Num(PARTS as f64)),
        ("lanes", Val::Num(LANES as f64)),
        ("partition_input_mb", Val::Num(m.input_mb)),
        ("run_sort_new_mrecs", Val::Num(m.run_sort_new)),
        ("run_sort_naive_mrecs", Val::Num(m.run_sort_naive)),
        ("run_sort_speedup", Val::Num(m.run_sort_speedup())),
        ("merge8_new_mrecs", Val::Num(m.merge8_new)),
        ("merge8_heap_mrecs", Val::Num(m.merge8_heap)),
        ("merge8_speedup", Val::Num(m.merge8_speedup())),
        ("compress_mbps", Val::Num(m.compress_mbps)),
        ("decompress_mbps", Val::Num(m.decompress_mbps)),
        ("partition_new_mbps", Val::Num(m.partition_new)),
        ("partition_naive_mbps", Val::Num(m.partition_naive)),
        ("partition_speedup", Val::Num(m.partition_speedup())),
        ("external_budget_mb", Val::Num(m.external_budget_mb)),
        ("external_dataset_mb", Val::Num(m.external_dataset_mb)),
        ("external_merge_mbps", Val::Num(m.external_merge_mbps)),
        ("external_incore_mbps", Val::Num(m.external_incore_mbps)),
        ("external_vs_incore", Val::Num(m.external_vs_incore())),
        (
            "external_peak_resident_mb",
            Val::Num(m.external_peak_resident_mb),
        ),
        (
            "external_peak_over_budget",
            Val::Num(m.external_peak_over_budget),
        ),
    ];
    if let Some(q) = &quick_ref {
        fields.extend([
            ("quick_run_sort_speedup", Val::Num(q.run_sort_speedup())),
            ("quick_merge8_speedup", Val::Num(q.merge8_speedup())),
            ("quick_partition_speedup", Val::Num(q.partition_speedup())),
            ("quick_external_vs_incore", Val::Num(q.external_vs_incore())),
        ]);
    }

    println!("shuffle bench ({})", if quick { "quick" } else { "full" });
    for (k, v) in &fields {
        match v {
            Val::Str(s) => println!("  {k:24} {s}"),
            Val::Num(n) => println!("  {k:24} {n:.3}"),
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shuffle.json");
    if check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_shuffle.json unreadable: {e}"));
        let map = flatjson::parse(&committed)
            .unwrap_or_else(|e| panic!("BENCH_shuffle.json malformed: {e}"));
        match map.get("schema").and_then(Val::as_str) {
            Some("gw-shuffle-bench-v1") => {}
            other => panic!("BENCH_shuffle.json schema mismatch: {other:?}"),
        }
        let committed_num = |key: &str| -> f64 {
            map.get(key)
                .and_then(Val::as_num)
                .filter(|n| *n > 0.0)
                .unwrap_or_else(|| panic!("BENCH_shuffle.json missing/invalid {key}"))
        };
        // Compare speedups against the committed run of the same workload
        // size; the quick_* reference fields exist for exactly this.
        let prefix = if quick { "quick_" } else { "" };
        let mut failed = false;
        for (key, measured) in [
            ("run_sort_speedup", m.run_sort_speedup()),
            ("merge8_speedup", m.merge8_speedup()),
            ("partition_speedup", m.partition_speedup()),
            ("external_vs_incore", m.external_vs_incore()),
        ] {
            let floor = 0.75 * committed_num(&format!("{prefix}{key}"));
            let ok = measured >= floor;
            println!(
                "  check {prefix}{key:22} measured {measured:.3} vs floor {floor:.3} ... {}",
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        // The out-of-core memory contract is machine-independent: peak
        // resident intermediate bytes must stay within 1.5× the budget.
        {
            let ok = m.external_peak_over_budget <= 1.5;
            println!(
                "  check external_peak_over_budget measured {:.3} vs hard cap 1.500 ... {}",
                m.external_peak_over_budget,
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        // Throughput fields must exist and be positive even though their
        // absolute values are machine-specific.
        for key in [
            "run_sort_new_mrecs",
            "merge8_new_mrecs",
            "compress_mbps",
            "decompress_mbps",
            "partition_new_mbps",
            "external_merge_mbps",
        ] {
            committed_num(key);
        }
        if failed {
            eprintln!("shuffle bench check FAILED: speedup regressed >25% vs committed");
            std::process::exit(1);
        }
        println!("shuffle bench check passed");
    } else {
        std::fs::write(path, flatjson::write(&fields)).expect("write BENCH_shuffle.json");
        println!("wrote {path}");
    }
}
