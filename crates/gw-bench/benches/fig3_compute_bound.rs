//! Figure 3 — the compute-bound applications, K-Means and Matrix
//! Multiply, on CPUs and GPUs:
//!
//! * (a) KM (4096 centers) on CPU over HDFS: Hadoop vs Glasswing;
//! * (b) MM on CPU over HDFS: Hadoop vs Glasswing;
//! * (c) KM (4096 centers) on GPU: Glasswing (HDFS + local FS) vs GPMR
//!   (whose kernel "is optimized for a small number of centers and is not
//!   expected to run efficiently for larger numbers") with CPU reference;
//! * (d) MM on GPU: HDFS vs local FS (I/O-bound on the GPU);
//! * (e) KM (64 centers) on GPU over local FS: unmodified GPMR — compute
//!   line vs compute+I/O line — against Glasswing.

use gw_bench::{rule, sim_secs};
use gw_sim::sweep::{speedups, sweep};
use gw_sim::{AppParams, ClusterParams, FrameworkKind};

fn two_frameworks(
    tag: &str,
    title: &str,
    app: &AppParams,
    cluster: &ClusterParams,
    a: FrameworkKind,
    b: FrameworkKind,
    counts: &[usize],
) {
    let ra = sweep(a, app, cluster, counts);
    let rb = sweep(b, app, cluster, counts);
    let sa = speedups(&ra);
    let sb = speedups(&rb);
    println!("\nFig. 3({tag}): {title}");
    rule(78);
    println!(
        "{:>6} | {:>11} {:>8} | {:>11} {:>8} | {:>7}",
        "nodes",
        format!("{} t(s)", a.name()),
        "speedup",
        format!("{} t(s)", b.name()),
        "speedup",
        "ratio"
    );
    rule(78);
    for i in 0..counts.len() {
        println!(
            "{:>6} | {:>11} {:>8.1} | {:>11} {:>8.1} | {:>6.2}x",
            counts[i],
            sim_secs(ra[i].total),
            sa[i],
            sim_secs(rb[i].total),
            sb[i],
            ra[i].total / rb[i].total,
        );
    }
    rule(78);
}

fn main() {
    println!("=== Figure 3: compute-bound applications ===");
    let counts = [1usize, 2, 4, 8, 16];
    let km = AppParams::km_many_centers();
    let mm = AppParams::mm();
    let cpu = ClusterParams::das4_cpu_hdfs();
    let gpu_hdfs = ClusterParams::das4_gpu_hdfs();
    let gpu_local = ClusterParams::das4_gpu_local();

    // (a) KM on CPU.
    two_frameworks(
        "a",
        "KM (4096 centers) on CPU (HDFS)",
        &km,
        &cpu,
        FrameworkKind::Hadoop,
        FrameworkKind::Glasswing,
        &counts,
    );

    // (b) MM on CPU.
    two_frameworks(
        "b",
        "MM on CPU (HDFS)",
        &mm,
        &cpu,
        FrameworkKind::Hadoop,
        FrameworkKind::Glasswing,
        &counts,
    );

    // (c) KM on GPU, with GPMR (adapted to many centers, showing its
    // kernel inefficiency) and the CPU/Hadoop lines for reference.
    println!("\nFig. 3(c): KM (4096 centers) on GPU (CPU lines for reference)");
    rule(98);
    println!(
        "{:>6} | {:>13} | {:>14} | {:>14} | {:>13} | {:>12}",
        "nodes", "hadoop cpu(s)", "glasswing cpu", "glasswing gpu", "gpmr gpu(s)", "gw-gpu gain"
    );
    rule(98);
    let hd_cpu = sweep(FrameworkKind::Hadoop, &km, &cpu, &counts);
    let gw_cpu = sweep(FrameworkKind::Glasswing, &km, &cpu, &counts);
    let gw_gpu = sweep(FrameworkKind::Glasswing, &km, &gpu_hdfs, &counts);
    // GPMR's KM kernel is inefficient at 4096 centers (paper adapted the
    // code but observed a large slowdown): model with a 6x kernel penalty.
    let gpmr = sweep(
        FrameworkKind::gpmr_with_penalty(6.0),
        &km,
        &gpu_local,
        &counts,
    );
    for i in 0..counts.len() {
        println!(
            "{:>6} | {:>13} | {:>14} | {:>14} | {:>13} | {:>11.1}x",
            counts[i],
            sim_secs(hd_cpu[i].total),
            sim_secs(gw_cpu[i].total),
            sim_secs(gw_gpu[i].total),
            sim_secs(gpmr[i].total),
            hd_cpu[i].total / gw_gpu[i].total,
        );
    }
    rule(98);
    println!(
        "single-node GPU gain over Hadoop: {:.0}x (paper: ~20-30x on the GPU cluster)",
        hd_cpu[0].total / gw_gpu[0].total
    );

    // (d) MM on GPU: HDFS vs local FS.
    println!("\nFig. 3(d): MM on GPU — HDFS vs local FS (CPU line for reference)");
    rule(86);
    println!(
        "{:>6} | {:>14} | {:>16} | {:>17} | {:>12}",
        "nodes", "glasswing cpu", "glasswing gpu+hdfs", "glasswing gpu+local", "hdfs/local"
    );
    rule(86);
    let mm_cpu = sweep(FrameworkKind::Glasswing, &mm, &cpu, &counts);
    let mm_gpu_hdfs = sweep(FrameworkKind::Glasswing, &mm, &gpu_hdfs, &counts);
    let mm_gpu_local = sweep(FrameworkKind::Glasswing, &mm, &gpu_local, &counts);
    for i in 0..counts.len() {
        println!(
            "{:>6} | {:>14} | {:>18} | {:>19} | {:>11.2}x",
            counts[i],
            sim_secs(mm_cpu[i].total),
            sim_secs(mm_gpu_hdfs[i].total),
            sim_secs(mm_gpu_local[i].total),
            mm_gpu_hdfs[i].total / mm_gpu_local[i].total,
        );
    }
    rule(86);
    println!("paper: \"MM is I/O-bound on the GPU when combined with HDFS usage,");
    println!("unlike its compute-bound behavior on the CPU\" — the local-FS line");
    println!("sits below the HDFS line.");

    // (e) KM with few centers: unmodified GPMR vs Glasswing on local FS.
    let km64 = AppParams::km_few_centers();
    println!("\nFig. 3(e): KM (64 centers) on GPU, local FS");
    rule(86);
    println!(
        "{:>6} | {:>15} | {:>17} | {:>17} | {:>8}",
        "nodes", "glasswing t(s)", "gpmr compute (s)", "gpmr incl I/O (s)", "ratio"
    );
    rule(86);
    let gw64 = sweep(FrameworkKind::Glasswing, &km64, &gpu_local, &counts);
    let gpmr64 = sweep(FrameworkKind::GPMR, &km64, &gpu_local, &counts);
    for i in 0..counts.len() {
        println!(
            "{:>6} | {:>15} | {:>17} | {:>17} | {:>7.2}x",
            counts[i],
            sim_secs(gw64[i].total),
            sim_secs(gpmr64[i].compute_only.unwrap()),
            sim_secs(gpmr64[i].total),
            gpmr64[i].total / gw64[i].total,
        );
    }
    rule(86);
    println!("paper: \"GPMR's total time is about 1.5x Glasswing's for all cluster");
    println!("sizes\" — Glasswing's total approximates max(computation, I/O) while");
    println!("GPMR's is their sum.");
}
