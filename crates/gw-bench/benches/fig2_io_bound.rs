//! Figure 2 — horizontal scalability of the I/O-bound applications:
//! Pageview Count (a), WordCount (b) and TeraSort (c), Hadoop vs
//! Glasswing on CPU nodes over HDFS, 1–64 nodes (TS starts at 4 nodes:
//! "runs on smaller numbers of machines were infeasible because of lack
//! of free disk space").
//!
//! Reproduced with the `gw-sim` cluster models at paper scale. For each
//! application the harness prints execution time and speedup per node
//! count for both frameworks — the two line families of each sub-figure.

use gw_bench::{rule, sim_secs};
use gw_sim::sweep::{paper_node_counts, speedups, sweep};
use gw_sim::{AppParams, ClusterParams, FrameworkKind};

fn run_subfigure(tag: &str, app: &AppParams, counts: &[usize]) {
    let cluster = ClusterParams::das4_cpu_hdfs();
    let gw = sweep(FrameworkKind::Glasswing, app, &cluster, counts);
    let hd = sweep(FrameworkKind::Hadoop, app, &cluster, counts);
    let gw_s = speedups(&gw);
    let hd_s = speedups(&hd);

    println!(
        "\nFig. 2({tag}): {} — Hadoop vs Glasswing (CPU, HDFS)",
        app.name
    );
    rule(78);
    println!(
        "{:>6} | {:>13} {:>10} | {:>13} {:>10} | {:>7}",
        "nodes", "hadoop t(s)", "speedup", "glasswing t(s)", "speedup", "ratio"
    );
    rule(78);
    for i in 0..counts.len() {
        println!(
            "{:>6} | {:>13} {:>10.1} | {:>13} {:>10.1} | {:>6.2}x",
            counts[i],
            sim_secs(hd[i].total),
            hd_s[i],
            sim_secs(gw[i].total),
            gw_s[i],
            hd[i].total / gw[i].total,
        );
    }
    rule(78);
    let last = counts.len() - 1;
    println!(
        "gap: {:.2}x at {} node(s) -> {:.2}x at {} nodes; parallel efficiency {:.0}% vs {:.0}%",
        hd[0].total / gw[0].total,
        counts[0],
        hd[last].total / gw[last].total,
        counts[last],
        gw_s[last] / counts[last] as f64 * 100.0,
        hd_s[last] / counts[last] as f64 * 100.0,
    );
}

fn main() {
    println!("=== Figure 2: I/O-bound applications, horizontal scalability ===");
    let all = paper_node_counts();
    run_subfigure("a", &AppParams::pvc(), &all);
    run_subfigure("b", &AppParams::wc(), &all);
    // TS: 1 TB does not fit fewer than 4 nodes.
    let ts_counts: Vec<usize> = all.iter().copied().filter(|&n| n >= 4).collect();
    run_subfigure("c", &AppParams::ts(), &ts_counts);

    println!("\npaper shape targets: Glasswing below Hadoop everywhere; single-node");
    println!("gain ≥1.2x; the WC gap grows ~2.6x -> ~4x and the TS gap ~1.2x -> ~1.7x;");
    println!("speedup curves comparable with Glasswing slightly better at 64 nodes.");
}
