//! Tracked resident-service benchmark: open-loop tail latency of the
//! multi-tenant job service under WikiBench-style bursty arrivals.
//! Written to `BENCH_service.json` at the repo root so the service's
//! turnaround behaviour is versioned alongside the code.
//!
//! The harness preloads a catalog of pageview datasets on one shared
//! 4-node cluster, then replays a deterministic open-loop arrival
//! schedule (`gw_apps::arrivals`): bursty Zipf inter-arrival gaps, Zipf
//! workload popularity (so hot datasets repeat and exercise the result
//! cache), two tenants at weights 2:1. Submissions happen on the
//! schedule regardless of service backlog — queueing, not admission
//! rate, absorbs the bursts, which is what makes p99 meaningful.
//!
//! Measured metrics:
//!
//! * `p50_ms` / `p99_ms` — turnaround (admission → completion) of all
//!   completed jobs.
//! * `solo_ms` — best-of-N makespan of one such job on a dedicated
//!   cluster of the same slot count: the zero-contention floor.
//! * `p99_over_solo` — the headline gate: queueing + co-tenancy tax at
//!   the tail. Lower is better.
//! * `cache_hit_rate` — fraction of submissions served byte-identical
//!   from the result cache (the popularity distribution makes this
//!   meaningfully non-zero by construction).
//! * `mean_turnaround_alpha_ms` / `mean_turnaround_beta_ms` — per-tenant
//!   means, recorded so fairness drift is visible in review (the hard
//!   fairness gate lives in gw-service's scheduler unit tests).
//!
//! * `telemetry_overhead_p99` — p99 with the live telemetry plane on
//!   (the default production config, and what every other field here
//!   measures) over p99 with it off. The plane's hot path is one cached
//!   handle lookup + one relaxed atomic per event, so this must stay
//!   ≤ 2% (plus an absolute slack floor for scheduler noise at
//!   millisecond scale) — gated in `--check` mode.
//!
//! Usage: `cargo bench -p gw-bench --bench service -- [--quick] [--check]`
//!
//! * `--quick` shrinks the schedule (CI smoke). A full run additionally
//!   records the quick schedule's headline gate plus its raw percentiles
//!   (`quick_p50_ms`/`quick_p99_ms`/`quick_solo_ms`) as quick-reference
//!   fields, the `BENCH_shuffle.json` convention.
//! * `--check` validates the committed `BENCH_service.json` instead of
//!   rewriting it, failing if measured `p99_over_solo` exceeds 1.25x the
//!   committed value for the same mode (a >25% tail regression) or if
//!   the freshly measured telemetry overhead breaks its gate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gw_apps::arrivals::{arrival_schedule, ArrivalSpec};
use gw_apps::workloads::{web_logs, LogSpec};
use gw_apps::PageviewCount;
use gw_bench::flatjson::{self, Val};
use gw_core::{Cluster, JobConfig, NodeId};
use gw_net::NetProfile;
use gw_service::{JobSpec, Service, ServiceConfig, ServiceError, TenantSpec};
use gw_storage::split::FileStoreExt;
use gw_storage::{Dfs, DfsConfig};

const NODES: u32 = 4;
const SLOTS: u32 = 2;
const TENANTS: [&str; 2] = ["alpha", "beta"];

struct Sizes {
    /// Open-loop arrivals to replay.
    jobs: usize,
    /// Log entries per catalog dataset.
    entries: usize,
    /// Distinct datasets (workload seeds) in the catalog.
    catalog: usize,
    /// Mean inter-arrival gap.
    mean_gap: Duration,
    /// Solo-baseline repetitions (best-of).
    solo_iters: usize,
    /// Full service-run repetitions (the run with the lowest p99 wins,
    /// suppressing scheduler-noise outliers on both sides of the gate).
    service_iters: usize,
}

const QUICK: Sizes = Sizes {
    jobs: 12,
    entries: 200,
    catalog: 4,
    mean_gap: Duration::from_millis(40),
    solo_iters: 3,
    service_iters: 2,
};

const FULL: Sizes = Sizes {
    jobs: 40,
    entries: 400,
    catalog: 6,
    mean_gap: Duration::from_millis(30),
    solo_iters: 5,
    service_iters: 3,
};

fn log_spec(entries: usize, seed: u64) -> LogSpec {
    LogSpec {
        entries,
        hot_urls: 20,
        hot_fraction: 0.2,
        seed,
    }
}

fn input_path(seed: u64) -> String {
    format!("/svc/in-{seed}")
}

fn preload(dfs: &Dfs, sizes: &Sizes) {
    for seed in 0..sizes.catalog as u64 {
        let records = web_logs(&log_spec(sizes.entries, seed));
        dfs.write_records(
            &input_path(seed),
            NodeId(0),
            600,
            2,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    }
}

fn job_cfg(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::new(input_path(seed), "/ignored");
    cfg.device_threads = 2;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 16;
    cfg
}

/// Zero-contention floor: one job on a dedicated SLOTS-node cluster.
fn solo_ms(sizes: &Sizes) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..sizes.solo_iters {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(SLOTS).free_io()));
        let records = web_logs(&log_spec(sizes.entries, 0));
        dfs.write_records(
            &input_path(0),
            NodeId(0),
            600,
            2,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let mut cfg = job_cfg(0);
        cfg.output = "/solo/out".into();
        let start = Instant::now();
        cluster
            .run(Arc::new(PageviewCount::new()), &cfg)
            .expect("solo job failed");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct ServiceRun {
    p50_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    rejected: u64,
    mean_by_tenant: [f64; 2],
}

impl ServiceRun {
    fn p99_over_solo(&self, solo: f64) -> f64 {
        self.p99_ms / solo
    }
}

/// Best-of-N open-loop replays: the run with the lowest p99 wins.
fn run_service(sizes: &Sizes, telemetry: bool) -> ServiceRun {
    (0..sizes.service_iters)
        .map(|_| run_service_once(sizes, telemetry))
        .min_by(|a, b| a.p99_ms.total_cmp(&b.p99_ms))
        .expect("at least one service iteration")
}

fn run_service_once(sizes: &Sizes, telemetry: bool) -> ServiceRun {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    preload(&dfs, sizes);
    let mut scfg = ServiceConfig {
        max_queued: 256,
        cache_capacity: 64,
        tenants: vec![TenantSpec::new("alpha", 2), TenantSpec::new("beta", 1)],
        ..ServiceConfig::default()
    };
    scfg.telemetry.enabled = telemetry;
    for t in &mut scfg.tenants {
        t.max_queued = 128;
    }
    let service = Service::start(Arc::new(Cluster::new(dfs, NetProfile::unlimited())), scfg);

    let schedule = arrival_schedule(&ArrivalSpec {
        jobs: sizes.jobs,
        tenants: TENANTS.len(),
        mean_gap: sizes.mean_gap,
        burstiness: 0.7,
        catalog: sizes.catalog,
        popularity_s: 1.1,
        seed: 42,
    });

    // Open loop: submit on the schedule, never waiting on completions.
    let start = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for a in &schedule {
        let now = start.elapsed();
        if a.at > now {
            std::thread::sleep(a.at - now);
        }
        match service.submit(JobSpec {
            tenant: TENANTS[a.tenant].into(),
            app: Arc::new(PageviewCount::new()),
            cfg: job_cfg(a.workload_seed),
            workload_seed: a.workload_seed,
            slots: SLOTS,
            fault_plan: None,
        }) {
            Ok(t) => tickets.push((a.tenant, t)),
            Err(ServiceError::AdmissionRejected(_)) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }

    let mut turns_ms = Vec::with_capacity(tickets.len());
    let mut tenant_sum = [0.0f64; 2];
    let mut tenant_n = [0usize; 2];
    for (tenant, ticket) in tickets {
        let report = ticket.wait().expect("service job failed");
        let ms = report.turnaround.as_secs_f64() * 1e3;
        turns_ms.push(ms);
        tenant_sum[tenant] += ms;
        tenant_n[tenant] += 1;
    }
    turns_ms.sort_by(f64::total_cmp);

    let counters = service.counters();
    ServiceRun {
        p50_ms: percentile(&turns_ms, 0.50),
        p99_ms: percentile(&turns_ms, 0.99),
        cache_hit_rate: counters.cache_hits as f64 / counters.submitted.max(1) as f64,
        rejected,
        mean_by_tenant: [
            tenant_sum[0] / tenant_n[0].max(1) as f64,
            tenant_sum[1] / tenant_n[1].max(1) as f64,
        ],
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");

    let sizes = if quick { &QUICK } else { &FULL };
    let solo = solo_ms(sizes);
    let run = run_service(sizes, true);
    let run_off = run_service(sizes, false);
    let overhead = run.p99_ms / run_off.p99_ms;
    let quick_ref = if quick {
        None
    } else {
        // The quick reference is the CI gate's denominator: a single
        // best-of-N replay can draw an unluckily low tail and make the
        // gate flaky, so take the median ratio of three independent
        // replays.
        let qsolo = solo_ms(&QUICK);
        let mut qruns: Vec<ServiceRun> = (0..3).map(|_| run_service(&QUICK, true)).collect();
        qruns.sort_by(|a, b| a.p99_ms.total_cmp(&b.p99_ms));
        Some((qsolo, qruns.swap_remove(1)))
    };

    let mut fields = vec![
        ("schema", Val::Str("gw-service-bench-v1".into())),
        (
            "mode",
            Val::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("jobs", Val::Num(sizes.jobs as f64)),
        ("p50_ms", Val::Num(run.p50_ms)),
        ("p99_ms", Val::Num(run.p99_ms)),
        ("solo_ms", Val::Num(solo)),
        ("p99_over_solo", Val::Num(run.p99_over_solo(solo))),
        ("cache_hit_rate", Val::Num(run.cache_hit_rate)),
        ("rejected", Val::Num(run.rejected as f64)),
        ("mean_turnaround_alpha_ms", Val::Num(run.mean_by_tenant[0])),
        ("mean_turnaround_beta_ms", Val::Num(run.mean_by_tenant[1])),
        ("telemetry_off_p99_ms", Val::Num(run_off.p99_ms)),
        ("telemetry_overhead_p99", Val::Num(overhead)),
    ];
    if let Some((qsolo, qrun)) = &quick_ref {
        fields.extend([
            ("quick_p50_ms", Val::Num(qrun.p50_ms)),
            ("quick_p99_ms", Val::Num(qrun.p99_ms)),
            ("quick_solo_ms", Val::Num(*qsolo)),
            ("quick_p99_over_solo", Val::Num(qrun.p99_over_solo(*qsolo))),
            ("quick_cache_hit_rate", Val::Num(qrun.cache_hit_rate)),
        ]);
    }

    println!("service bench ({})", if quick { "quick" } else { "full" });
    for (k, v) in &fields {
        match v {
            Val::Str(s) => println!("  {k:26} {s}"),
            Val::Num(n) => println!("  {k:26} {n:.3}"),
        }
    }

    // Structural sanity regardless of mode: the popularity distribution
    // must actually exercise the cache, and the open loop must admit the
    // overwhelming majority of the schedule.
    assert!(
        run.cache_hit_rate > 0.0,
        "zipf-popular catalog produced zero cache hits"
    );
    assert!(
        run.rejected as usize <= sizes.jobs / 4,
        "admission shed {} of {} open-loop arrivals",
        run.rejected,
        sizes.jobs
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_service.json unreadable: {e}"));
        let map = flatjson::parse(&committed)
            .unwrap_or_else(|e| panic!("BENCH_service.json malformed: {e}"));
        match map.get("schema").and_then(Val::as_str) {
            Some("gw-service-bench-v1") => {}
            other => panic!("BENCH_service.json schema mismatch: {other:?}"),
        }
        let committed_num = |key: &str| -> f64 {
            map.get(key)
                .and_then(Val::as_num)
                .filter(|n| *n > 0.0)
                .unwrap_or_else(|| panic!("BENCH_service.json missing/invalid {key}"))
        };
        // p50_ms may legitimately be ~0 (the median submission can be a
        // cache hit resolved at admission), so it only needs to exist.
        assert!(
            map.get("p50_ms").and_then(Val::as_num).is_some(),
            "BENCH_service.json missing p50_ms"
        );
        for key in [
            "p99_ms",
            "solo_ms",
            "cache_hit_rate",
            "telemetry_off_p99_ms",
            "telemetry_overhead_p99",
        ] {
            committed_num(key);
        }
        // Tail-latency gate: LOWER is better, so the ceiling is 1.25x the
        // committed tail tax for the same mode, plus a small absolute
        // floor — at millisecond-scale p99s, scheduler noise moves the
        // ratio by ~0.1 run to run regardless of the code.
        let key = if quick {
            "quick_p99_over_solo"
        } else {
            "p99_over_solo"
        };
        let measured = run.p99_over_solo(solo);
        let ceiling = 1.25 * committed_num(key) + 0.1;
        println!(
            "  check {key:24} measured {measured:.3} vs ceiling {ceiling:.3} ... {}",
            if measured <= ceiling {
                "ok"
            } else {
                "REGRESSED"
            }
        );
        if measured > ceiling {
            eprintln!("service bench check FAILED: p99 tail regressed >25% vs committed");
            std::process::exit(1);
        }
        // Telemetry-overhead gate on the freshly measured pair (committed
        // values would compare across machines): ≤ 2% p99, with an
        // absolute slack floor because 2% of a millisecond-scale p99 is
        // below scheduler noise.
        let overhead_ceiling = run_off.p99_ms * 1.02 + 1.5;
        println!(
            "  check telemetry_overhead       p99 on {:.3}ms vs off {:.3}ms (ceiling {:.3}ms) ... {}",
            run.p99_ms,
            run_off.p99_ms,
            overhead_ceiling,
            if run.p99_ms <= overhead_ceiling {
                "ok"
            } else {
                "REGRESSED"
            }
        );
        if run.p99_ms > overhead_ceiling {
            eprintln!("service bench check FAILED: telemetry-on p99 exceeds the 2% overhead gate");
            std::process::exit(1);
        }
        println!("service bench check passed");
    } else {
        std::fs::write(path, flatjson::write(&fields)).expect("write BENCH_service.json");
        println!("wrote {path}");
    }
}
