//! Table III — KM map-pipeline time breakdown on (a) the CPU and (b) the
//! GPU, for the same three collection configurations as Table II.
//!
//! The CPU columns are measured wall times on this host. The GPU columns
//! execute the same kernels (so output stays correct) and report *modeled*
//! device times: per-chunk measured durations are transformed through the
//! GTX 480 profile (kernel scale, PCIe staging, driver coupling) and the
//! map elapsed time is the schedule-model makespan of those modeled
//! chunks — the §III-D interlock semantics applied to the modeled stage
//! durations.
//!
//! Shape targets: KM is dominated by the kernel stage; on the GPU the
//! kernel and elapsed times drop well below the CPU's; partitioning time
//! drops on the GPU ("no contention on CPU resources by the kernel
//! threads"); with simple output collection the elapsed time improves on
//! the CPU (small intermediate volume) but not on the GPU.

use std::sync::Arc;
use std::time::Duration;

use gw_apps::KMeans;
use gw_bench::{bench_cfg, kmeans_cluster, rule, secs};
use gw_core::schedule::{pipeline_makespan, ChunkTimes};
use gw_core::{CollectorKind, GwApp, StageId, TimingMode};
use gw_device::DeviceProfile;

struct Config {
    label: &'static str,
    collector: CollectorKind,
    combiner: bool,
}

fn run_device(device: DeviceProfile, modeled: bool, configs: &[Config]) {
    let mut table: Vec<Vec<String>> = Vec::new();
    let rows = [
        "Input",
        "Stage",
        "Kernel",
        "Retrieve",
        "Partitioning",
        "Map elapsed",
        "Merge delay",
        "Reduce time",
    ];
    for cfg_desc in configs {
        let (cluster, centers) = kmeans_cluster(120_000, 8, 96, 1, 512 << 10);
        let mut cfg = bench_cfg();
        cfg.device = device.clone();
        cfg.collector = cfg_desc.collector;
        cfg.timing = if modeled {
            TimingMode::Modeled
        } else {
            TimingMode::Wall
        };
        let app = KMeans::new(centers, 96, 8);
        let app: Arc<dyn GwApp> = if cfg_desc.combiner {
            Arc::new(app)
        } else {
            Arc::new(app.without_combiner())
        };
        let report = cluster.run(app, &cfg).expect("job failed");
        let n = &report.nodes[0];
        let pick = |s: StageId| -> Duration {
            if modeled {
                n.map_timers.modeled(s)
            } else {
                n.map_timers.wall(s)
            }
        };
        // Elapsed: measured on CPU; schedule-replayed modeled chunks on
        // the simulated device.
        let elapsed = if modeled {
            let chunks: Vec<ChunkTimes> = n
                .map_samples
                .iter()
                .map(|s| {
                    [
                        s[0].modeled,
                        s[1].modeled,
                        s[2].modeled,
                        s[3].modeled,
                        s[4].modeled,
                    ]
                })
                .collect();
            pipeline_makespan(&chunks, cfg.buffering)
        } else {
            n.map.elapsed
        };
        table.push(vec![
            secs(pick(StageId::Input)),
            secs(pick(StageId::Stage)),
            secs(pick(StageId::Kernel)),
            secs(pick(StageId::Retrieve)),
            secs(pick(StageId::Partition)),
            secs(elapsed),
            secs(n.merge_delay),
            secs(n.reduce.elapsed),
        ]);
    }

    print!("{:<14} |", "");
    for c in configs {
        print!(" {:>13} |", c.label);
    }
    println!();
    rule(64);
    for (r, name) in rows.iter().enumerate() {
        print!("{name:<14} |");
        for col in &table {
            print!(" {:>13} |", col[r]);
        }
        println!();
    }
    rule(64);
}

fn main() {
    let configs = [
        Config {
            label: "hash+combiner",
            collector: CollectorKind::HashTable,
            combiner: true,
        },
        Config {
            label: "hash table",
            collector: CollectorKind::HashTable,
            combiner: false,
        },
        Config {
            label: "simple",
            collector: CollectorKind::BufferPool,
            combiner: false,
        },
    ];

    println!("=== Table III(a): KM map pipeline on the CPU (measured, seconds) ===\n");
    run_device(DeviceProfile::host(), false, &configs);

    println!("\n=== Table III(b): KM map pipeline on the GTX 480 (modeled, seconds) ===");
    println!("(kernels executed for real; times transformed by the device profile,");
    println!(" elapsed = schedule-model makespan of the modeled per-chunk times)\n");
    run_device(DeviceProfile::gtx480(), true, &configs);

    println!("\npaper shape targets: kernel dominates on the CPU; GPU kernel and");
    println!("elapsed times beat the CPU's; Stage/Retrieve visible only on the GPU;");
    println!("hash+combiner is the best GPU configuration.");
}
