//! Table II — WC map-pipeline time breakdown (seconds) on one node.
//!
//! Columns, as in the paper:
//!   (i)   hash table + combiner, double buffering;
//!   (ii)  hash table, no combiner, double buffering;
//!   (iii) simple output collection (buffer pool), double buffering;
//!   (iv)  hash table + combiner, single buffering.
//!
//! Rows: Input, Kernel, Partitioning stage totals, the map elapsed time,
//! the merge delay, and the reduce time. The pipeline analysis runs on one
//! node without HDFS cost ("the pipeline analysis was performed on one
//! Type-1 node without HDFS"), on a scaled-down Zipf corpus.
//!
//! Shape targets: the hash table slows the kernel (bucket contention) but
//! shrinks partitioning; without the combiner, partitioning/merge/reduce
//! grow; with simple collection the kernel is fastest but partitioning
//! becomes the dominant stage and the elapsed time rises; under single
//! buffering the elapsed time approaches input+kernel (input group
//! serialised).

use std::sync::Arc;
use std::time::Duration;

use gw_apps::WordCount;
use gw_bench::{bench_cfg, corpus_cluster_paced, rule, secs};
use gw_core::{Buffering, CollectorKind, GwApp, StageId};

struct Row {
    label: &'static str,
    values: Vec<Duration>,
}

fn main() {
    println!("=== Table II: WC map pipeline time breakdown (seconds) ===\n");
    let configs: [(&str, CollectorKind, bool, Buffering); 4] = [
        (
            "hash+comb/dbl",
            CollectorKind::HashTable,
            true,
            Buffering::Double,
        ),
        (
            "hash/dbl",
            CollectorKind::HashTable,
            false,
            Buffering::Double,
        ),
        (
            "simple/dbl",
            CollectorKind::BufferPool,
            false,
            Buffering::Double,
        ),
        (
            "hash+comb/sgl",
            CollectorKind::HashTable,
            true,
            Buffering::Single,
        ),
    ];

    let mut rows = vec![
        Row {
            label: "Input",
            values: Vec::new(),
        },
        Row {
            label: "Kernel",
            values: Vec::new(),
        },
        Row {
            label: "Partitioning",
            values: Vec::new(),
        },
        Row {
            label: "Map elapsed",
            values: Vec::new(),
        },
        Row {
            label: "Merge delay",
            values: Vec::new(),
        },
        Row {
            label: "Reduce time",
            values: Vec::new(),
        },
    ];
    let mut records_out = Vec::new();

    for (label, collector, combiner, buffering) in &configs {
        // Fresh cluster per configuration (identical corpus, seeded).
        let cluster = corpus_cluster_paced(60_000, 40_000, 1, 256 << 10);
        let mut cfg = bench_cfg();
        cfg.collector = *collector;
        cfg.buffering = *buffering;
        cfg.partition_threads = 2;
        let app: Arc<dyn GwApp> = if *combiner {
            Arc::new(WordCount::new())
        } else {
            Arc::new(WordCount::without_combiner())
        };
        let report = cluster.run(app, &cfg).expect("job failed");
        let n = &report.nodes[0];
        rows[0].values.push(n.map_timers.wall(StageId::Input));
        rows[1].values.push(n.map_timers.wall(StageId::Kernel));
        rows[2].values.push(n.map_timers.wall(StageId::Partition));
        rows[3].values.push(n.map.elapsed);
        rows[4].values.push(n.merge_delay);
        rows[5].values.push(n.reduce.elapsed);
        records_out.push(n.map.records_out);
        let _ = label;
    }

    println!(
        "{:<14} | {:>13} | {:>13} | {:>13} | {:>13}",
        "", configs[0].0, configs[1].0, configs[2].0, configs[3].0
    );
    rule(76);
    for row in &rows {
        print!("{:<14} |", row.label);
        for v in &row.values {
            print!(" {:>13} |", secs(*v));
        }
        println!();
    }
    rule(76);
    print!("{:<14} |", "interm. recs");
    for r in &records_out {
        print!(" {r:>13} |");
    }
    println!();

    println!("\nshape checks:");
    let kernel = &rows[1].values;
    let partition = &rows[2].values;
    let elapsed = &rows[3].values;
    println!(
        "  simple-collection kernel faster than hash-table kernel: {}",
        ok(kernel[2] < kernel[1])
    );
    println!(
        "  combiner shrinks intermediate volume: {}",
        ok(records_out[0] < records_out[1] / 2)
    );
    println!(
        "  partitioning dominates under simple collection: {}",
        ok(partition[2] > kernel[2])
    );
    println!(
        "  elapsed ≈ dominant stage under double buffering (config i): {}",
        ok(elapsed[0] < rows[0].values[0] + kernel[0] + partition[0])
    );
    println!(
        "  single buffering elapsed ≥ double buffering elapsed: {}",
        ok(elapsed[3] >= elapsed[0])
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISMATCH"
    }
}
