//! Tracked pipeline-executor benchmark: map throughput of the shared
//! stage-graph executor at each §III-D buffering level, plus the cost of
//! *not* fusing the Stage/Retrieve pass-through stages on a unified-memory
//! (CPU) profile. Written to `BENCH_pipeline.json` at the repo root so the
//! executor's behaviour is versioned alongside the code.
//!
//! Measured metrics (best-of-N wall time of the real map phase):
//!
//! * `single_mrecs` / `double_mrecs` / `triple_mrecs` — map throughput
//!   (million input records/s) at each buffering level, under paced
//!   local-FS-style reads so the Input stage carries real time for
//!   double/triple buffering to overlap (§III-D).
//! * `fused_mrecs` vs `unfused_mrecs` — the same CPU-profile job with
//!   Stage/Retrieve fused out of the graph (3 stage threads) vs forced
//!   live (5 stage threads, DRAM-speed copies through a staging buffer).
//!   `fused_over_unfused` is the headline delta: the paper's "the input
//!   stager is disabled" optimisation as a measured ratio.
//! * `lanes{1,2,4}_mrecs` — the lane-scaling sweep (DESIGN.md §3.9): the
//!   advisor-named bottleneck stage (`lane_stage`) widened to 1, 2 and 4
//!   lanes via `JobConfig::lane_plan`, everything else default. The
//!   paced Input stage is latency-bound, so extra lanes overlap its
//!   waits even on one core. `predicted_lanes2_speedup` records what the
//!   advisor's N-lane schedule replay promised for 2 lanes; a full run
//!   asserts the measured `lanes2_over_lanes1` realises at least half of
//!   that promise (the PR's acceptance floor).
//!
//! Every run also asserts the executor's structural invariants: observed
//! in-flight chunks never exceed the buffering depth, and the fused graph
//! spawns exactly 3 stage threads where the unfused one spawns 5.
//!
//! Usage: `cargo bench -p gw-bench --bench pipeline -- [--quick] [--check]`
//!
//! * `--quick` shrinks the workload (CI smoke). A full run additionally
//!   records the quick workload's ratios as `quick_*` fields so a quick
//!   check compares like against like.
//! * `--check` validates the committed `BENCH_pipeline.json` instead of
//!   rewriting it, failing if a measured ratio fell below 0.75x the
//!   committed one for the same mode.

use std::sync::Arc;
use std::time::Duration;

use gw_apps::WordCount;
use gw_bench::flatjson::{self, Val};
use gw_bench::{bench_cfg, corpus_cluster_paced, corpus_cluster_paced_io};
use gw_core::{Buffering, Cluster, JobConfig, LanePlan, PerfAnalysis, PipelineKind, StageId};
use gw_device::DeviceProfile;

struct Sizes {
    iters: usize,
    lines: usize,
    /// DFS block size; sized so every run streams dozens of chunks and
    /// the measurement sees pipeline steady state, not fill/drain.
    block: usize,
}

// Quick mode gates CI at a 0.75x floor on ratios of best-of-`iters`
// measurements; 5 iterations keep both sides of each ratio close enough
// to their true minimum that scheduler noise stays inside the floor.
const QUICK: Sizes = Sizes {
    iters: 5,
    lines: 6_000,
    block: 32 << 10,
};

const FULL: Sizes = Sizes {
    iters: 5,
    lines: 30_000,
    block: 64 << 10,
};

/// The host CPU profile with fusion defeated: same compute model, but the
/// executor must keep the Stage and Retrieve threads (and their staging
/// copies) live.
fn unfused_host() -> DeviceProfile {
    DeviceProfile {
        name: "host-unfused",
        unified_memory: false,
        ..DeviceProfile::host()
    }
}

/// Best-of-`iters` map throughput (Mrec/s) for one configuration, with
/// the executor's structural invariants asserted on every run.
fn measure_map(sizes: &Sizes, mutate: impl Fn(&mut JobConfig)) -> (f64, usize) {
    // Paced local-FS reads give the Input stage a real duration, so
    // buffering has something to overlap (the paper's local-FS runs).
    measure_map_on(
        || corpus_cluster_paced(sizes.lines, 30_000, 1, sizes.block),
        sizes.iters,
        mutate,
    )
}

fn measure_map_on(
    cluster: impl Fn() -> Cluster,
    iters: usize,
    mutate: impl Fn(&mut JobConfig),
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut stage_threads = 0;
    for _ in 0..iters {
        let cluster = cluster();
        let mut cfg = bench_cfg();
        mutate(&mut cfg);
        let report = cluster
            .run(Arc::new(WordCount::new()), &cfg)
            .expect("job failed");
        let n = &report.nodes[0];
        assert!(
            n.map.max_in_flight <= cfg.buffering.depth(),
            "interlock violated: {} in flight under {:?}",
            n.map.max_in_flight,
            cfg.buffering
        );
        stage_threads = n.map.stage_threads;
        best = best.min(n.map.elapsed.as_secs_f64() / n.map.records_in as f64);
    }
    (1e-6 / best, stage_threads)
}

struct Metrics {
    single: f64,
    double: f64,
    triple: f64,
    fused: f64,
    unfused: f64,
}

impl Metrics {
    fn double_over_single(&self) -> f64 {
        self.double / self.single
    }
    fn triple_over_single(&self) -> f64 {
        self.triple / self.single
    }
    fn fused_over_unfused(&self) -> f64 {
        self.fused / self.unfused
    }
}

fn measure(sizes: &Sizes) -> Metrics {
    let buffered = |b: Buffering| {
        let (mrecs, threads) = measure_map(sizes, |cfg| cfg.buffering = b);
        assert_eq!(threads, 3, "host profile must fuse Stage/Retrieve");
        mrecs
    };
    let single = buffered(Buffering::Single);
    let double = buffered(Buffering::Double);
    let triple = buffered(Buffering::Triple);
    // Fused vs unfused at the default (double) buffering level.
    let fused = double;
    let (unfused, threads) = measure_map(sizes, |cfg| cfg.device = unfused_host());
    assert_eq!(threads, 5, "unfused profile must keep all five stages");
    Metrics {
        single,
        double,
        triple,
        fused,
        unfused,
    }
}

struct LaneSweep {
    /// The stage the lanes were spent on (advisor-named bottleneck).
    stage: StageId,
    /// The advisor's modelled speedup for doubling that stage's lanes.
    predicted2: f64,
    lanes1: f64,
    lanes2: f64,
    lanes4: f64,
}

impl LaneSweep {
    fn lanes2_over_lanes1(&self) -> f64 {
        self.lanes2 / self.lanes1
    }
    fn lanes4_over_lanes1(&self) -> f64 {
        self.lanes4 / self.lanes1
    }
}

/// The lane sweep's I/O regime: reads paced slow enough that the Input
/// stage dominates the map pipeline outright — the vertical-scaling
/// limit of the paper's local-FS runs. Extra input lanes then overlap
/// real wait, which is what lane planning is for. (Under the default
/// bench pacing the §III-D buffering already hides the smaller input
/// time behind the kernel, and on this host a second lane could only
/// measure scheduler noise.)
fn lane_cluster(sizes: &Sizes) -> Cluster {
    let model = gw_storage::IoModel {
        per_call_overhead: Duration::from_micros(300),
        local_bandwidth: 15.0e6,
        remote_bandwidth: 200.0e6,
        copy_amplification: 1.0,
    };
    corpus_cluster_paced_io(sizes.lines, 30_000, 1, sizes.block, model)
}

/// Widen the advisor-named bottleneck (same pick as
/// [`LanePlan::from_advice`]: the named stage if widenable, else the best
/// widenable `lane_scaling` entry) to 1, 2 and 4 lanes and measure.
fn lane_sweep(sizes: &Sizes) -> LaneSweep {
    // One probe run tells the advisor where the bottleneck sits and what
    // a second lane there should buy on exactly this workload.
    let report = lane_cluster(sizes)
        .run(Arc::new(WordCount::new()), &bench_cfg())
        .expect("job failed");
    let advice = &report.analysis.advice;
    let stage = advice
        .bottleneck
        .filter(|s| LanePlan::widenable(*s))
        .or_else(|| {
            advice
                .lane_scaling
                .iter()
                .filter(|(s, _)| LanePlan::widenable(*s))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(s, _)| *s)
        })
        .expect("no widenable stage in the advisor output");
    let run_lanes = |lanes: usize| {
        let (mrecs, threads) = measure_map_on(
            || lane_cluster(sizes),
            sizes.iters,
            |cfg| {
                cfg.lane_plan = LanePlan::single().with_stage(stage, lanes);
            },
        );
        // Fused host graph (3 threads) plus one thread per extra lane.
        assert_eq!(threads, 3 + (lanes - 1), "lane threads not spawned");
        mrecs
    };
    LaneSweep {
        stage,
        predicted2: advice.doubling_speedup(stage),
        lanes1: run_lanes(1),
        lanes2: run_lanes(2),
        lanes4: run_lanes(4),
    }
}

/// One paced, default-buffered job folded through the trace analysis.
/// The map pipeline's efficiency score must beat the serialized lower
/// bound (busy-sum == busy-union ⇒ exactly 1.0): under paced reads the
/// §III-D overlap machinery has real Input time to hide, so a score at
/// the bound means the pipeline has silently stopped overlapping.
fn analyze(sizes: &Sizes) -> PerfAnalysis {
    let cluster = corpus_cluster_paced(sizes.lines, 30_000, 1, sizes.block);
    let report = cluster
        .run(Arc::new(WordCount::new()), &bench_cfg())
        .expect("job failed");
    let map = report
        .analysis
        .pipeline(0, PipelineKind::Map)
        .expect("map pipeline traced");
    assert!(
        map.efficiency() > 1.0,
        "map pipeline efficiency {:.3} fell to the serialized bound",
        map.efficiency()
    );
    report.analysis
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");

    let sizes = if quick { &QUICK } else { &FULL };
    let m = measure(sizes);
    let analysis = analyze(sizes);
    let lanes = lane_sweep(sizes);
    let quick_ref = if quick {
        None
    } else {
        Some((measure(&QUICK), lane_sweep(&QUICK)))
    };

    let mut fields = vec![
        ("schema", Val::Str("gw-pipeline-bench-v1".into())),
        (
            "mode",
            Val::Str(if quick { "quick" } else { "full" }.into()),
        ),
        ("single_mrecs", Val::Num(m.single)),
        ("double_mrecs", Val::Num(m.double)),
        ("triple_mrecs", Val::Num(m.triple)),
        ("fused_mrecs", Val::Num(m.fused)),
        ("unfused_mrecs", Val::Num(m.unfused)),
        ("double_over_single", Val::Num(m.double_over_single())),
        ("triple_over_single", Val::Num(m.triple_over_single())),
        ("fused_over_unfused", Val::Num(m.fused_over_unfused())),
        ("lane_stage", Val::Str(lanes.stage.name().into())),
        ("lanes1_mrecs", Val::Num(lanes.lanes1)),
        ("lanes2_mrecs", Val::Num(lanes.lanes2)),
        ("lanes4_mrecs", Val::Num(lanes.lanes4)),
        ("lanes2_over_lanes1", Val::Num(lanes.lanes2_over_lanes1())),
        ("lanes4_over_lanes1", Val::Num(lanes.lanes4_over_lanes1())),
        ("predicted_lanes2_speedup", Val::Num(lanes.predicted2)),
    ];
    if let Some((q, ql)) = &quick_ref {
        fields.extend([
            ("quick_double_over_single", Val::Num(q.double_over_single())),
            ("quick_triple_over_single", Val::Num(q.triple_over_single())),
            ("quick_fused_over_unfused", Val::Num(q.fused_over_unfused())),
            (
                "quick_lanes2_over_lanes1",
                Val::Num(ql.lanes2_over_lanes1()),
            ),
            (
                "quick_lanes4_over_lanes1",
                Val::Num(ql.lanes4_over_lanes1()),
            ),
        ]);
    }

    println!("pipeline bench ({})", if quick { "quick" } else { "full" });
    for (k, v) in &fields {
        match v {
            Val::Str(s) => println!("  {k:24} {s}"),
            Val::Num(n) => println!("  {k:24} {n:.3}"),
        }
    }
    if let Some(map) = analysis.pipeline(0, PipelineKind::Map) {
        println!("  {:24} {:.3}", "map_efficiency", map.efficiency());
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    if check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("BENCH_pipeline.json unreadable: {e}"));
        let map = flatjson::parse(&committed)
            .unwrap_or_else(|e| panic!("BENCH_pipeline.json malformed: {e}"));
        match map.get("schema").and_then(Val::as_str) {
            Some("gw-pipeline-bench-v1") => {}
            other => panic!("BENCH_pipeline.json schema mismatch: {other:?}"),
        }
        let committed_num = |key: &str| -> f64 {
            map.get(key)
                .and_then(Val::as_num)
                .filter(|n| *n > 0.0)
                .unwrap_or_else(|| panic!("BENCH_pipeline.json missing/invalid {key}"))
        };
        let prefix = if quick { "quick_" } else { "" };
        let mut failed = false;
        for (key, measured) in [
            ("double_over_single", m.double_over_single()),
            ("triple_over_single", m.triple_over_single()),
            ("fused_over_unfused", m.fused_over_unfused()),
            ("lanes2_over_lanes1", lanes.lanes2_over_lanes1()),
            ("lanes4_over_lanes1", lanes.lanes4_over_lanes1()),
        ] {
            let floor = 0.75 * committed_num(&format!("{prefix}{key}"));
            let ok = measured >= floor;
            println!(
                "  check {prefix}{key:22} measured {measured:.3} vs floor {floor:.3} ... {}",
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        for key in [
            "single_mrecs",
            "double_mrecs",
            "triple_mrecs",
            "unfused_mrecs",
            "lanes1_mrecs",
            "lanes2_mrecs",
            "lanes4_mrecs",
            "predicted_lanes2_speedup",
        ] {
            committed_num(key);
        }
        if failed {
            eprintln!("pipeline bench check FAILED: ratio regressed >25% vs committed");
            std::process::exit(1);
        }
        println!("pipeline bench check passed");
    } else {
        // Acceptance: lanes on the advisor-named bottleneck must realise
        // at least half the speedup the advisor's replay predicted.
        let acceptance_floor = 1.0 + 0.5 * (lanes.predicted2 - 1.0);
        let measured2 = lanes.lanes2_over_lanes1();
        println!(
            "  lanes=2 on {}: measured {measured2:.3}x vs predicted {:.3}x (floor {acceptance_floor:.3}x)",
            lanes.stage.name(),
            lanes.predicted2
        );
        assert!(
            measured2 >= acceptance_floor,
            "lanes=2 on {} gave {measured2:.3}x, below half the advisor's \
             predicted {:.3}x",
            lanes.stage.name(),
            lanes.predicted2
        );
        std::fs::write(path, flatjson::write(&fields)).expect("write BENCH_pipeline.json");
        println!("wrote {path}");
        // The full per-stage analysis of the same workload rides along,
        // so a bench regression can be attributed without a rerun.
        let analysis_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_pipeline_analysis.json"
        );
        std::fs::write(analysis_path, analysis.to_json())
            .expect("write BENCH_pipeline_analysis.json");
        println!("wrote {analysis_path}");
    }
}
