//! Figure 4 — fine-grained control of intermediate-data handling (WC):
//!
//! * (a) the Partitioning and Kernel stage times as a function of `N`, the
//!   number of partitioning threads: with N=1 partitioning dominates; it
//!   must drop below the kernel stage "already from 2 threads onwards";
//! * (b) the merge delay as a function of `P` (partitions per node, with
//!   merger threads = P as in the paper) and `N`: "an increase in P leads
//!   to a sharp decrease in merge delay ... An increase in N causes an
//!   increase of the merge delay."
//!
//! Run on one node without HDFS, like the paper's pipeline analysis. The
//! simple collector (no combiner) maximises intermediate volume so the
//! partitioning/merge machinery is actually loaded.

use std::sync::Arc;

use gw_apps::WordCount;
use gw_bench::{bench_cfg, corpus_cluster_paced, rule, secs};
use gw_core::schedule::{pipeline_makespan, ChunkTimes};
use gw_core::{Buffering, CollectorKind, StageId};

fn main() {
    println!("=== Figure 4(a): map pipeline stage times vs partitioning threads N ===\n");
    // Measure the partitioning *service demand* with a single lane, then
    // model N cooperating lanes through the pipeline-schedule model (the
    // same methodology as the accelerator tables: measure work, model
    // parallelism — required here because the bench host may have fewer
    // cores than the paper's 16-thread nodes).
    let cluster = corpus_cluster_paced(60_000, 40_000, 1, 256 << 10);
    let mut cfg = bench_cfg();
    cfg.collector = CollectorKind::BufferPool;
    cfg.partition_threads = 1;
    let report = cluster
        .run(Arc::new(WordCount::without_combiner()), &cfg)
        .expect("job failed");
    let node = &report.nodes[0];
    let base_chunks: Vec<ChunkTimes> = node
        .map_samples
        .iter()
        .map(|s| [s[0].wall, s[1].wall, s[2].wall, s[3].wall, s[4].wall])
        .collect();
    let kernel_total = node.map_timers.wall(StageId::Kernel);
    let partition_work = node.map_timers.wall(StageId::Partition);

    println!(
        "{:>3} | {:>12} | {:>13} | {:>12}",
        "N", "kernel (s)", "partition (s)", "map elapsed"
    );
    rule(50);
    let mut partition_times = Vec::new();
    let mut kernel_times = Vec::new();
    for n_threads in [1u32, 2, 4, 8] {
        let scaled: Vec<ChunkTimes> = base_chunks
            .iter()
            .map(|c| [c[0], c[1], c[2], c[3], c[4] / n_threads])
            .collect();
        let elapsed = pipeline_makespan(&scaled, Buffering::Double);
        let partition = partition_work / n_threads;
        println!(
            "{n_threads:>3} | {:>12} | {:>13} | {:>12}",
            secs(kernel_total),
            secs(partition),
            secs(elapsed)
        );
        kernel_times.push(kernel_total);
        partition_times.push(partition);
    }
    rule(50);
    println!(
        "partitioning drops with N: {}",
        ok(partition_times.last().unwrap() < &partition_times[0])
    );
    // Paper: "its time drops below the Kernel stage already from N threads
    // onwards" (the exact N depends on the corpus' partition/kernel work
    // ratio; a few threads suffice).
    println!(
        "partitioning dominant at N=1, below kernel within 4 threads: {}",
        ok(partition_times[0] > kernel_times[0] && partition_times[2] < kernel_times[2])
    );

    println!("\n=== Figure 4(b): merge delay vs partitions P and partitioning threads N ===\n");
    println!("{:>3} {:>3} | {:>15}", "P", "N", "merge delay (s)");
    rule(28);
    let mut delays = std::collections::BTreeMap::new();
    for p in [1u32, 2, 4, 8] {
        for n_threads in [1usize, 4] {
            let cluster = corpus_cluster_paced(60_000, 40_000, 1, 256 << 10);
            let mut cfg = bench_cfg();
            cfg.collector = CollectorKind::BufferPool;
            cfg.partition_threads = n_threads;
            cfg.partitions_per_node = p;
            // Mergers per partition, as in the paper's experiment ("the
            // number of threads allocated to merging and flushing are
            // chosen equal to P").
            cfg.merger_threads = p as usize;
            // Small cache so merging has real work to chew on.
            cfg.cache_threshold = 4 << 20;
            let report = cluster
                .run(Arc::new(WordCount::without_combiner()), &cfg)
                .expect("job failed");
            let delay = report.nodes[0].merge_delay;
            println!("{p:>3} {n_threads:>3} | {:>15}", secs(delay));
            delays.insert((p, n_threads), delay);
        }
    }
    rule(28);
    println!(
        "merge delay shrinks with P (N=1): {}",
        ok(delays[&(8, 1)] < delays[&(1, 1)])
    );
    println!("\npaper conclusion: \"the number of partitioning threads must be chosen");
    println!("as 2+, and P must be chosen large\"; these settings feed the horizontal");
    println!("scalability runs.");
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISMATCH"
    }
}
