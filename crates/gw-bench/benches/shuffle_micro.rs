//! Criterion micro-benchmarks of the arena shuffle substrates against
//! their pre-arena baselines: run sorting (radix index sort vs owned-pair
//! `sort_unstable`), k-way merging (loser tree vs `BinaryHeap`) at
//! k ∈ {2, 8, 64}, and the run-byte compression codec.
//!
//! The tracked end-to-end numbers live in `BENCH_shuffle.json` (see the
//! `shuffle` bench); these isolate each mechanism.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gw_bench::baseline::{heap_merge, naive_run_from_pairs};
use gw_intermediate::{compress, merge_runs, Run, RunPool};

/// WordCount-profile records: hot head, long cold tail.
fn words(n: usize, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let r = next();
            let rank = if r % 3 == 0 { r % 16 } else { r % 16_384 };
            (
                format!("word{rank:05}").into_bytes(),
                1u32.to_le_bytes().to_vec(),
            )
        })
        .collect()
}

fn bench_run_sort(c: &mut Criterion) {
    let recs = words(16_000, 0xA5);
    let pool = Arc::new(RunPool::new());
    let mut g = c.benchmark_group("shuffle/run_sort_16k");
    g.throughput(Throughput::Elements(recs.len() as u64));
    g.bench_function("arena_radix", |b| {
        b.iter(|| {
            let mut builder = pool.builder();
            for (k, v) in &recs {
                builder.push(k, v);
            }
            black_box(builder.build())
        })
    });
    g.bench_function("naive_sort_unstable", |b| {
        b.iter(|| black_box(naive_run_from_pairs(black_box(recs.clone()))))
    });
    g.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle/kway_merge");
    for k in [2usize, 8, 64] {
        // Constant total records (~32k) so the axis is fan-in, not size.
        let per_run = 32_768 / k;
        let runs: Vec<Run> = (0..k)
            .map(|s| naive_run_from_pairs(words(per_run, s as u64 * 7 + 1)))
            .collect();
        let total: usize = runs.iter().map(|r| r.records()).sum();
        g.throughput(Throughput::Elements(total as u64));
        g.bench_function(BenchmarkId::new("loser_tree", k), |b| {
            b.iter(|| black_box(merge_runs(black_box(&runs))))
        });
        g.bench_function(BenchmarkId::new("binary_heap", k), |b| {
            b.iter(|| black_box(heap_merge(black_box(&runs))))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let run = naive_run_from_pairs(words(64_000, 0x1D));
    let raw = run.into_shared();
    let packed = compress::compress(&raw);
    let mut g = c.benchmark_group("shuffle/codec");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("compress", |b| {
        b.iter(|| black_box(compress::compress(black_box(&raw))))
    });
    g.bench_function("decompress", |b| {
        b.iter(|| black_box(compress::decompress(black_box(&packed)).unwrap()))
    });
    g.finish();
}

criterion_group!(
    name = shuffle_micro;
    config = Criterion::default().sample_size(20);
    targets = bench_run_sort, bench_kway_merge, bench_codec
);
criterion_main!(shuffle_micro);
