//! Shared helpers for the experiment harnesses.
//!
//! Each `cargo bench` target in `benches/` regenerates one table or figure
//! of the paper (see DESIGN.md's experiment index). Real-engine
//! experiments run scaled-down workloads on this machine; cluster-scaling
//! experiments run the `gw-sim` models at paper scale. Harnesses print the
//! same rows/series the paper reports.

use std::sync::Arc;
use std::time::Duration;

use gw_apps::workloads::{self, CorpusSpec, KmeansSpec};
use gw_core::{Cluster, JobConfig, NodeId};
use gw_net::NetProfile;
use gw_storage::split::FileStoreExt;
use gw_storage::{Dfs, DfsConfig};

/// Format a duration as fractional seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a simulated time (f64 seconds).
pub fn sim_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else {
        format!("{s:.1}")
    }
}

/// Print a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// A Zipf text corpus loaded into a fresh single-or-multi-node DFS with a
/// free I/O model (local-FS-like: the pipeline-analysis experiments were
/// run "on one Type-1 node without HDFS").
pub fn corpus_cluster(lines: usize, vocabulary: usize, nodes: u32, block: usize) -> Cluster {
    corpus_cluster_with(
        lines,
        vocabulary,
        nodes,
        block,
        DfsConfig::new(nodes).free_io(),
    )
}

/// Like [`corpus_cluster`] but with *paced* local-FS-style reads, so the
/// Input stage carries a real (scaled) duration in pipeline breakdowns.
pub fn corpus_cluster_paced(lines: usize, vocabulary: usize, nodes: u32, block: usize) -> Cluster {
    // Scale the local-FS model down so the bench corpus (MBs) produces
    // input times of the same order as its kernel times, as the paper's
    // local-FS runs do.
    let model = gw_storage::IoModel {
        per_call_overhead: std::time::Duration::from_micros(100),
        local_bandwidth: 60.0e6,
        remote_bandwidth: 200.0e6,
        copy_amplification: 1.0,
    };
    corpus_cluster_with(
        lines,
        vocabulary,
        nodes,
        block,
        DfsConfig::new(nodes).paced_io(model),
    )
}

/// Like [`corpus_cluster_paced`] with a caller-supplied I/O model, for
/// benches that need a specific input-time regime (e.g. the lane-scaling
/// sweep's input-bound pacing).
pub fn corpus_cluster_paced_io(
    lines: usize,
    vocabulary: usize,
    nodes: u32,
    block: usize,
    model: gw_storage::IoModel,
) -> Cluster {
    corpus_cluster_with(
        lines,
        vocabulary,
        nodes,
        block,
        DfsConfig::new(nodes).paced_io(model),
    )
}

fn corpus_cluster_with(
    lines: usize,
    vocabulary: usize,
    nodes: u32,
    block: usize,
    dfs_cfg: DfsConfig,
) -> Cluster {
    assert_eq!(dfs_cfg.nodes, nodes, "node count mismatch");
    let spec = CorpusSpec {
        lines,
        words_per_line: 12,
        vocabulary,
        zipf_s: 1.05,
        seed: 424_242,
    };
    let recs = workloads::text_corpus(&spec);
    let dfs = Arc::new(Dfs::new(dfs_cfg));
    dfs.write_records(
        "/bench/in",
        NodeId(0),
        block,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load corpus");
    Cluster::new(dfs, NetProfile::unlimited())
}

/// A K-Means point set loaded into a fresh DFS; returns the cluster and
/// the app's centers.
pub fn kmeans_cluster(
    points: usize,
    dims: usize,
    centers: usize,
    nodes: u32,
    block: usize,
) -> (Cluster, Vec<f32>) {
    let spec = KmeansSpec {
        points,
        dims,
        centers,
        seed: 77_001,
    };
    let pts = workloads::kmeans_points(&spec);
    let c = workloads::kmeans_centers(&spec);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/bench/in",
        NodeId(0),
        block,
        3,
        pts.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load points");
    (Cluster::new(dfs, NetProfile::unlimited()), c)
}

pub mod baseline;
pub mod flatjson;

/// The standard bench job configuration (scaled to this machine).
pub fn bench_cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/bench/in", "/bench/out");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    cfg.device_threads = (host / 2).clamp(2, 8);
    cfg.partition_threads = 2;
    cfg.collector_capacity = 16 << 20;
    cfg.hash_buckets = 1 << 14;
    cfg
}
