//! Minimal flat-JSON writer/parser for tracked benchmark files.
//!
//! The workspace has no JSON dependency (the build environment vendors
//! its crates), and the tracked `BENCH_*.json` files only need a single
//! flat object of string and number fields — so this module hand-rolls
//! exactly that: no nesting, no arrays, no escapes beyond the ones the
//! writer can produce (keys and values here are plain ASCII identifiers).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flat JSON value: string or finite number.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// String field.
    Str(String),
    /// Numeric field (always finite).
    Num(f64),
}

impl Val {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            Val::Str(_) => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            Val::Num(_) => None,
        }
    }
}

/// Render fields as a pretty-printed flat JSON object, in the given
/// order (one field per line, so diffs of tracked files stay readable).
pub fn write(fields: &[(&str, Val)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, val)) in fields.iter().enumerate() {
        assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "flatjson keys are identifiers, got {key:?}"
        );
        let comma = if i + 1 == fields.len() { "" } else { "," };
        match val {
            Val::Str(s) => {
                assert!(
                    s.chars().all(|c| c.is_ascii() && c != '"' && c != '\\'),
                    "flatjson strings are plain ASCII, got {s:?}"
                );
                let _ = writeln!(out, "  \"{key}\": \"{s}\"{comma}");
            }
            Val::Num(n) => {
                assert!(n.is_finite(), "flatjson numbers are finite, got {n}");
                let _ = writeln!(out, "  \"{key}\": {n:.4}{comma}");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Parse a flat JSON object produced by [`write`] (or hand-edited in the
/// same shape). Returns an error string on any malformation.
pub fn parse(text: &str) -> Result<BTreeMap<String, Val>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut map = BTreeMap::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (key, val) = line.split_once(':').ok_or_else(|| err("missing ':'"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| err("key not quoted"))?;
        let val = val.trim();
        let val = if let Some(s) = val.strip_prefix('"') {
            let s = s.strip_suffix('"').ok_or_else(|| err("unclosed string"))?;
            Val::Str(s.to_string())
        } else {
            let n: f64 = val.parse().map_err(|_| err("not a number"))?;
            if !n.is_finite() {
                return Err(err("non-finite number"));
            }
            Val::Num(n)
        };
        if map.insert(key.to_string(), val).is_some() {
            return Err(err("duplicate key"));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_in_order() {
        let text = write(&[
            ("schema", Val::Str("v1".into())),
            ("speedup", Val::Num(1.75)),
            ("mbps", Val::Num(123.4567)),
        ]);
        assert!(text.starts_with("{\n  \"schema\": \"v1\",\n"));
        let map = parse(&text).unwrap();
        assert_eq!(map["schema"].as_str(), Some("v1"));
        assert_eq!(map["speedup"].as_num(), Some(1.75));
        assert_eq!(map["mbps"].as_num(), Some(123.4567));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("not json").is_err());
        assert!(parse("{\n  \"k\" 1\n}").is_err());
        assert!(parse("{\n  \"k\": nope\n}").is_err());
        assert!(parse("{\n  \"k\": 1,\n  \"k\": 2\n}").is_err());
    }
}
