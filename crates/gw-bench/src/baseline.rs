//! Pre-arena reference implementations of run building and k-way
//! merging, preserved as benchmark baselines.
//!
//! These reproduce what the intermediate-data path did before the
//! zero-copy arena rework: owned `(key, value)` pairs sorted with
//! `sort_unstable`, and a `BinaryHeap` k-way merge. The shuffle harness
//! measures the live path against them, and asserts both produce
//! byte-identical runs (the determinism contract the fault-tolerant
//! shuffle's de-duplication depends on).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gw_intermediate::Run;
use gw_storage::varint;

/// Serialize sorted pairs in the run record format:
/// `varint(klen) varint(vlen) key value` per record.
fn serialize_pairs(pairs: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in pairs {
        varint::write_u64(&mut out, k.len() as u64);
        varint::write_u64(&mut out, v.len() as u64);
        out.extend_from_slice(k);
        out.extend_from_slice(v);
    }
    out
}

/// Build a sorted run the pre-arena way: own every pair, sort the owned
/// vector, serialize.
pub fn naive_run_from_pairs(mut pairs: Vec<(Vec<u8>, Vec<u8>)>) -> Run {
    pairs.sort_unstable();
    let records = pairs.len();
    Run::from_sorted_bytes(serialize_pairs(&pairs), records)
}

/// A `(key, value, source)` merge cursor ordered for min-heap popping.
type Cursor<'a> = Reverse<(&'a [u8], &'a [u8], usize)>;

/// K-way merge with a `BinaryHeap` of `(key, value, source)` cursors —
/// the pre-loser-tree implementation, kept as the comparison baseline.
pub fn heap_merge(runs: &[Run]) -> Run {
    let mut iters: Vec<_> = runs.iter().map(|r| r.iter()).collect();
    let mut heap: BinaryHeap<Cursor> = BinaryHeap::new();
    for (src, it) in iters.iter_mut().enumerate() {
        if let Some((k, v)) = it.next() {
            heap.push(Reverse((k, v, src)));
        }
    }
    let mut out = Vec::new();
    let mut records = 0usize;
    while let Some(Reverse((k, v, src))) = heap.pop() {
        varint::write_u64(&mut out, k.len() as u64);
        varint::write_u64(&mut out, v.len() as u64);
        out.extend_from_slice(k);
        out.extend_from_slice(v);
        records += 1;
        if let Some((nk, nv)) = iters[src].next() {
            heap.push(Reverse((nk, nv, src)));
        }
    }
    Run::from_sorted_bytes(out, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_intermediate::{merge_runs, RunBuilder};

    fn pairs(n: usize, seed: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let k = format!("k{:04}", (i * 31 + seed) % 97).into_bytes();
                (k, (i as u32).to_le_bytes().to_vec())
            })
            .collect()
    }

    #[test]
    fn naive_run_matches_arena_builder_bytes() {
        let ps = pairs(500, 3);
        let mut b = RunBuilder::new();
        for (k, v) in &ps {
            b.push(k, v);
        }
        let arena = b.build();
        let naive = naive_run_from_pairs(ps);
        assert_eq!(&*naive.clone().into_shared(), &*arena.into_shared());
    }

    #[test]
    fn heap_merge_matches_loser_tree_bytes() {
        let runs: Vec<Run> = (0..5)
            .map(|s| naive_run_from_pairs(pairs(200, s)))
            .collect();
        let heap = heap_merge(&runs);
        let tree = merge_runs(&runs);
        assert_eq!(heap.records(), tree.records());
        assert_eq!(&*heap.into_shared(), &*tree.into_shared());
    }
}
