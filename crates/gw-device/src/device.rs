//! The [`Device`] object: a compute device with its worker pool, memory
//! accounting, and transfer engines.
//!
//! This is the Glasswing middleware's view of an OpenCL device. The map and
//! reduce pipelines call [`Device::stage`] / [`Device::retrieve`] from their
//! Stage/Retrieve stages (disabled for unified memory) and
//! [`Device::launch`] from their Kernel stage. Every operation returns both
//! the *wall* duration (host execution) and the *modeled* duration (what
//! the profiled device would have taken), so instrumented experiments can
//! report either.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::buffer::DeviceBuffer;
use crate::kernel::Kernel;
use crate::ndrange::NdRange;
use crate::pool::WorkerPool;
use crate::profile::DeviceProfile;
use crate::DeviceError;

/// Timing result of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchStats {
    /// Measured host-pool execution time.
    pub wall: Duration,
    /// Modeled device execution time (profile-transformed).
    pub modeled: Duration,
    /// Work items executed.
    pub work_items: usize,
}

/// Timing result of one stage/retrieve transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferStats {
    /// Measured host copy time (zero for unified memory — no copy happens).
    pub wall: Duration,
    /// Modeled PCIe transfer time.
    pub modeled: Duration,
    /// Bytes moved.
    pub bytes: usize,
}

/// Cumulative device counters, useful for experiment reports.
#[derive(Debug, Default)]
pub struct DeviceCounters {
    launches: AtomicUsize,
    work_items: AtomicUsize,
    bytes_h2d: AtomicUsize,
    bytes_d2h: AtomicUsize,
    kernel_wall_nanos: AtomicU64,
}

/// Snapshot of [`DeviceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCountersSnapshot {
    /// Number of kernel launches.
    pub launches: usize,
    /// Total work items executed.
    pub work_items: usize,
    /// Total bytes staged host→device.
    pub bytes_h2d: usize,
    /// Total bytes retrieved device→host.
    pub bytes_d2h: usize,
    /// Total wall time spent inside kernel launches.
    pub kernel_wall: Duration,
}

/// A compute device: profile + worker pool + memory accounting.
pub struct Device {
    profile: DeviceProfile,
    pool: WorkerPool,
    allocated: AtomicUsize,
    counters: DeviceCounters,
}

impl Device {
    /// Open a device described by `profile`, with a worker pool sized to
    /// the host (at most `profile.compute_units` threads).
    pub fn open(profile: DeviceProfile) -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let threads = profile.compute_units.min(host);
        Self::open_with_threads(profile, threads)
    }

    /// Open a device with an explicit pool size. Pool size controls *real*
    /// parallelism; the profile controls *modeled* timing.
    pub fn open_with_threads(profile: DeviceProfile, threads: usize) -> Self {
        // The calling thread participates in launches, so spawn one fewer.
        let background = threads.saturating_sub(1);
        Device {
            profile,
            pool: WorkerPool::new(background),
            allocated: AtomicUsize::new(0),
            counters: DeviceCounters::default(),
        }
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Whether Stage/Retrieve are no-ops for this device.
    pub fn unified_memory(&self) -> bool {
        self.profile.unified_memory
    }

    /// Execution lanes available during a launch (pool + caller).
    pub fn parallelism(&self) -> usize {
        self.pool.threads() + 1
    }

    /// Allocate a device buffer, enforcing the modeled memory capacity.
    pub fn alloc(&self, bytes: usize) -> Result<DeviceBuffer, DeviceError> {
        let mut cur = self.allocated.load(Ordering::Relaxed);
        loop {
            let available = self.profile.mem_capacity.saturating_sub(cur);
            if bytes > available {
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    available,
                });
            }
            match self.allocated.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(DeviceBuffer::with_capacity(bytes)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Allocate the §III-D buffer sets backing one pipeline token group:
    /// `count` equally-sized staging buffers, all-or-nothing against the
    /// modeled memory capacity.
    pub fn alloc_pool(&self, count: usize, bytes: usize) -> Result<Vec<DeviceBuffer>, DeviceError> {
        let mut pool = Vec::with_capacity(count);
        for _ in 0..count {
            match self.alloc(bytes) {
                Ok(buf) => pool.push(buf),
                Err(e) => {
                    for buf in pool {
                        self.free(buf);
                    }
                    return Err(e);
                }
            }
        }
        Ok(pool)
    }

    /// Release a buffer's device memory accounting.
    pub fn free(&self, buf: DeviceBuffer) {
        self.allocated.fetch_sub(buf.capacity(), Ordering::Relaxed);
        drop(buf);
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Stage host memory into a device buffer (the pipeline's second stage).
    ///
    /// For unified-memory devices this performs no copy and reports zero
    /// modeled time; callers should skip the stage entirely, but calling it
    /// is harmless and still fills the buffer for uniformity.
    pub fn stage(&self, host: &[u8], dev: &mut DeviceBuffer) -> Result<TransferStats, DeviceError> {
        if host.len() > dev.capacity() {
            return Err(DeviceError::TransferSizeMismatch {
                src: host.len(),
                dst: dev.capacity(),
            });
        }
        let start = Instant::now();
        dev.fill_from(host);
        let wall = start.elapsed();
        self.counters
            .bytes_h2d
            .fetch_add(host.len(), Ordering::Relaxed);
        Ok(TransferStats {
            wall,
            modeled: self.profile.transfer_time(host.len(), true),
            bytes: host.len(),
        })
    }

    /// Retrieve a device buffer into host memory (the fourth stage).
    pub fn retrieve(
        &self,
        dev: &DeviceBuffer,
        host: &mut Vec<u8>,
    ) -> Result<TransferStats, DeviceError> {
        let start = Instant::now();
        host.clear();
        host.extend_from_slice(dev.bytes());
        let wall = start.elapsed();
        self.counters
            .bytes_d2h
            .fetch_add(dev.len(), Ordering::Relaxed);
        Ok(TransferStats {
            wall,
            modeled: self.profile.transfer_time(dev.len(), false),
            bytes: dev.len(),
        })
    }

    /// Launch a kernel over `range`, blocking until completion.
    pub fn launch(&self, range: NdRange, kernel: &dyn Kernel) -> LaunchStats {
        let start = Instant::now();
        self.pool.run(range, kernel);
        let wall = start.elapsed();
        self.counters.launches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .work_items
            .fetch_add(range.global_size, Ordering::Relaxed);
        self.counters
            .kernel_wall_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        LaunchStats {
            wall,
            modeled: self.profile.model_kernel_time(wall),
            work_items: range.global_size,
        }
    }

    /// Snapshot of cumulative counters.
    pub fn counters(&self) -> DeviceCountersSnapshot {
        DeviceCountersSnapshot {
            launches: self.counters.launches.load(Ordering::Relaxed),
            work_items: self.counters.work_items.load(Ordering::Relaxed),
            bytes_h2d: self.counters.bytes_h2d.load(Ordering::Relaxed),
            bytes_d2h: self.counters.bytes_d2h.load(Ordering::Relaxed),
            kernel_wall: Duration::from_nanos(
                self.counters.kernel_wall_nanos.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelFn, WorkItemCtx};
    use std::sync::atomic::AtomicUsize;

    fn tiny_gpu() -> Device {
        let mut profile = DeviceProfile::gtx480();
        profile.mem_capacity = 1024;
        Device::open_with_threads(profile, 2)
    }

    #[test]
    fn alloc_respects_capacity() {
        let dev = tiny_gpu();
        let a = dev.alloc(600).unwrap();
        let err = dev.alloc(600).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
        dev.free(a);
        let _b = dev.alloc(600).unwrap();
    }

    #[test]
    fn alloc_pool_is_all_or_nothing() {
        let dev = tiny_gpu();
        let pool = dev.alloc_pool(2, 400).unwrap();
        assert_eq!(pool.len(), 2);
        assert_eq!(dev.allocated_bytes(), 800);
        // A pool that doesn't fit releases what it partially grabbed.
        let err = dev.alloc_pool(2, 200).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
        assert_eq!(dev.allocated_bytes(), 800);
    }

    #[test]
    fn stage_retrieve_roundtrip() {
        let dev = tiny_gpu();
        let mut buf = dev.alloc(128).unwrap();
        let payload: Vec<u8> = (0..100u8).collect();
        let s = dev.stage(&payload, &mut buf).unwrap();
        assert_eq!(s.bytes, 100);
        assert!(
            s.modeled > Duration::ZERO,
            "discrete device models transfer time"
        );
        let mut back = Vec::new();
        let r = dev.retrieve(&buf, &mut back).unwrap();
        assert_eq!(r.bytes, 100);
        assert_eq!(back, payload);
    }

    #[test]
    fn stage_too_large_fails() {
        let dev = tiny_gpu();
        let mut buf = dev.alloc(16).unwrap();
        let err = dev.stage(&[0u8; 32], &mut buf).unwrap_err();
        assert!(matches!(err, DeviceError::TransferSizeMismatch { .. }));
    }

    #[test]
    fn unified_memory_models_zero_transfer() {
        let dev = Device::open_with_threads(DeviceProfile::host(), 1);
        assert!(dev.unified_memory());
        let mut buf = dev.alloc(64).unwrap();
        let s = dev.stage(&[1, 2, 3], &mut buf).unwrap();
        assert_eq!(s.modeled, Duration::ZERO);
    }

    #[test]
    fn launch_counts_work_items() {
        let dev = tiny_gpu();
        let hits = AtomicUsize::new(0);
        let k = KernelFn(|_: &WorkItemCtx| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        let stats = dev.launch(NdRange::new(500, 32).unwrap(), &k);
        assert_eq!(stats.work_items, 500);
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        let c = dev.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.work_items, 500);
    }

    #[test]
    fn modeled_kernel_time_includes_launch_overhead() {
        let dev = tiny_gpu();
        let k = KernelFn(|_: &WorkItemCtx| {});
        let stats = dev.launch(NdRange::new(1, 1).unwrap(), &k);
        assert!(stats.modeled >= dev.profile().launch_overhead);
    }
}
