//! Device profiles: the published characteristics of the compute devices in
//! the paper's evaluation cluster (DAS-4 at VU Amsterdam), expressed as a
//! timing model.
//!
//! Kernels always run on host threads; a profile describes how to transform
//! measured host execution into *modeled device time*:
//!
//! * `compute_scale` — ratio of the device's data-parallel kernel throughput
//!   to the host pool's. Calibrated from the paper's observed end-to-end
//!   gaps (e.g. K-Means on the GTX 480 runs ≈10× faster than on the node's
//!   16 hardware threads, consistent with the reported ≈20× gap to Hadoop
//!   given Glasswing-CPU's ≈2× gain over Hadoop).
//! * `h2d_bandwidth` / `d2h_bandwidth` — PCIe staging throughput.
//! * `launch_overhead` — per-kernel-invocation cost; this is what the
//!   reduce-side "multiple keys per thread" optimisation (paper Fig. 5)
//!   amortises.
//! * `driver_coupling` — the paper notes the NVidia OpenCL driver "adds some
//!   coupling between memory transfers and kernel executions, thus
//!   introducing artificially high times for nondominant stages"; this
//!   multiplier inflates modeled Stage/Retrieve times accordingly.

use std::time::Duration;

/// Broad class of compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host multi-core CPU (unified memory; Stage/Retrieve disabled).
    Cpu,
    /// Discrete GPU behind PCIe.
    DiscreteGpu,
    /// Many-core accelerator (Xeon Phi).
    ManyCore,
}

/// Timing and capacity model for one compute device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Device class.
    pub kind: DeviceKind,
    /// Whether kernels can address host memory directly. When `true`, the
    /// Stage and Retrieve pipeline stages are disabled, exactly as the
    /// paper describes for CPU (and unified-memory GPU) configurations.
    pub unified_memory: bool,
    /// Number of compute units used for pool sizing on real executions.
    pub compute_units: usize,
    /// Modeled kernel throughput relative to host-pool execution (>1 means
    /// the device is faster than the host for data-parallel kernels).
    pub compute_scale: f64,
    /// Host-to-device staging bandwidth, bytes/second.
    pub h2d_bandwidth: f64,
    /// Device-to-host retrieval bandwidth, bytes/second.
    pub d2h_bandwidth: f64,
    /// Fixed cost per transfer (DMA setup / driver call).
    pub transfer_latency: Duration,
    /// Fixed cost per kernel launch.
    pub launch_overhead: Duration,
    /// Modeled device memory capacity in bytes; buffer allocations beyond
    /// this fail, reproducing the out-of-core pressure discrete GPUs impose.
    pub mem_capacity: usize,
    /// Multiplier applied to modeled Stage/Retrieve durations to reproduce
    /// driver-level transfer/kernel coupling on NVidia parts (≥ 1.0).
    pub driver_coupling: f64,
}

const GIB: usize = 1024 * 1024 * 1024;

impl DeviceProfile {
    /// The paper's Type-1 node CPU: dual quad-core Intel Xeon 2.4 GHz with
    /// hyperthreading — 16 hardware threads, unified memory.
    pub fn cpu_dual_xeon() -> Self {
        DeviceProfile {
            name: "dual-xeon-e5620",
            kind: DeviceKind::Cpu,
            unified_memory: true,
            compute_units: 16,
            compute_scale: 1.0,
            // Unified memory: transfers are disabled; bandwidths unused but
            // set to DRAM-like values for completeness.
            h2d_bandwidth: 12.0e9,
            d2h_bandwidth: 12.0e9,
            transfer_latency: Duration::ZERO,
            launch_overhead: Duration::from_micros(20),
            mem_capacity: 24 * GIB,
            driver_coupling: 1.0,
        }
    }

    /// The paper's Type-2 node CPU: dual 6-core Xeon, 24 hardware threads.
    pub fn cpu_dual_xeon_type2() -> Self {
        DeviceProfile {
            compute_units: 24,
            name: "dual-xeon-type2",
            mem_capacity: 64 * GIB,
            ..Self::cpu_dual_xeon()
        }
    }

    /// NVidia GTX 480 (Fermi), the GPU on 23 Type-1 nodes.
    pub fn gtx480() -> Self {
        DeviceProfile {
            name: "nvidia-gtx480",
            kind: DeviceKind::DiscreteGpu,
            unified_memory: false,
            compute_units: 15, // SMs
            compute_scale: 10.0,
            h2d_bandwidth: 5.5e9,
            d2h_bandwidth: 5.0e9,
            transfer_latency: Duration::from_micros(25),
            launch_overhead: Duration::from_micros(15),
            mem_capacity: 3 * GIB / 2, // 1.5 GB
            driver_coupling: 1.3,
        }
    }

    /// NVidia K20m (Kepler) on Type-2 nodes.
    pub fn k20m() -> Self {
        DeviceProfile {
            name: "nvidia-k20m",
            kind: DeviceKind::DiscreteGpu,
            unified_memory: false,
            compute_units: 13,
            compute_scale: 14.0,
            h2d_bandwidth: 6.0e9,
            d2h_bandwidth: 6.0e9,
            transfer_latency: Duration::from_micros(20),
            launch_overhead: Duration::from_micros(12),
            mem_capacity: 5 * GIB,
            driver_coupling: 1.25,
        }
    }

    /// NVidia GTX 680 on one Type-2 node.
    pub fn gtx680() -> Self {
        DeviceProfile {
            name: "nvidia-gtx680",
            kind: DeviceKind::DiscreteGpu,
            unified_memory: false,
            compute_units: 8,
            compute_scale: 11.0,
            h2d_bandwidth: 6.0e9,
            d2h_bandwidth: 6.0e9,
            transfer_latency: Duration::from_micros(20),
            launch_overhead: Duration::from_micros(12),
            mem_capacity: 2 * GIB,
            driver_coupling: 1.3,
        }
    }

    /// Intel Xeon Phi (Knights Corner) on two Type-2 nodes.
    pub fn xeon_phi() -> Self {
        DeviceProfile {
            name: "intel-xeon-phi",
            kind: DeviceKind::ManyCore,
            unified_memory: false,
            compute_units: 60,
            compute_scale: 4.0,
            h2d_bandwidth: 6.0e9,
            d2h_bandwidth: 6.0e9,
            transfer_latency: Duration::from_micros(40),
            launch_overhead: Duration::from_micros(60),
            mem_capacity: 8 * GIB,
            driver_coupling: 1.1,
        }
    }

    /// A small unified-memory CPU profile sized to the current host, for
    /// tests and real (non-modeled) executions.
    pub fn host() -> Self {
        let units = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        DeviceProfile {
            name: "host-cpu",
            compute_units: units,
            mem_capacity: 8 * GIB,
            ..Self::cpu_dual_xeon()
        }
    }

    /// Modeled duration of a one-way transfer of `bytes` in the given
    /// direction (`h2d = true` for host→device).
    pub fn transfer_time(&self, bytes: usize, h2d: bool) -> Duration {
        if self.unified_memory {
            return Duration::ZERO;
        }
        let bw = if h2d {
            self.h2d_bandwidth
        } else {
            self.d2h_bandwidth
        };
        let secs = bytes as f64 / bw * self.driver_coupling;
        self.transfer_latency + Duration::from_secs_f64(secs)
    }

    /// Transform a measured host-pool kernel duration into modeled device
    /// time for this profile.
    pub fn model_kernel_time(&self, host_wall: Duration) -> Duration {
        Duration::from_secs_f64(host_wall.as_secs_f64() / self.compute_scale) + self.launch_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_profile_has_no_transfer_cost() {
        let p = DeviceProfile::cpu_dual_xeon();
        assert!(p.unified_memory);
        assert_eq!(p.transfer_time(1 << 30, true), Duration::ZERO);
    }

    #[test]
    fn gpu_transfer_scales_with_bytes() {
        let p = DeviceProfile::gtx480();
        let t1 = p.transfer_time(1 << 20, true);
        let t2 = p.transfer_time(1 << 24, true);
        assert!(t2 > t1);
        // 16 MiB over ~5.5 GB/s with coupling 1.3 is a few milliseconds.
        assert!(t2 < Duration::from_millis(50));
    }

    #[test]
    fn gpu_kernel_model_is_faster_than_host_for_long_kernels() {
        let p = DeviceProfile::gtx480();
        let modeled = p.model_kernel_time(Duration::from_secs(1));
        assert!(modeled < Duration::from_millis(150));
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let p = DeviceProfile::gtx480();
        let modeled = p.model_kernel_time(Duration::from_nanos(100));
        assert!(modeled >= p.launch_overhead);
    }

    #[test]
    fn all_presets_are_self_consistent() {
        for p in [
            DeviceProfile::cpu_dual_xeon(),
            DeviceProfile::cpu_dual_xeon_type2(),
            DeviceProfile::gtx480(),
            DeviceProfile::k20m(),
            DeviceProfile::gtx680(),
            DeviceProfile::xeon_phi(),
            DeviceProfile::host(),
        ] {
            assert!(p.compute_units > 0, "{}", p.name);
            assert!(p.compute_scale > 0.0, "{}", p.name);
            assert!(p.driver_coupling >= 1.0, "{}", p.name);
            assert!(p.mem_capacity > 0, "{}", p.name);
            if p.unified_memory {
                assert_eq!(p.kind, DeviceKind::Cpu, "{}", p.name);
            }
        }
    }
}
