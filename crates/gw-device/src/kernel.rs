//! Kernel trait and per-work-item execution context.
//!
//! A [`Kernel`] corresponds to an OpenCL `__kernel` function: its `exec`
//! body runs once per work item. All data the kernel touches is captured in
//! the implementing struct (the OpenCL analogue of kernel arguments), which
//! must be `Sync` because work items run concurrently.

use crate::ndrange::{partition_items, NdRange};

/// Execution context handed to every work item, mirroring OpenCL's
/// `get_global_id` / `get_local_id` / `get_group_id` built-ins.
#[derive(Debug, Clone, Copy)]
pub struct WorkItemCtx {
    global_id: usize,
    global_size: usize,
    local_id: usize,
    local_size: usize,
    group_id: usize,
    num_groups: usize,
}

impl WorkItemCtx {
    pub(crate) fn new(range: &NdRange, group_id: usize, global_id: usize) -> Self {
        let (start, _) = range.group_span(group_id);
        WorkItemCtx {
            global_id,
            global_size: range.global_size,
            local_id: global_id - start,
            local_size: range.local_size,
            group_id,
            num_groups: range.num_groups(),
        }
    }

    /// Index of this work item within the whole launch (`get_global_id(0)`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.global_id
    }

    /// Total number of work items in the launch (`get_global_size(0)`).
    #[inline]
    pub fn global_size(&self) -> usize {
        self.global_size
    }

    /// Index of this work item within its work-group (`get_local_id(0)`).
    #[inline]
    pub fn local_id(&self) -> usize {
        self.local_id
    }

    /// Configured work-group size (`get_local_size(0)`).
    #[inline]
    pub fn local_size(&self) -> usize {
        self.local_size
    }

    /// Index of this work item's group (`get_group_id(0)`).
    #[inline]
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// Number of work-groups in the launch (`get_num_groups(0)`).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The contiguous `[start, end)` slice of `n_items` records owned by
    /// this work item — the record-distribution idiom of Glasswing's
    /// middleware kernels.
    #[inline]
    pub fn my_items(&self, n_items: usize) -> (usize, usize) {
        partition_items(n_items, self.global_size, self.global_id)
    }
}

/// An NDRange kernel: `exec` runs once per work item.
pub trait Kernel: Sync {
    /// Kernel body for one work item.
    fn exec(&self, ctx: &WorkItemCtx);
}

/// Adapter turning a closure into a [`Kernel`].
pub struct KernelFn<F: Fn(&WorkItemCtx) + Sync>(pub F);

impl<F: Fn(&WorkItemCtx) + Sync> Kernel for KernelFn<F> {
    #[inline]
    fn exec(&self, ctx: &WorkItemCtx) {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_geometry_is_consistent() {
        let range = NdRange::new(10, 4).unwrap();
        let ctx = WorkItemCtx::new(&range, 2, 9);
        assert_eq!(ctx.global_id(), 9);
        assert_eq!(ctx.group_id(), 2);
        assert_eq!(ctx.local_id(), 1);
        assert_eq!(ctx.num_groups(), 3);
        assert_eq!(ctx.global_size(), 10);
    }

    #[test]
    fn my_items_partitions_records() {
        let range = NdRange::new(4, 2).unwrap();
        let ctx0 = WorkItemCtx::new(&range, 0, 0);
        let ctx3 = WorkItemCtx::new(&range, 1, 3);
        assert_eq!(ctx0.my_items(10), (0, 3));
        assert_eq!(ctx3.my_items(10), (8, 10));
    }
}
