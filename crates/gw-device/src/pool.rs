//! The NDRange worker pool — the in-process "compute device".
//!
//! OpenCL runtimes schedule work-groups dynamically onto compute units; this
//! pool reproduces that model with a fixed set of host threads that claim
//! work-groups from a shared atomic counter. Dynamic claiming (rather than
//! static striping) matters for MapReduce kernels because record processing
//! cost is highly skewed (e.g. WordCount lines vary in length), and it is
//! exactly what makes Glasswing's fine-grained parallelism adapt to
//! "the distinct capabilities of a variety of compute devices".
//!
//! The calling thread participates in execution, so a pool of `n` threads
//! provides `n + 1` lanes during a launch and a pool is usable even with
//! zero background threads (useful for deterministic tests).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::kernel::{Kernel, WorkItemCtx};
use crate::ndrange::NdRange;

/// A raw, lifetime-erased pointer to the kernel of an in-flight launch.
///
/// SAFETY: `WorkerPool::run` blocks until every work-group has executed, so
/// the pointee outlives all dereferences. The pointer is only dereferenced
/// by worker threads between job receipt and job completion.
struct KernelPtr(*const (dyn Kernel + 'static));

// SAFETY: `dyn Kernel` is `Sync`, so sharing the pointer across the pool's
// threads for the duration of the (blocking) launch is sound.
unsafe impl Send for KernelPtr {}
unsafe impl Sync for KernelPtr {}

/// One kernel launch in flight.
struct Job {
    kernel: KernelPtr,
    range: NdRange,
    /// Next work-group to claim.
    next_group: AtomicUsize,
    /// Work-groups fully executed so far.
    groups_done: AtomicUsize,
    /// Set if any work item panicked.
    panicked: AtomicBool,
    /// Completion signalling for the launching thread.
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claim and execute work-groups until the job is exhausted.
    /// Returns `true` if this call completed the final group.
    fn work(&self) -> bool {
        let num_groups = self.range.num_groups();
        let mut finished_last = false;
        loop {
            let group = self.next_group.fetch_add(1, Ordering::Relaxed);
            if group >= num_groups {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                let (start, end) = self.range.group_span(group);
                for gid in start..end {
                    let ctx = WorkItemCtx::new(&self.range, group, gid);
                    // SAFETY: see `KernelPtr` — the launch is still blocked
                    // in `run`, so the kernel is alive.
                    unsafe { (*self.kernel.0).exec(&ctx) };
                }
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            let done = self.groups_done.fetch_add(1, Ordering::AcqRel) + 1;
            if done == num_groups {
                let mut flag = self.done_lock.lock();
                *flag = true;
                self.done_cv.notify_all();
                finished_last = true;
            }
        }
        finished_last
    }

    fn wait(&self) {
        let mut flag = self.done_lock.lock();
        while !*flag {
            self.done_cv.wait(&mut flag);
        }
    }
}

/// A fixed-size pool of worker threads executing NDRange kernel launches.
pub struct WorkerPool {
    tx: Sender<Arc<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn a pool with `threads` background workers.
    ///
    /// `threads == 0` is allowed: launches then run entirely on the calling
    /// thread, which is useful for deterministic unit tests.
    pub fn new(threads: usize) -> Self {
        let (tx, rx): (Sender<Arc<Job>>, Receiver<Arc<Job>>) = unbounded();
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gw-compute-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job.work();
                        }
                    })
                    .expect("spawn compute worker")
            })
            .collect();
        WorkerPool {
            tx,
            handles,
            threads,
        }
    }

    /// Number of background worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `kernel` over `range`, blocking until all work items finish.
    ///
    /// The calling thread participates in execution. Panics in work items
    /// are caught on the workers and re-raised here, so a buggy kernel
    /// cannot take down pool threads.
    pub fn run(&self, range: NdRange, kernel: &dyn Kernel) {
        // SAFETY: we block on `job.wait()` below before returning, so the
        // erased borrow cannot outlive the kernel.
        let kernel_static: *const (dyn Kernel + 'static) = unsafe {
            std::mem::transmute::<*const dyn Kernel, *const (dyn Kernel + 'static)>(kernel)
        };
        let job = Arc::new(Job {
            kernel: KernelPtr(kernel_static),
            range,
            next_group: AtomicUsize::new(0),
            groups_done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        // Wake every worker: each will claim groups until exhaustion. Extra
        // wakeups are cheap (they find `next_group` past the end).
        for _ in 0..self.threads {
            // Ignore send failure: only possible if workers exited, in which
            // case the calling thread still executes the whole launch below.
            let _ = self.tx.send(Arc::clone(&job));
        }
        job.work();
        job.wait();
        if job.panicked.load(Ordering::Relaxed) {
            panic!("kernel work item panicked during launch");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel; workers exit once in-flight jobs are drained.
        let (dead_tx, _) = unbounded();
        self.tx = dead_tx;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFn;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_every_work_item_exactly_once() {
        let pool = WorkerPool::new(4);
        let n = 10_007; // prime, exercises the partial final group
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let kernel = KernelFn(|ctx: &WorkItemCtx| {
            hits[ctx.global_id()].fetch_add(1, Ordering::Relaxed);
        });
        pool.run(NdRange::new(n, 64).unwrap(), &kernel);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_thread_pool_runs_on_caller() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU64::new(0);
        let kernel = KernelFn(|ctx: &WorkItemCtx| {
            sum.fetch_add(ctx.global_id() as u64, Ordering::Relaxed);
        });
        pool.run(NdRange::new(100, 16).unwrap(), &kernel);
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn sequential_launches_reuse_pool() {
        let pool = WorkerPool::new(2);
        for round in 1..=5usize {
            let count = AtomicUsize::new(0);
            let kernel = KernelFn(|_ctx: &WorkItemCtx| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            pool.run(NdRange::new(round * 100, 32).unwrap(), &kernel);
            assert_eq!(count.load(Ordering::Relaxed), round * 100);
        }
    }

    #[test]
    fn concurrent_launches_from_many_threads_are_isolated() {
        // A pool is shared by the map and compaction kernels (and by the
        // partitioning pool's caller): concurrent `run` calls must each
        // execute their own work items exactly once.
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    let count = AtomicUsize::new(0);
                    let kernel = KernelFn(|_: &WorkItemCtx| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                    for round in 1..=10usize {
                        pool.run(NdRange::new(round * 50 + t, 16).unwrap(), &kernel);
                    }
                    count.load(Ordering::Relaxed)
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let total = h.join().unwrap();
            let expect: usize = (1..=10).map(|r| r * 50 + t).sum();
            assert_eq!(total, expect, "thread {t}");
        }
    }

    #[test]
    #[should_panic(expected = "kernel work item panicked")]
    fn kernel_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let kernel = KernelFn(|ctx: &WorkItemCtx| {
            if ctx.global_id() == 17 {
                panic!("boom");
            }
        });
        pool.run(NdRange::new(64, 8).unwrap(), &kernel);
    }

    #[test]
    fn pool_survives_kernel_panic() {
        let pool = WorkerPool::new(2);
        let bad = KernelFn(|_: &WorkItemCtx| panic!("boom"));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(NdRange::new(8, 2).unwrap(), &bad)
        }));
        assert!(caught.is_err());
        // The pool remains usable afterwards.
        let count = AtomicUsize::new(0);
        let good = KernelFn(|_: &WorkItemCtx| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        pool.run(NdRange::new(128, 16).unwrap(), &good);
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }
}
