//! OpenCL-like compute-device abstraction for the Glasswing MapReduce engine.
//!
//! Glasswing (El-Helw et al., SC 2014) executes user map/reduce functions as
//! OpenCL kernels on whatever compute device a node offers: multi-core CPUs,
//! discrete GPUs, or many-core accelerators such as the Xeon Phi. This crate
//! reproduces the *programming and execution model* of that layer without
//! requiring vendor SDKs:
//!
//! * [`Kernel`] + [`WorkItemCtx`] mirror an OpenCL NDRange kernel: a function
//!   body executed by `global_size` work items, grouped into work-groups.
//! * [`pool::WorkerPool`] is the in-process "compute device": a fixed set of
//!   threads that dynamically claim work-groups, like a GPU scheduler claims
//!   thread blocks.
//! * [`DeviceBuffer`] models device memory. A device with *unified memory*
//!   (the CPU) aliases host memory, so Glasswing's Stage/Retrieve pipeline
//!   stages are disabled for it; a discrete device requires explicit copies.
//! * [`DeviceProfile`] carries the published characteristics of the devices
//!   used in the paper's evaluation (dual quad-core Xeon nodes, GTX 480,
//!   K20m, Xeon Phi) so that simulated runs can transform *measured* host
//!   execution times into *modeled* device times, preserving the relative
//!   stage weights that drive the paper's pipeline analysis.
//!
//! Kernels always execute for real (on host threads), so application output
//! is always correct; only the reported timings are transformed for
//! non-host devices.

pub mod buffer;
pub mod device;
pub mod kernel;
pub mod ndrange;
pub mod pool;
pub mod profile;

pub use buffer::DeviceBuffer;
pub use device::{Device, LaunchStats, TransferStats};
pub use kernel::{Kernel, KernelFn, WorkItemCtx};
pub use ndrange::NdRange;
pub use pool::WorkerPool;
pub use profile::{DeviceKind, DeviceProfile};

/// Errors produced by the device layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Requested buffer exceeds the device's modeled memory capacity.
    OutOfDeviceMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// NDRange was invalid (zero sizes, or local does not divide global).
    InvalidNdRange(String),
    /// A transfer referenced a buffer of mismatched length.
    TransferSizeMismatch {
        /// Length of the source region.
        src: usize,
        /// Length of the destination region.
        dst: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            DeviceError::InvalidNdRange(msg) => write!(f, "invalid NDRange: {msg}"),
            DeviceError::TransferSizeMismatch { src, dst } => {
                write!(
                    f,
                    "transfer size mismatch: src {src} bytes, dst {dst} bytes"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}
