//! Device-memory buffers.
//!
//! A [`DeviceBuffer`] stands in for a `cl_mem` object. On a unified-memory
//! device the buffer *is* host memory and Glasswing disables the Stage and
//! Retrieve pipeline stages; on a discrete device the engine must copy
//! explicitly, and those copies are what the pipeline overlaps with kernel
//! execution and disk I/O.

/// A block of device-resident memory.
///
/// The bytes always live in host RAM (kernels execute on host threads), but
/// the buffer is accounted against the owning device's modeled capacity and
/// participates in modeled PCIe transfer timing.
#[derive(Debug, Default)]
pub struct DeviceBuffer {
    data: Vec<u8>,
    /// Logical length of valid data (≤ capacity).
    len: usize,
}

impl DeviceBuffer {
    /// Create a buffer with `capacity` bytes of device memory.
    pub fn with_capacity(capacity: usize) -> Self {
        DeviceBuffer {
            data: vec![0u8; capacity],
            len: 0,
        }
    }

    /// Total allocated capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Length of valid data currently in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no valid data.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark `len` bytes as valid (e.g. after a kernel filled the buffer).
    ///
    /// # Panics
    /// Panics if `len > capacity`.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.data.len(), "set_len beyond capacity");
        self.len = len;
    }

    /// The valid prefix of the buffer.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Mutable access to the full capacity (for kernels/stagers to fill).
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reset the valid length to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Copy `src` into the buffer and set the valid length.
    ///
    /// # Panics
    /// Panics if `src.len() > capacity`.
    pub fn fill_from(&mut self, src: &[u8]) {
        assert!(src.len() <= self.data.len(), "fill_from beyond capacity");
        self.data[..src.len()].copy_from_slice(src);
        self.len = src.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_read_back() {
        let mut b = DeviceBuffer::with_capacity(8);
        assert!(b.is_empty());
        b.fill_from(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.bytes(), &[1, 2, 3]);
        assert_eq!(b.capacity(), 8);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "fill_from beyond capacity")]
    fn overfill_panics() {
        let mut b = DeviceBuffer::with_capacity(2);
        b.fill_from(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "set_len beyond capacity")]
    fn set_len_beyond_capacity_panics() {
        let mut b = DeviceBuffer::with_capacity(2);
        b.set_len(3);
    }
}
