//! One-dimensional NDRange descriptions, mirroring OpenCL's
//! `clEnqueueNDRangeKernel` geometry.
//!
//! Glasswing only uses 1-D ranges: each work item processes a contiguous
//! slice of the records in the current input chunk (map) or a set of keys
//! (reduce). The *work-group* is the unit the scheduler hands to a worker
//! thread, just as a GPU hands thread blocks to SMs.

use crate::DeviceError;

/// A one-dimensional kernel launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Total number of work items.
    pub global_size: usize,
    /// Work items per work-group. The final group may be partial.
    pub local_size: usize,
}

impl NdRange {
    /// Create a range, validating the geometry.
    pub fn new(global_size: usize, local_size: usize) -> Result<Self, DeviceError> {
        if global_size == 0 {
            return Err(DeviceError::InvalidNdRange(
                "global_size must be nonzero".into(),
            ));
        }
        if local_size == 0 {
            return Err(DeviceError::InvalidNdRange(
                "local_size must be nonzero".into(),
            ));
        }
        Ok(NdRange {
            global_size,
            local_size,
        })
    }

    /// A range with one work item per element and a default group size.
    pub fn linear(global_size: usize) -> Result<Self, DeviceError> {
        Self::new(global_size, global_size.clamp(1, 256))
    }

    /// Number of work-groups (ceiling division; the last may be partial).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.global_size.div_ceil(self.local_size)
    }

    /// The `[start, end)` global-id range covered by work-group `group`.
    #[inline]
    pub fn group_span(&self, group: usize) -> (usize, usize) {
        let start = group * self.local_size;
        let end = (start + self.local_size).min(self.global_size);
        (start, end)
    }
}

/// Split `n_items` data elements evenly over `n_workers` work items and
/// return the `[start, end)` slice owned by `worker`.
///
/// This is the allocation-of-records-over-threads idiom the paper describes:
/// "These compute kernels divide the available number of records between them
/// and invoke the application-specific map function on each record."
#[inline]
pub fn partition_items(n_items: usize, n_workers: usize, worker: usize) -> (usize, usize) {
    debug_assert!(worker < n_workers.max(1));
    if n_workers == 0 {
        return (0, n_items);
    }
    let base = n_items / n_workers;
    let extra = n_items % n_workers;
    // The first `extra` workers take one extra item each.
    let start = worker * base + worker.min(extra);
    let len = base + usize::from(worker < extra);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_sizes() {
        assert!(NdRange::new(0, 1).is_err());
        assert!(NdRange::new(1, 0).is_err());
    }

    #[test]
    fn group_count_rounds_up() {
        let r = NdRange::new(10, 4).unwrap();
        assert_eq!(r.num_groups(), 3);
        assert_eq!(r.group_span(0), (0, 4));
        assert_eq!(r.group_span(2), (8, 10));
    }

    #[test]
    fn linear_caps_local_size() {
        let r = NdRange::linear(10_000).unwrap();
        assert_eq!(r.local_size, 256);
        let r = NdRange::linear(5).unwrap();
        assert_eq!(r.local_size, 5);
    }

    #[test]
    fn partition_items_covers_everything_exactly_once() {
        for n_items in [0usize, 1, 7, 64, 1000] {
            for n_workers in [1usize, 2, 3, 8, 17] {
                let mut covered = vec![0u8; n_items];
                let mut prev_end = 0;
                for w in 0..n_workers {
                    let (s, e) = partition_items(n_items, n_workers, w);
                    assert_eq!(s, prev_end, "ranges must be contiguous");
                    prev_end = e;
                    for it in covered.iter_mut().take(e).skip(s) {
                        *it += 1;
                    }
                }
                assert_eq!(prev_end, n_items);
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn partition_items_is_balanced() {
        let (s0, e0) = partition_items(10, 3, 0);
        let (s1, e1) = partition_items(10, 3, 1);
        let (s2, e2) = partition_items(10, 3, 2);
        assert_eq!(e0 - s0, 4);
        assert_eq!(e1 - s1, 3);
        assert_eq!(e2 - s2, 3);
    }
}
