//! Storage I/O timing model and accounting.
//!
//! The paper's HDFS-vs-local-FS results hinge on two effects this model
//! captures:
//!
//! 1. **Per-call overhead** — every HDFS read crosses Java/native boundaries
//!    ("Java/native switches and data transfers through JNI"); the local FS
//!    pays only a syscall.
//! 2. **Bandwidth and locality** — replication factor 3 means "almost all
//!    file accesses are local", but remote block reads pay network
//!    bandwidth instead of disk bandwidth.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Timing parameters for one storage backend.
#[derive(Debug, Clone)]
pub struct IoModel {
    /// Fixed cost charged per read/write call (JNI tax for HDFS).
    pub per_call_overhead: Duration,
    /// Streaming bandwidth for local (on-node) data, bytes/second.
    pub local_bandwidth: f64,
    /// Streaming bandwidth for remote (off-node) data, bytes/second.
    pub remote_bandwidth: f64,
    /// Multiplier on byte-movement cost, modeling copy amplification
    /// (e.g. HDFS data passing through JNI buffers is copied extra times).
    pub copy_amplification: f64,
}

impl IoModel {
    /// HDFS-like model: high per-call overhead and copy amplification (JNI),
    /// software-RAID disk locally, IPoIB remotely.
    pub fn hdfs() -> Self {
        IoModel {
            per_call_overhead: Duration::from_micros(120),
            local_bandwidth: 140.0e6,
            remote_bandwidth: 400.0e6,
            copy_amplification: 1.8,
        }
    }

    /// Local-FS model: syscall-only overhead, raw disk bandwidth.
    pub fn local_fs() -> Self {
        IoModel {
            per_call_overhead: Duration::from_micros(4),
            local_bandwidth: 180.0e6,
            remote_bandwidth: 0.0, // local FS has no remote path
            copy_amplification: 1.0,
        }
    }

    /// A free model (zero cost) for correctness-only runs.
    pub fn free() -> Self {
        IoModel {
            per_call_overhead: Duration::ZERO,
            local_bandwidth: f64::INFINITY,
            remote_bandwidth: f64::INFINITY,
            copy_amplification: 1.0,
        }
    }

    /// Modeled duration for moving `bytes` in one call.
    pub fn call_time(&self, bytes: usize, local: bool) -> Duration {
        let bw = if local {
            self.local_bandwidth
        } else {
            self.remote_bandwidth
        };
        let stream = if bw.is_finite() && bw > 0.0 {
            Duration::from_secs_f64(bytes as f64 * self.copy_amplification / bw)
        } else {
            Duration::ZERO
        };
        self.per_call_overhead + stream
    }
}

/// One I/O operation's cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct IoSample {
    /// Modeled duration of the operation.
    pub modeled: Duration,
    /// Bytes moved.
    pub bytes: usize,
    /// Whether the data was served from the local node.
    pub local: bool,
}

/// Cumulative I/O accounting, shared across threads.
#[derive(Debug, Default)]
pub struct IoStats {
    calls: AtomicUsize,
    bytes_local: AtomicUsize,
    bytes_remote: AtomicUsize,
    modeled_nanos: AtomicU64,
}

impl IoStats {
    /// Record one operation.
    pub fn record(&self, sample: IoSample) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if sample.local {
            self.bytes_local.fetch_add(sample.bytes, Ordering::Relaxed);
        } else {
            self.bytes_remote.fetch_add(sample.bytes, Ordering::Relaxed);
        }
        self.modeled_nanos
            .fetch_add(sample.modeled.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total calls recorded.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Bytes served locally.
    pub fn bytes_local(&self) -> usize {
        self.bytes_local.load(Ordering::Relaxed)
    }

    /// Bytes served remotely.
    pub fn bytes_remote(&self) -> usize {
        self.bytes_remote.load(Ordering::Relaxed)
    }

    /// Sum of modeled durations.
    pub fn modeled_total(&self) -> Duration {
        Duration::from_nanos(self.modeled_nanos.load(Ordering::Relaxed))
    }

    /// Fraction of bytes served locally (1.0 when no traffic).
    pub fn locality(&self) -> f64 {
        let l = self.bytes_local() as f64;
        let r = self.bytes_remote() as f64;
        if l + r == 0.0 {
            1.0
        } else {
            l / (l + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdfs_is_costlier_than_local_fs() {
        let hdfs = IoModel::hdfs();
        let local = IoModel::local_fs();
        let n = 1 << 20;
        assert!(hdfs.call_time(n, true) > local.call_time(n, true));
    }

    #[test]
    fn remote_read_is_costlier_when_network_is_slower() {
        let hdfs = IoModel::hdfs();
        // HDFS remote goes over IPoIB which is faster than local spinning
        // disk in the DAS-4 setup; just check both paths are finite and > 0.
        assert!(hdfs.call_time(1 << 20, false) > Duration::ZERO);
        assert!(hdfs.call_time(1 << 20, true) > Duration::ZERO);
    }

    #[test]
    fn free_model_is_zero_cost() {
        let free = IoModel::free();
        assert_eq!(free.call_time(1 << 30, true), Duration::ZERO);
        assert_eq!(free.call_time(1 << 30, false), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate_and_report_locality() {
        let stats = IoStats::default();
        stats.record(IoSample {
            modeled: Duration::from_millis(2),
            bytes: 300,
            local: true,
        });
        stats.record(IoSample {
            modeled: Duration::from_millis(3),
            bytes: 100,
            local: false,
        });
        assert_eq!(stats.calls(), 2);
        assert_eq!(stats.bytes_local(), 300);
        assert_eq!(stats.bytes_remote(), 100);
        assert_eq!(stats.modeled_total(), Duration::from_millis(5));
        assert!((stats.locality() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_report_full_locality() {
        assert_eq!(IoStats::default().locality(), 1.0);
    }
}
