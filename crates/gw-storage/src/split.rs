//! Input splits and the block-store abstraction shared by both storage
//! backends (DFS and local FS).
//!
//! A split corresponds to one storage block, cut at record boundaries so
//! every split is independently parseable — the role HDFS sync markers play
//! for Hadoop. Splits carry their preferred locations so the job
//! coordinator can implement Glasswing's locality-aware allocation
//! ("Glasswing's scheduler considers file affinity in its job allocation").

use std::sync::Arc;

use crate::iomodel::{IoSample, IoStats};
use crate::varint;
use crate::{NodeId, StorageError};

/// One unit of map input: a record-aligned block of a stored file.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// File path this split belongs to.
    pub path: String,
    /// Block index within the file.
    pub block: usize,
    /// Size of the block in bytes.
    pub len: usize,
    /// Number of records in the block.
    pub records: usize,
    /// Nodes holding a replica of the block (local-read candidates).
    pub locations: Vec<NodeId>,
}

impl InputSplit {
    /// Whether `node` can read this split locally.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.locations.contains(&node)
    }
}

/// Chaos hook for injecting per-replica read faults. Armed on a store via
/// [`FileStore::arm_fault_hook`]; a `true` return fails the read attempt
/// from that replica, making the store fall over to the next one. Unarmed
/// stores never consult a hook.
pub trait StorageFaultHook: Send + Sync {
    /// Whether this read of `path`'s block `block`, about to be served by
    /// the replica on `source`, should fail.
    fn read_fault(&self, path: &str, block: usize, source: NodeId) -> bool;
}

/// Common read interface over the storage backends.
pub trait FileStore: Send + Sync {
    /// Write a record-blocked file. `blocks` are raw record streams (no
    /// header) as produced by [`RecordBlockBuilder`]; `replication` is the
    /// number of replicas per block (clamped to the cluster size).
    fn write_blocks(
        &self,
        path: &str,
        writer: NodeId,
        blocks: Vec<(Vec<u8>, usize)>,
        replication: usize,
    ) -> Result<IoSample, StorageError>;

    /// Enumerate the splits of a file.
    fn splits(&self, path: &str) -> Result<Vec<InputSplit>, StorageError>;

    /// Read one split on behalf of `reader`, returning the block bytes and
    /// the modeled I/O cost.
    fn read_split(
        &self,
        split: &InputSplit,
        reader: NodeId,
    ) -> Result<(Arc<[u8]>, IoSample), StorageError>;

    /// Whether `path` exists.
    fn exists(&self, path: &str) -> bool;

    /// Remove a file. Removing a missing file is not an error.
    fn delete(&self, path: &str);

    /// Cumulative I/O statistics for this store.
    fn io_stats(&self) -> &IoStats;

    /// Number of cluster nodes this store serves.
    fn cluster_size(&self) -> u32;

    /// Arm (`Some`) or disarm (`None`) a chaos read-fault hook. Stores
    /// without fault-injection support ignore this.
    fn arm_fault_hook(&self, _hook: Option<Arc<dyn StorageFaultHook>>) {}

    /// Arm (`Some`) or disarm (`None`) the observability tracer. Stores
    /// without instrumentation support ignore this.
    fn arm_tracer(&self, _tracer: Option<Arc<gw_trace::Tracer>>) {}

    /// Mark a node dead: its replicas stop serving reads and other
    /// replicas take over. Stores without replica bookkeeping ignore this.
    fn mark_node_dead(&self, _node: NodeId) {}

    /// Reads that skipped a dead or faulted replica and were served by a
    /// surviving one.
    fn fault_failovers(&self) -> usize {
        0
    }
}

/// Extension helpers available on every [`FileStore`].
pub trait FileStoreExt: FileStore {
    /// Write a full record set, cutting blocks at `block_size`.
    fn write_records<'r>(
        &self,
        path: &str,
        writer: NodeId,
        block_size: usize,
        replication: usize,
        records: impl IntoIterator<Item = (&'r [u8], &'r [u8])>,
    ) -> Result<IoSample, StorageError> {
        let mut builder = RecordBlockBuilder::new(block_size);
        for (k, v) in records {
            builder.append(k, v);
        }
        self.write_blocks(path, writer, builder.finish(), replication)
    }

    /// Read and decode every record of a file (tests / small files).
    fn read_all_records(&self, path: &str, reader: NodeId) -> Result<crate::KvVec, StorageError> {
        let mut out = Vec::new();
        for split in self.splits(path)? {
            let (bytes, _) = self.read_split(&split, reader)?;
            let mut r = crate::seqfile::SeqReader::open_raw(&bytes);
            while let Some((k, v)) = r.next()? {
                out.push((k.to_vec(), v.to_vec()));
            }
        }
        Ok(out)
    }

    /// Total bytes of a file across its blocks.
    fn file_len(&self, path: &str) -> Result<usize, StorageError> {
        Ok(self.splits(path)?.iter().map(|s| s.len).sum())
    }
}

impl<T: FileStore + ?Sized> FileStoreExt for T {}

/// Builds record-aligned blocks: appends records and rolls to a new block
/// when the current one reaches the target size.
#[derive(Debug)]
pub struct RecordBlockBuilder {
    block_size: usize,
    blocks: Vec<(Vec<u8>, usize)>,
    current: Vec<u8>,
    current_records: usize,
}

impl RecordBlockBuilder {
    /// Target `block_size` in bytes; a block may exceed it by one record.
    pub fn new(block_size: usize) -> Self {
        RecordBlockBuilder {
            block_size: block_size.max(1),
            blocks: Vec::new(),
            current: Vec::new(),
            current_records: 0,
        }
    }

    /// Append one record to the current block, rolling first if full.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        varint::write_len(&mut self.current, key.len());
        varint::write_len(&mut self.current, value.len());
        self.current.extend_from_slice(key);
        self.current.extend_from_slice(value);
        self.current_records += 1;
        if self.current.len() >= self.block_size {
            self.roll();
        }
    }

    fn roll(&mut self) {
        if !self.current.is_empty() {
            let data = std::mem::take(&mut self.current);
            let records = std::mem::replace(&mut self.current_records, 0);
            self.blocks.push((data, records));
        }
    }

    /// Finish, returning `(block_bytes, record_count)` pairs.
    pub fn finish(mut self) -> Vec<(Vec<u8>, usize)> {
        self.roll();
        self.blocks
    }
}

/// Cut an existing raw record stream into record-aligned blocks.
pub fn split_blocks(
    bytes: &[u8],
    block_size: usize,
) -> Result<Vec<(Vec<u8>, usize)>, StorageError> {
    let mut builder = RecordBlockBuilder::new(block_size);
    let mut reader = crate::seqfile::SeqReader::open_raw(bytes);
    while let Some((k, v)) = reader.next()? {
        builder.append(k, v);
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(i: usize) -> (Vec<u8>, Vec<u8>) {
        (format!("key{i}").into_bytes(), vec![i as u8; i % 17])
    }

    #[test]
    fn builder_respects_block_boundaries() {
        let mut b = RecordBlockBuilder::new(64);
        for i in 0..100 {
            let (k, v) = record(i);
            b.append(&k, &v);
        }
        let blocks = b.finish();
        assert!(blocks.len() > 1);
        // Every block except possibly the last reached the target size.
        for (data, records) in &blocks[..blocks.len() - 1] {
            assert!(data.len() >= 64);
            assert!(*records > 0);
        }
        // Each block decodes independently; total records preserved.
        let total: usize = blocks
            .iter()
            .map(|(data, _)| {
                crate::seqfile::SeqReader::open_raw(data)
                    .read_all()
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn split_blocks_matches_builder() {
        let mut raw = Vec::new();
        let mut b = RecordBlockBuilder::new(50);
        for i in 0..30 {
            let (k, v) = record(i);
            varint::write_len(&mut raw, k.len());
            varint::write_len(&mut raw, v.len());
            raw.extend_from_slice(&k);
            raw.extend_from_slice(&v);
            b.append(&k, &v);
        }
        let from_raw = split_blocks(&raw, 50).unwrap();
        let from_builder = b.finish();
        assert_eq!(from_raw, from_builder);
    }

    #[test]
    fn empty_builder_produces_no_blocks() {
        assert!(RecordBlockBuilder::new(64).finish().is_empty());
    }

    proptest! {
        #[test]
        fn blocks_preserve_record_stream(
            records in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..16),
                 proptest::collection::vec(any::<u8>(), 0..48)), 0..80),
            block_size in 1usize..512)
        {
            let mut b = RecordBlockBuilder::new(block_size);
            for (k, v) in &records {
                b.append(k, v);
            }
            let blocks = b.finish();
            let mut reassembled = Vec::new();
            for (data, count) in &blocks {
                let recs = crate::seqfile::SeqReader::open_raw(data).read_all().unwrap();
                prop_assert_eq!(recs.len(), *count);
                reassembled.extend(recs);
            }
            prop_assert_eq!(reassembled, records);
        }
    }
}
