//! LEB128-style variable-length integer encoding.
//!
//! Used by the SeqFile record format and by the intermediate-data
//! serialization: MapReduce intermediate data is dominated by short keys and
//! values, so length prefixes must be compact (1 byte for lengths < 128).

/// Append `value` to `out` as a LEB128 varint. Returns bytes written.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint from the front of `buf`. Returns `(value, bytes_read)`,
/// or `None` if the buffer is truncated or the varint overflows u64.
#[inline]
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return None; // overflow
        }
        let chunk = (byte & 0x7f) as u64;
        // Reject bits that would shift past 64 (canonical-range check).
        if shift == 63 && chunk > 1 {
            return None;
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None // truncated
}

/// Encoded size of `value` in bytes (1..=10).
#[inline]
pub fn size_u64(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Convenience: write a `usize` length.
#[inline]
pub fn write_len(out: &mut Vec<u8>, len: usize) -> usize {
    write_u64(out, len as u64)
}

/// Convenience: read a `usize` length.
#[inline]
pub fn read_len(buf: &[u8]) -> Option<(usize, usize)> {
    read_u64(buf).map(|(v, n)| (v as usize, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut out = Vec::new();
        write_u64(&mut out, 0);
        assert_eq!(out, [0]);
        out.clear();
        write_u64(&mut out, 127);
        assert_eq!(out, [127]);
        out.clear();
        write_u64(&mut out, 128);
        assert_eq!(out, [0x80, 0x01]);
        out.clear();
        write_u64(&mut out, 300);
        assert_eq!(out, [0xAC, 0x02]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert_eq!(read_u64(&[]), None);
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[0x80, 0x80]), None);
    }

    #[test]
    fn oversized_varint_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bad = [0xFFu8; 11];
        assert_eq!(read_u64(&bad), None);
    }

    #[test]
    fn max_value_roundtrips() {
        let mut out = Vec::new();
        write_u64(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
        assert_eq!(read_u64(&out), Some((u64::MAX, 10)));
    }

    proptest! {
        #[test]
        fn roundtrip(v in any::<u64>()) {
            let mut out = Vec::new();
            let written = write_u64(&mut out, v);
            prop_assert_eq!(written, out.len());
            prop_assert_eq!(written, size_u64(v));
            let (back, read) = read_u64(&out).unwrap();
            prop_assert_eq!(back, v);
            prop_assert_eq!(read, written);
        }

        #[test]
        fn roundtrip_with_trailing_garbage(v in any::<u64>(), tail in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut out = Vec::new();
            let written = write_u64(&mut out, v);
            out.extend_from_slice(&tail);
            let (back, read) = read_u64(&out).unwrap();
            prop_assert_eq!(back, v);
            prop_assert_eq!(read, written);
        }
    }
}
