//! HDFS-like distributed block store.
//!
//! Reproduces the pieces of HDFS that the paper's evaluation depends on:
//!
//! * namenode-style file→block metadata;
//! * **replication** (factor 3 by default, "which is common practice"; the
//!   TeraSort output uses factor 1, so replication is a per-write knob);
//! * **block placement**: first replica on the writing node, the rest
//!   spread deterministically across the cluster;
//! * **locality-aware reads**: a reader holding a replica pays local-disk
//!   cost, others pay the network path;
//! * the **JNI/Java overhead tax** of libhdfs via [`IoModel::hdfs`], which
//!   is what separates the HDFS and local-FS curves in paper Fig. 3(d,e).
//!
//! Block payloads are held in memory behind `Arc` (one physical copy no
//! matter the replication factor), which keeps multi-node in-process
//! clusters cheap while preserving all placement/locality bookkeeping.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use gw_trace::{CounterId, LaneId, MarkId, ReadClass, Realm, Tracer};

use crate::iomodel::{IoModel, IoSample, IoStats};
use crate::split::{FileStore, InputSplit, StorageFaultHook};
use crate::{NodeId, StorageError};

/// Configuration of a [`Dfs`] instance.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of cluster nodes.
    pub nodes: u32,
    /// Default replication factor (HDFS default 3).
    pub replication: usize,
    /// I/O timing model.
    pub io: IoModel,
    /// When `true`, reads *sleep* for their modeled duration, so real
    /// pipeline experiments feel storage latency (the blocks themselves
    /// live in memory). Used by the pipeline-analysis harnesses.
    pub pace_io: bool,
}

impl DfsConfig {
    /// HDFS-like defaults for an `n`-node cluster.
    pub fn new(nodes: u32) -> Self {
        DfsConfig {
            nodes,
            replication: 3,
            io: IoModel::hdfs(),
            pace_io: false,
        }
    }

    /// Use a zero-cost I/O model (correctness-only runs).
    pub fn free_io(mut self) -> Self {
        self.io = IoModel::free();
        self
    }

    /// Use `model` and make reads physically take their modeled time.
    pub fn paced_io(mut self, model: IoModel) -> Self {
        self.io = model;
        self.pace_io = true;
        self
    }
}

#[derive(Debug, Clone)]
struct BlockMeta {
    data: Arc<[u8]>,
    records: usize,
    replicas: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct Namespace {
    files: HashMap<String, Vec<BlockMeta>>,
}

/// The distributed file system.
pub struct Dfs {
    cfg: DfsConfig,
    ns: RwLock<Namespace>,
    stats: IoStats,
    fault: RwLock<Option<Arc<dyn StorageFaultHook>>>,
    dead: RwLock<HashSet<NodeId>>,
    failovers: AtomicUsize,
    tracer: RwLock<Option<Arc<Tracer>>>,
}

impl Dfs {
    /// Create an empty DFS for the configured cluster.
    pub fn new(cfg: DfsConfig) -> Self {
        assert!(cfg.nodes > 0, "cluster must have at least one node");
        Dfs {
            cfg,
            ns: RwLock::new(Namespace::default()),
            stats: IoStats::default(),
            fault: RwLock::new(None),
            dead: RwLock::new(HashSet::new()),
            failovers: AtomicUsize::new(0),
            tracer: RwLock::new(None),
        }
    }

    /// The configuration this DFS was created with.
    pub fn config(&self) -> &DfsConfig {
        &self.cfg
    }

    /// Choose replica nodes for block `block_idx` written by `writer`.
    ///
    /// First replica is the writer (HDFS's write-local rule); subsequent
    /// replicas walk the ring starting at an offset derived from the block
    /// index so that a multi-block file spreads over the cluster.
    fn place_replicas(&self, writer: NodeId, block_idx: usize, replication: usize) -> Vec<NodeId> {
        let n = self.cfg.nodes;
        let replication = replication.clamp(1, n as usize);
        let mut replicas = Vec::with_capacity(replication);
        replicas.push(writer);
        let mut candidate = (writer.0 as usize + 1 + block_idx) % n as usize;
        while replicas.len() < replication {
            let node = NodeId(candidate as u32);
            if !replicas.contains(&node) {
                replicas.push(node);
            }
            candidate = (candidate + 1) % n as usize;
        }
        replicas
    }

    /// List all file paths (sorted), for inspection and tests.
    pub fn list(&self) -> Vec<String> {
        let ns = self.ns.read();
        let mut paths: Vec<String> = ns.files.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Replica locations of every block of `path`.
    pub fn block_locations(&self, path: &str) -> Result<Vec<Vec<NodeId>>, StorageError> {
        let ns = self.ns.read();
        let blocks = ns
            .files
            .get(path)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        Ok(blocks.iter().map(|b| b.replicas.clone()).collect())
    }
}

impl FileStore for Dfs {
    fn write_blocks(
        &self,
        path: &str,
        writer: NodeId,
        blocks: Vec<(Vec<u8>, usize)>,
        replication: usize,
    ) -> Result<IoSample, StorageError> {
        if writer.0 >= self.cfg.nodes {
            return Err(StorageError::UnknownNode(writer));
        }
        let mut metas = Vec::with_capacity(blocks.len());
        let mut modeled = std::time::Duration::ZERO;
        let mut bytes = 0usize;
        for (idx, (data, records)) in blocks.into_iter().enumerate() {
            let replicas = self.place_replicas(writer, idx, replication);
            // Writer pays the local write plus the replica pipeline: HDFS
            // streams the block through the replica chain, so the modeled
            // cost is one local write + (r-1) remote transfers.
            modeled += self.cfg.io.call_time(data.len(), true);
            for _ in 1..replicas.len() {
                modeled += self.cfg.io.call_time(data.len(), false);
            }
            bytes += data.len();
            metas.push(BlockMeta {
                data: data.into(),
                records,
                replicas,
            });
        }
        let mut ns = self.ns.write();
        if ns.files.contains_key(path) {
            return Err(StorageError::AlreadyExists(path.to_string()));
        }
        ns.files.insert(path.to_string(), metas);
        let sample = IoSample {
            modeled,
            bytes,
            local: true,
        };
        self.stats.record(sample);
        Ok(sample)
    }

    fn splits(&self, path: &str) -> Result<Vec<InputSplit>, StorageError> {
        let ns = self.ns.read();
        let blocks = ns
            .files
            .get(path)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        Ok(blocks
            .iter()
            .enumerate()
            .map(|(i, b)| InputSplit {
                path: path.to_string(),
                block: i,
                len: b.data.len(),
                records: b.records,
                locations: b.replicas.clone(),
            })
            .collect())
    }

    fn read_split(
        &self,
        split: &InputSplit,
        reader: NodeId,
    ) -> Result<(Arc<[u8]>, IoSample), StorageError> {
        let ns = self.ns.read();
        let blocks = ns
            .files
            .get(&split.path)
            .ok_or_else(|| StorageError::NotFound(split.path.clone()))?;
        let block = blocks.get(split.block).ok_or_else(|| {
            StorageError::Corrupt(format!("no block {} in {}", split.block, split.path))
        })?;
        // Choose the serving replica: the reader's own copy first, then the
        // placement order — skipping dead nodes and chaos-faulted reads.
        let hook = self.fault.read().clone();
        let mut candidates: Vec<NodeId> = Vec::with_capacity(block.replicas.len());
        if block.replicas.contains(&reader) {
            candidates.push(reader);
        }
        candidates.extend(block.replicas.iter().copied().filter(|&r| r != reader));
        let mut skipped = 0usize;
        let mut source = None;
        {
            let dead = self.dead.read();
            for &cand in &candidates {
                if dead.contains(&cand) {
                    skipped += 1;
                    continue;
                }
                if let Some(h) = &hook {
                    if h.read_fault(&split.path, split.block, cand) {
                        skipped += 1;
                        continue;
                    }
                }
                source = Some(cand);
                break;
            }
        }
        let Some(source) = source else {
            return Err(StorageError::AllReplicasLost(format!(
                "{} block {}",
                split.path, split.block
            )));
        };
        if skipped > 0 {
            self.failovers.fetch_add(1, Ordering::Relaxed);
        }
        let local = source == reader;
        let sample = IoSample {
            modeled: self.cfg.io.call_time(block.data.len(), local),
            bytes: block.data.len(),
            local,
        };
        self.stats.record(sample);
        if let Some(t) = self.tracer.read().as_ref() {
            let class = if local {
                ReadClass::Local
            } else if skipped > 0 {
                ReadClass::RemoteFault
            } else {
                ReadClass::Remote
            };
            let lane = t.lane(LaneId {
                job: 0,
                node: reader.0,
                realm: Realm::Storage,
            });
            lane.instant(MarkId::DfsRead {
                block: split.block as u64,
                class,
            });
            lane.count(
                match class {
                    ReadClass::Local => CounterId::DfsReadLocal,
                    ReadClass::Remote => CounterId::DfsReadRemote,
                    ReadClass::RemoteFault => CounterId::DfsReadRemoteFault,
                },
                1,
            );
            lane.count(CounterId::DfsReadBytes, sample.bytes as u64);
        }
        let data = Arc::clone(&block.data);
        drop(ns); // do not hold the namespace lock while pacing
        if self.cfg.pace_io {
            std::thread::sleep(sample.modeled);
        }
        Ok((data, sample))
    }

    fn exists(&self, path: &str) -> bool {
        self.ns.read().files.contains_key(path)
    }

    fn delete(&self, path: &str) {
        self.ns.write().files.remove(path);
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    fn cluster_size(&self) -> u32 {
        self.cfg.nodes
    }

    fn arm_fault_hook(&self, hook: Option<Arc<dyn StorageFaultHook>>) {
        *self.fault.write() = hook;
    }

    fn arm_tracer(&self, tracer: Option<Arc<Tracer>>) {
        *self.tracer.write() = tracer;
    }

    fn mark_node_dead(&self, node: NodeId) {
        self.dead.write().insert(node);
    }

    fn fault_failovers(&self) -> usize {
        self.failovers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::FileStoreExt;

    fn records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("k{i:04}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn write_file(dfs: &Dfs, path: &str, n: usize, block_size: usize) {
        let recs = records(n);
        dfs.write_records(
            path,
            NodeId(0),
            block_size,
            dfs.config().replication,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = Dfs::new(DfsConfig::new(4));
        write_file(&dfs, "/in", 200, 256);
        let back = dfs.read_all_records("/in", NodeId(2)).unwrap();
        assert_eq!(back, records(200));
    }

    #[test]
    fn replication_is_respected_and_first_replica_is_writer() {
        let dfs = Dfs::new(DfsConfig::new(5));
        write_file(&dfs, "/in", 100, 128);
        let locs = dfs.block_locations("/in").unwrap();
        assert!(locs.len() > 1, "file should span several blocks");
        for block in &locs {
            assert_eq!(block.len(), 3);
            assert_eq!(block[0], NodeId(0));
            // Replicas are distinct.
            let mut uniq = block.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn replication_clamps_to_cluster_size() {
        let dfs = Dfs::new(DfsConfig::new(2));
        write_file(&dfs, "/in", 50, 64);
        for block in dfs.block_locations("/in").unwrap() {
            assert_eq!(block.len(), 2);
        }
    }

    #[test]
    fn local_reads_are_cheaper_than_remote() {
        let dfs = Dfs::new(DfsConfig::new(8));
        write_file(&dfs, "/in", 400, 4096);
        let splits = dfs.splits("/in").unwrap();
        let split = &splits[0];
        let local_reader = split.locations[0];
        let remote_reader = (0..8)
            .map(NodeId)
            .find(|n| !split.locations.contains(n))
            .unwrap();
        let (_, local) = dfs.read_split(split, local_reader).unwrap();
        let (_, remote) = dfs.read_split(split, remote_reader).unwrap();
        assert!(local.local);
        assert!(!remote.local);
        // DAS-4: local software-RAID disk is slower per byte than IPoIB, so
        // we only assert the locality flag and stats routing, not ordering.
        assert!(dfs.io_stats().bytes_remote() > 0);
        assert!(dfs.io_stats().bytes_local() > 0);
    }

    #[test]
    fn duplicate_create_fails() {
        let dfs = Dfs::new(DfsConfig::new(2));
        write_file(&dfs, "/in", 10, 64);
        let recs = records(10);
        let err = dfs
            .write_records(
                "/in",
                NodeId(1),
                64,
                1,
                recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
    }

    #[test]
    fn delete_then_recreate() {
        let dfs = Dfs::new(DfsConfig::new(2));
        write_file(&dfs, "/in", 10, 64);
        dfs.delete("/in");
        assert!(!dfs.exists("/in"));
        write_file(&dfs, "/in", 10, 64);
        assert!(dfs.exists("/in"));
    }

    #[test]
    fn splits_report_record_counts() {
        let dfs = Dfs::new(DfsConfig::new(3));
        write_file(&dfs, "/in", 123, 256);
        let splits = dfs.splits("/in").unwrap();
        let total: usize = splits.iter().map(|s| s.records).sum();
        assert_eq!(total, 123);
    }

    #[test]
    fn paced_io_takes_real_time() {
        use crate::iomodel::IoModel;
        let slow = IoModel {
            per_call_overhead: std::time::Duration::from_millis(5),
            local_bandwidth: f64::INFINITY,
            remote_bandwidth: f64::INFINITY,
            copy_amplification: 1.0,
        };
        let dfs = Dfs::new(DfsConfig::new(1).paced_io(slow));
        write_file(&dfs, "/in", 50, 256);
        let splits = dfs.splits("/in").unwrap();
        let start = std::time::Instant::now();
        for s in &splits {
            dfs.read_split(s, NodeId(0)).unwrap();
        }
        let expect = std::time::Duration::from_millis(5) * splits.len() as u32;
        assert!(
            start.elapsed() >= expect.mul_f64(0.8),
            "paced reads must sleep their modeled time"
        );
    }

    #[test]
    fn unknown_writer_is_rejected() {
        let dfs = Dfs::new(DfsConfig::new(2));
        let err = dfs
            .write_blocks("/x", NodeId(9), vec![(vec![0], 1)], 1)
            .unwrap_err();
        assert!(matches!(err, StorageError::UnknownNode(_)));
    }

    #[test]
    fn read_fails_over_to_surviving_replica_when_node_dies() {
        let dfs = Dfs::new(DfsConfig::new(4));
        write_file(&dfs, "/in", 100, 256);
        let splits = dfs.splits("/in").unwrap();
        let split = &splits[0];
        // Kill the primary (writer) replica; a non-replica reader must be
        // served transparently by one of the survivors.
        dfs.mark_node_dead(split.locations[0]);
        let reader = (0..4)
            .map(NodeId)
            .find(|n| !split.locations.contains(n))
            .unwrap();
        let (data, sample) = dfs.read_split(split, reader).unwrap();
        assert!(!data.is_empty());
        assert!(!sample.local);
        assert!(dfs.fault_failovers() >= 1);
    }

    #[test]
    fn read_fails_over_past_a_chaos_fault() {
        struct FailPrimaryOnce(std::sync::atomic::AtomicBool);
        impl StorageFaultHook for FailPrimaryOnce {
            fn read_fault(&self, _path: &str, block: usize, _source: NodeId) -> bool {
                block == 0 && !self.0.swap(true, Ordering::Relaxed)
            }
        }
        let dfs = Dfs::new(DfsConfig::new(3));
        write_file(&dfs, "/in", 100, 256);
        dfs.arm_fault_hook(Some(Arc::new(FailPrimaryOnce(
            std::sync::atomic::AtomicBool::new(false),
        ))));
        let splits = dfs.splits("/in").unwrap();
        let reader = splits[0].locations[0];
        // The first replica attempt faults; the read still succeeds from
        // the next replica and the failover is counted.
        let (data, _) = dfs.read_split(&splits[0], reader).unwrap();
        assert!(!data.is_empty());
        assert_eq!(dfs.fault_failovers(), 1);
        // The fault was single-use: later reads are clean.
        dfs.read_split(&splits[0], reader).unwrap();
        assert_eq!(dfs.fault_failovers(), 1);
    }

    #[test]
    fn armed_tracer_classifies_reads() {
        let dfs = Dfs::new(DfsConfig::new(4));
        write_file(&dfs, "/in", 100, 256);
        let tracer = Arc::new(Tracer::new());
        dfs.arm_tracer(Some(Arc::clone(&tracer)));
        let splits = dfs.splits("/in").unwrap();
        let split = &splits[0];
        let local_reader = split.locations[0];
        let remote_reader = (0..4)
            .map(NodeId)
            .find(|n| !split.locations.contains(n))
            .unwrap();
        dfs.read_split(split, local_reader).unwrap();
        dfs.read_split(split, remote_reader).unwrap();
        // Kill the primary: the same remote reader now records a
        // remote-due-to-fault read.
        dfs.mark_node_dead(split.locations[0]);
        dfs.read_split(split, remote_reader).unwrap();
        let m = tracer.finish().metrics();
        assert_eq!(m.counter(local_reader.0, CounterId::DfsReadLocal), 1);
        assert_eq!(m.counter(remote_reader.0, CounterId::DfsReadRemote), 1);
        assert_eq!(m.counter(remote_reader.0, CounterId::DfsReadRemoteFault), 1);
        assert_eq!(
            m.counter(remote_reader.0, CounterId::DfsReadBytes),
            2 * split.len as u64
        );
    }

    #[test]
    fn losing_every_replica_is_a_typed_error() {
        let dfs = Dfs::new(DfsConfig::new(2));
        let recs = records(10);
        dfs.write_records(
            "/in",
            NodeId(0),
            64,
            1, // replication 1: a single death loses the block
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        let splits = dfs.splits("/in").unwrap();
        dfs.mark_node_dead(splits[0].locations[0]);
        let err = dfs.read_split(&splits[0], NodeId(1)).unwrap_err();
        assert!(
            matches!(err, StorageError::AllReplicasLost(_)),
            "got: {err}"
        );
    }
}
