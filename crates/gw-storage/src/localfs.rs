//! Per-node local file system backend.
//!
//! Models the GPMR comparison setup of the paper: "all files are fully
//! replicated on the local file system of each node", so every read is
//! local and pays only the local-FS model (no JNI tax, no network). A file
//! written through [`LocalFs`] is visible to *all* nodes as a local file;
//! block payloads are shared behind `Arc`, so full replication costs one
//! physical copy.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::iomodel::{IoModel, IoSample, IoStats};
use crate::split::{FileStore, InputSplit};
use crate::{NodeId, StorageError};

#[derive(Debug, Clone)]
struct LocalBlock {
    data: Arc<[u8]>,
    records: usize,
}

/// The local-FS backend: every file is present on every node.
pub struct LocalFs {
    nodes: u32,
    io: IoModel,
    files: RwLock<HashMap<String, Vec<LocalBlock>>>,
    stats: IoStats,
}

impl LocalFs {
    /// Create a local FS shared by `nodes` nodes with the default model.
    pub fn new(nodes: u32) -> Self {
        Self::with_model(nodes, IoModel::local_fs())
    }

    /// Create with an explicit I/O model.
    pub fn with_model(nodes: u32, io: IoModel) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        LocalFs {
            nodes,
            io,
            files: RwLock::new(HashMap::new()),
            stats: IoStats::default(),
        }
    }

    /// List all file paths (sorted).
    pub fn list(&self) -> Vec<String> {
        let files = self.files.read();
        let mut paths: Vec<String> = files.keys().cloned().collect();
        paths.sort();
        paths
    }
}

impl FileStore for LocalFs {
    fn write_blocks(
        &self,
        path: &str,
        writer: NodeId,
        blocks: Vec<(Vec<u8>, usize)>,
        _replication: usize,
    ) -> Result<IoSample, StorageError> {
        if writer.0 >= self.nodes {
            return Err(StorageError::UnknownNode(writer));
        }
        let mut modeled = std::time::Duration::ZERO;
        let mut bytes = 0usize;
        let blocks: Vec<LocalBlock> = blocks
            .into_iter()
            .map(|(data, records)| {
                modeled += self.io.call_time(data.len(), true);
                bytes += data.len();
                LocalBlock {
                    data: data.into(),
                    records,
                }
            })
            .collect();
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(StorageError::AlreadyExists(path.to_string()));
        }
        files.insert(path.to_string(), blocks);
        let sample = IoSample {
            modeled,
            bytes,
            local: true,
        };
        self.stats.record(sample);
        Ok(sample)
    }

    fn splits(&self, path: &str) -> Result<Vec<InputSplit>, StorageError> {
        let files = self.files.read();
        let blocks = files
            .get(path)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        let everyone: Vec<NodeId> = (0..self.nodes).map(NodeId).collect();
        Ok(blocks
            .iter()
            .enumerate()
            .map(|(i, b)| InputSplit {
                path: path.to_string(),
                block: i,
                len: b.data.len(),
                records: b.records,
                locations: everyone.clone(),
            })
            .collect())
    }

    fn read_split(
        &self,
        split: &InputSplit,
        reader: NodeId,
    ) -> Result<(Arc<[u8]>, IoSample), StorageError> {
        if reader.0 >= self.nodes {
            return Err(StorageError::UnknownNode(reader));
        }
        let files = self.files.read();
        let blocks = files
            .get(&split.path)
            .ok_or_else(|| StorageError::NotFound(split.path.clone()))?;
        let block = blocks.get(split.block).ok_or_else(|| {
            StorageError::Corrupt(format!("no block {} in {}", split.block, split.path))
        })?;
        let sample = IoSample {
            modeled: self.io.call_time(block.data.len(), true),
            bytes: block.data.len(),
            local: true,
        };
        self.stats.record(sample);
        Ok((Arc::clone(&block.data), sample))
    }

    fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    fn delete(&self, path: &str) {
        self.files.write().remove(path);
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }

    fn cluster_size(&self) -> u32 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::FileStoreExt;

    #[test]
    fn every_node_reads_locally() {
        let fs = LocalFs::new(4);
        let recs: Vec<(Vec<u8>, Vec<u8>)> =
            (0..50).map(|i| (vec![i as u8], vec![i as u8; 3])).collect();
        fs.write_records(
            "/data",
            NodeId(0),
            64,
            1,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        for n in 0..4 {
            let splits = fs.splits("/data").unwrap();
            for s in &splits {
                assert!(s.is_local_to(NodeId(n)));
                let (_, sample) = fs.read_split(s, NodeId(n)).unwrap();
                assert!(sample.local);
            }
        }
        assert_eq!(fs.io_stats().bytes_remote(), 0);
    }

    #[test]
    fn localfs_read_is_cheaper_than_hdfs_read() {
        let local = LocalFs::new(1);
        let hdfs_model = IoModel::hdfs();
        let bytes = 1 << 20;
        let local_cost = IoModel::local_fs().call_time(bytes, true);
        let hdfs_cost = hdfs_model.call_time(bytes, true);
        assert!(hdfs_cost > local_cost);
        drop(local);
    }

    #[test]
    fn missing_file_errors() {
        let fs = LocalFs::new(2);
        assert!(matches!(
            fs.splits("/nope").unwrap_err(),
            StorageError::NotFound(_)
        ));
    }

    #[test]
    fn roundtrip_records() {
        let fs = LocalFs::new(2);
        let recs: Vec<(Vec<u8>, Vec<u8>)> = (0..123)
            .map(|i| (format!("{i}").into_bytes(), vec![0u8; i % 7]))
            .collect();
        fs.write_records(
            "/r",
            NodeId(1),
            100,
            1,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        assert_eq!(fs.read_all_records("/r", NodeId(0)).unwrap(), recs);
    }
}
