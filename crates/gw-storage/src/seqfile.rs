//! SequenceFile-like record format.
//!
//! Job input and output are streams of key/value records. The format is a
//! compact binary framing — magic header, then `varint(klen) varint(vlen)
//! key value` per record — matching the role Hadoop's `SequenceFile` plays
//! in the paper's evaluation ("serialize input and output without the need
//! for text formatting").

use crate::varint;
use crate::StorageError;

/// A borrowed key/value record.
pub type RecordRef<'a> = (&'a [u8], &'a [u8]);

/// File magic for format identification and corruption detection.
pub const MAGIC: &[u8; 6] = b"GWSEQ1";

/// Streaming writer producing SeqFile bytes into an owned buffer.
#[derive(Debug)]
pub struct SeqWriter {
    buf: Vec<u8>,
    records: usize,
}

impl SeqWriter {
    /// Start a new file (writes the header).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        SeqWriter { buf, records: 0 }
    }

    /// Append one key/value record.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        varint::write_len(&mut self.buf, key.len());
        varint::write_len(&mut self.buf, value.len());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
    }

    /// Number of records appended so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Bytes produced so far (including header).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for SeqWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Zero-copy reader over SeqFile bytes.
#[derive(Debug)]
pub struct SeqReader<'a> {
    rest: &'a [u8],
}

impl<'a> SeqReader<'a> {
    /// Open a reader, validating the header.
    pub fn open(bytes: &'a [u8]) -> Result<Self, StorageError> {
        let rest = bytes
            .strip_prefix(MAGIC.as_slice())
            .ok_or_else(|| StorageError::Corrupt("bad SeqFile magic".into()))?;
        Ok(SeqReader { rest })
    }

    /// Open a reader over a mid-file region (no header expected). Used for
    /// input splits that start at a record boundary inside a file.
    pub fn open_raw(bytes: &'a [u8]) -> Self {
        SeqReader { rest: bytes }
    }

    /// Read the next record, or `None` at end of data.
    #[allow(clippy::should_implement_trait)] // fallible, borrowing iterator
    pub fn next(&mut self) -> Result<Option<RecordRef<'a>>, StorageError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        let (klen, n1) = varint::read_len(self.rest)
            .ok_or_else(|| StorageError::Corrupt("truncated key length".into()))?;
        let after_k = &self.rest[n1..];
        let (vlen, n2) = varint::read_len(after_k)
            .ok_or_else(|| StorageError::Corrupt("truncated value length".into()))?;
        let body = &after_k[n2..];
        if body.len() < klen + vlen {
            return Err(StorageError::Corrupt(format!(
                "record body truncated: need {} bytes, have {}",
                klen + vlen,
                body.len()
            )));
        }
        let key = &body[..klen];
        let value = &body[klen..klen + vlen];
        self.rest = &body[klen + vlen..];
        Ok(Some((key, value)))
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Collect all remaining records (convenience for tests and small files).
    pub fn read_all(mut self) -> Result<crate::KvVec, StorageError> {
        let mut out = Vec::new();
        while let Some((k, v)) = self.next()? {
            out.push((k.to_vec(), v.to_vec()));
        }
        Ok(out)
    }
}

/// Encode a whole record set into SeqFile bytes.
pub fn encode_records<'r>(records: impl IntoIterator<Item = (&'r [u8], &'r [u8])>) -> Vec<u8> {
    let mut w = SeqWriter::new();
    for (k, v) in records {
        w.append(k, v);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let mut w = SeqWriter::new();
        w.append(b"alpha", b"1");
        w.append(b"", b"empty-key-ok");
        w.append(b"beta", b"");
        assert_eq!(w.records(), 3);
        let bytes = w.finish();
        let records = SeqReader::open(&bytes).unwrap().read_all().unwrap();
        assert_eq!(
            records,
            vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"".to_vec(), b"empty-key-ok".to_vec()),
                (b"beta".to_vec(), b"".to_vec()),
            ]
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = SeqReader::open(b"NOTSEQ----").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn truncated_body_is_rejected() {
        let mut w = SeqWriter::new();
        w.append(b"key", b"value");
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 2);
        let mut r = SeqReader::open(&bytes).unwrap();
        assert!(r.next().is_err());
    }

    #[test]
    fn empty_file_yields_no_records() {
        let bytes = SeqWriter::new().finish();
        let mut r = SeqReader::open(&bytes).unwrap();
        assert!(r.next().unwrap().is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(records in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..64),
             proptest::collection::vec(any::<u8>(), 0..256)), 0..50)) {
            let mut w = SeqWriter::new();
            for (k, v) in &records {
                w.append(k, v);
            }
            let bytes = w.finish();
            let back = SeqReader::open(&bytes).unwrap().read_all().unwrap();
            prop_assert_eq!(back, records);
        }
    }
}
