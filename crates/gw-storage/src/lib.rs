//! Storage substrate for the Glasswing reproduction.
//!
//! The paper evaluates Glasswing against Hadoop with both frameworks reading
//! through **HDFS** (deployed over IP-over-InfiniBand, replication factor 3,
//! accessed via libhdfs/JNI) and, for the GPMR comparison and some GPU
//! experiments, through the nodes' **local file systems**. The measured gap
//! between the two (paper Fig. 3(d)/(e)) is attributed to HDFS overhead,
//! "the most important source being Java/native switches and data transfers
//! through JNI".
//!
//! This crate provides both backends:
//!
//! * [`dfs::Dfs`] — an HDFS-like distributed block store: a namenode-style
//!   metadata map, per-node block replicas, locality-aware reads, and an
//!   [`iomodel::IoModel`] that charges bandwidth plus a per-call overhead
//!   tax reproducing the JNI penalty.
//! * [`localfs::LocalFs`] — per-node private files with a cheaper model.
//! * [`seqfile`] — a SequenceFile-like length-prefixed record format, the
//!   serialization used for job input and output ("the Hadoop applications
//!   use Hadoop's SequenceFile API to efficiently serialize input and
//!   output").
//! * [`split`] — input splits with preferred (block-holding) nodes, feeding
//!   Glasswing's locality-aware job allocation.

pub mod dfs;
pub mod iomodel;
pub mod localfs;
pub mod seqfile;
pub mod split;
pub mod varint;

pub use dfs::{Dfs, DfsConfig};
pub use iomodel::{IoModel, IoSample, IoStats};
pub use localfs::LocalFs;
pub use seqfile::{SeqReader, SeqWriter};
pub use split::{split_blocks, InputSplit, StorageFaultHook};

/// An owned key/value record list — the currency of job input/output.
pub type KvVec = Vec<(Vec<u8>, Vec<u8>)>;

/// Identifier of a cluster node. Node 0 is conventionally the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index, for vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists and overwrite was not requested.
    AlreadyExists(String),
    /// A record or file was malformed.
    Corrupt(String),
    /// Operation referenced an unknown node.
    UnknownNode(NodeId),
    /// Every replica of a block is unreadable (its nodes are dead or its
    /// reads keep faulting), so the data is gone.
    AllReplicasLost(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound(p) => write!(f, "not found: {p}"),
            StorageError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            StorageError::AllReplicasLost(what) => {
                write!(f, "all replicas lost: {what}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
