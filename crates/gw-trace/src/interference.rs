//! Cross-tenant interference attribution over a multi-job [`Trace`].
//!
//! A resident service runs several jobs against one node pool, and the
//! per-job [`crate::PerfAnalysis`] deliberately sees only its own job's
//! lanes — a straggling stage there cannot say *why* it straggled. This
//! view answers that question from the service-lifetime trace: because
//! every job view of one [`crate::Tracer`] shares a single epoch, the
//! busy intervals of different jobs live on one wall-clock axis and can
//! be intersected directly.
//!
//! For each job the sweep reconstructs the union of its lanes' busy
//! intervals (outermost span nesting per lane, same discipline as the
//! overlap matrix in [`crate::PerfAnalysis`]); for each job pair it
//! reports how long both were simultaneously busy and on which shared
//! nodes. `overlap_ns == 0` for a pair means the scheduler serialized
//! them — any slowdown is *not* cross-tenant interference.
//!
//! Timing magnitudes here are measurements, not seed-deterministic
//! quantities; nothing in this module feeds the determinism digests.

use std::collections::BTreeMap;

use crate::event::{EventKind, LaneId};
use crate::tracer::Trace;

/// One job's aggregate activity within a service-lifetime trace.
#[derive(Debug, Clone)]
pub struct JobActivity {
    /// Service job index.
    pub job: u32,
    /// First event timestamp (ns since the shared tracer epoch).
    pub first_ns: u64,
    /// Last event timestamp.
    pub last_ns: u64,
    /// Union length of all the job's busy intervals, across its lanes.
    pub busy_ns: u64,
    /// Nodes the job ran lanes on.
    pub nodes: Vec<u32>,
}

/// Simultaneous-busy accounting for one job pair (`a < b`).
#[derive(Debug, Clone)]
pub struct JobOverlap {
    /// Lower job index.
    pub a: u32,
    /// Higher job index.
    pub b: u32,
    /// Wall time both jobs were busy at once (anywhere in the cluster).
    pub overlap_ns: u64,
    /// Nodes where both jobs ran lanes — the slots where interference
    /// could be physical (shared stage threads) rather than incidental.
    pub shared_nodes: Vec<u32>,
}

/// Cross-job interference summary of one multi-job trace.
#[derive(Debug, Clone, Default)]
pub struct Interference {
    /// Per-job activity, ascending by job id.
    pub jobs: Vec<JobActivity>,
    /// All job pairs with nonzero concurrency potential, lexicographic.
    pub pairs: Vec<JobOverlap>,
}

impl Interference {
    /// Fold a finished (service-lifetime) trace into the summary.
    pub fn from_trace(trace: &Trace) -> Interference {
        // job → merged busy intervals and touched nodes.
        let mut intervals: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        let mut nodes: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut bounds: BTreeMap<u32, (u64, u64)> = BTreeMap::new();

        for (lane, events) in &trace.lanes {
            let LaneId { job, node, .. } = *lane;
            if !events.is_empty() {
                let touched = nodes.entry(job).or_default();
                if !touched.contains(&node) {
                    touched.push(node);
                }
            }
            // Outermost-span busy intervals on this lane: depth 0→1 opens
            // an interval, →0 closes it. Truncated spans close at the
            // lane's last timestamp.
            let mut depth = 0u32;
            let mut open_at = 0u64;
            let mut last = 0u64;
            for ev in events {
                last = ev.at_ns;
                let b = bounds.entry(job).or_insert((ev.at_ns, ev.at_ns));
                b.0 = b.0.min(ev.at_ns);
                b.1 = b.1.max(ev.at_ns);
                match ev.kind {
                    EventKind::Begin { .. } => {
                        if depth == 0 {
                            open_at = ev.at_ns;
                        }
                        depth += 1;
                    }
                    EventKind::End { .. } if depth > 0 => {
                        depth -= 1;
                        if depth == 0 {
                            intervals.entry(job).or_default().push((open_at, ev.at_ns));
                        }
                    }
                    _ => {}
                }
            }
            if depth > 0 && last > open_at {
                intervals.entry(job).or_default().push((open_at, last));
            }
        }

        let unions: BTreeMap<u32, Vec<(u64, u64)>> = intervals
            .into_iter()
            .map(|(job, ivs)| (job, union(ivs)))
            .collect();

        let jobs: Vec<JobActivity> = bounds
            .iter()
            .map(|(&job, &(first_ns, last_ns))| JobActivity {
                job,
                first_ns,
                last_ns,
                busy_ns: unions
                    .get(&job)
                    .map(|u| u.iter().map(|&(s, e)| e - s).sum())
                    .unwrap_or(0),
                nodes: nodes.get(&job).cloned().unwrap_or_default(),
            })
            .collect();

        let mut pairs = Vec::new();
        for i in 0..jobs.len() {
            for j in (i + 1)..jobs.len() {
                let (a, b) = (jobs[i].job, jobs[j].job);
                let overlap_ns = match (unions.get(&a), unions.get(&b)) {
                    (Some(ua), Some(ub)) => intersection_len(ua, ub),
                    _ => 0,
                };
                let mut shared_nodes: Vec<u32> = jobs[i]
                    .nodes
                    .iter()
                    .filter(|n| jobs[j].nodes.contains(n))
                    .copied()
                    .collect();
                shared_nodes.sort_unstable();
                pairs.push(JobOverlap {
                    a,
                    b,
                    overlap_ns,
                    shared_nodes,
                });
            }
        }

        Interference { jobs, pairs }
    }

    /// Overlap entry for a job pair, order-insensitive.
    pub fn overlap(&self, a: u32, b: u32) -> Option<&JobOverlap> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.pairs.iter().find(|p| p.a == lo && p.b == hi)
    }

    /// Human-readable rollup, one line per job and per pair.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "job {}: busy {:.3} ms over [{:.3}, {:.3}] ms on nodes {:?}",
                j.job,
                j.busy_ns as f64 / 1e6,
                j.first_ns as f64 / 1e6,
                j.last_ns as f64 / 1e6,
                j.nodes,
            );
        }
        for p in &self.pairs {
            let _ = writeln!(
                out,
                "jobs {}x{}: concurrent {:.3} ms, shared nodes {:?}",
                p.a,
                p.b,
                p.overlap_ns as f64 / 1e6,
                p.shared_nodes,
            );
        }
        out
    }
}

/// Merge possibly-overlapping intervals into a sorted disjoint union.
fn union(mut ivs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ivs.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ivs.len());
    for (s, e) in ivs {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted unions.
fn intersection_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Realm, SpanId};
    use crate::stage::{PipelineKind, StageId};

    fn lane(job: u32, node: u32) -> LaneId {
        LaneId {
            job,
            node,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage: StageId::Kernel,
                lane: 0,
            },
        }
    }

    fn span(at_begin: u64, at_end: u64) -> Vec<Event> {
        vec![
            Event {
                at_ns: at_begin,
                kind: EventKind::Begin {
                    span: SpanId::Chunk { seq: 0 },
                },
            },
            Event {
                at_ns: at_end,
                kind: EventKind::End {
                    span: SpanId::Chunk { seq: 0 },
                    wall_ns: at_end - at_begin,
                    modeled_ns: 0,
                    accounted: true,
                },
            },
        ]
    }

    #[test]
    fn overlapping_jobs_report_their_concurrent_time_and_shared_nodes() {
        let trace = Trace {
            lanes: vec![(lane(0, 0), span(0, 1_000)), (lane(1, 0), span(600, 2_000))],
        };
        let inf = Interference::from_trace(&trace);
        assert_eq!(inf.jobs.len(), 2);
        let p = inf.overlap(1, 0).unwrap();
        assert_eq!((p.a, p.b), (0, 1));
        assert_eq!(p.overlap_ns, 400);
        assert_eq!(p.shared_nodes, vec![0]);
    }

    #[test]
    fn serialized_jobs_have_zero_overlap() {
        let trace = Trace {
            lanes: vec![(lane(0, 0), span(0, 500)), (lane(1, 1), span(500, 900))],
        };
        let inf = Interference::from_trace(&trace);
        let p = inf.overlap(0, 1).unwrap();
        assert_eq!(p.overlap_ns, 0);
        assert!(p.shared_nodes.is_empty());
    }

    #[test]
    fn busy_union_merges_a_jobs_lanes() {
        // Two lanes of one job with overlapping busy windows: the union
        // counts the overlapped region once.
        let mut l2 = lane(0, 1);
        l2.realm = Realm::Storage;
        let trace = Trace {
            lanes: vec![(lane(0, 0), span(0, 1_000)), (l2, span(500, 1_500))],
        };
        let inf = Interference::from_trace(&trace);
        assert_eq!(inf.jobs[0].busy_ns, 1_500);
        assert_eq!(inf.jobs[0].nodes, vec![0, 1]);
        assert!(inf.pairs.is_empty());
    }

    #[test]
    fn truncated_spans_close_at_the_lane_end() {
        let mut events = span(0, 400);
        events.truncate(1); // Begin without End
        events.push(Event {
            at_ns: 300,
            kind: EventKind::Count {
                counter: crate::event::CounterId::DfsReadBytes,
                delta: 1,
            },
        });
        let trace = Trace {
            lanes: vec![(lane(2, 0), events)],
        };
        let inf = Interference::from_trace(&trace);
        assert_eq!(inf.jobs[0].job, 2);
        assert_eq!(inf.jobs[0].busy_ns, 300);
    }

    #[test]
    fn render_mentions_every_job_and_pair() {
        let trace = Trace {
            lanes: vec![(lane(0, 0), span(0, 100)), (lane(3, 1), span(50, 80))],
        };
        let text = Interference::from_trace(&trace).render();
        assert!(text.contains("job 0:"));
        assert!(text.contains("job 3:"));
        assert!(text.contains("jobs 0x3:"));
    }
}
