//! The event collector: lanes, the tracer, and the finished trace.
//!
//! Recording is lock-cheap: each lane owns its own mutex-guarded vector
//! and is written by (at most) one thread — the stage thread, the storage
//! reader, the fabric endpoint — so `record` is an uncontended lock plus
//! a push. The tracer-level map lock is only taken on lane creation and
//! at [`Tracer::finish`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::event::{CounterId, Event, EventKind, LaneId, LogicalKind, MarkId, SpanId};
use crate::metrics::MetricsSummary;

/// A live consumer of events as they are recorded — the hook a telemetry
/// plane registers to see chunk completions, counter bumps and marks
/// *while the job runs*, without waiting for [`Tracer::finish`].
///
/// Implementations must be cheap and non-blocking: `on_event` runs on
/// the recording thread (a pipeline stage, the fabric endpoint) with the
/// lane's buffer lock already released. The sink sees the lane id as
/// stamped by the recording view (job id applied), so a service-lifetime
/// sink can attribute events to jobs.
pub trait EventSink: Send + Sync {
    /// Called after `event` has been appended to `lane`'s buffer.
    fn on_event(&self, lane: LaneId, event: &Event);
}

/// Collects events for one job run — or, through [`Tracer::for_job`]
/// views, for a whole service lifetime of runs sharing one epoch. Cheap
/// to share (`Arc`); hand lanes to subsystems with [`Tracer::lane`] and
/// snapshot the result with [`Tracer::finish`].
///
/// A `Tracer` is a *view* over a shared event store: [`Tracer::for_job`]
/// returns a sibling view that stamps every lane it hands out with that
/// job id, while recording into the same store against the same epoch.
/// That keeps timestamps from concurrent jobs on one wall-clock axis, so
/// cross-tenant interference analysis can overlap them directly.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
    job: u32,
}

struct TracerInner {
    epoch: Instant,
    lanes: Mutex<BTreeMap<LaneId, Arc<LaneBuf>>>,
    sink: Option<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerInner")
            .field("epoch", &self.epoch)
            .field("lanes", &self.lanes)
            .field("sink", &self.sink.as_ref().map(|_| "EventSink"))
            .finish()
    }
}

#[derive(Debug, Default)]
struct LaneBuf {
    events: Mutex<Vec<Event>>,
}

impl Tracer {
    /// A fresh tracer; its epoch (the zero of every `at_ns`) is now.
    /// Lanes it hands out are stamped `job: 0`.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                lanes: Mutex::new(BTreeMap::new()),
                sink: None,
            }),
            job: 0,
        }
    }

    /// A fresh tracer with a live [`EventSink`]: every event recorded on
    /// any lane of any view is also forwarded to `sink` as it happens.
    /// This is how a telemetry plane taps the event stream without the
    /// engine knowing about it.
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                lanes: Mutex::new(BTreeMap::new()),
                sink: Some(sink),
            }),
            job: 0,
        }
    }

    /// A sibling view over the same event store whose lanes are stamped
    /// with `job`. Shares the epoch, so events from different job views
    /// are directly comparable on one time axis.
    pub fn for_job(&self, job: u32) -> Tracer {
        Tracer {
            inner: Arc::clone(&self.inner),
            job,
        }
    }

    /// The job id this view stamps onto its lanes.
    pub fn job(&self) -> u32 {
        self.job
    }

    /// Get or create the lane `id`, returning a cheap writer handle. The
    /// `job` field of `id` is overridden by this view's job id, so
    /// engine-internal emitters can construct ids with `job: 0` and still
    /// land in the submitting job's lanes when run under a service.
    pub fn lane(&self, mut id: LaneId) -> Lane {
        id.job = self.job;
        let buf = Arc::clone(self.inner.lanes.lock().entry(id).or_default());
        Lane {
            epoch: self.inner.epoch,
            id,
            buf,
            sink: self.inner.sink.clone(),
        }
    }

    /// Snapshot everything recorded so far — all jobs — into a
    /// [`Trace`], lanes in canonical ([`LaneId`]) order.
    pub fn finish(&self) -> Trace {
        let lanes = self
            .inner
            .lanes
            .lock()
            .iter()
            .map(|(id, buf)| (*id, buf.events.lock().clone()))
            .collect();
        Trace { lanes }
    }

    /// Snapshot only the lanes stamped with `job`, in canonical order.
    /// This is what a service hands back in a per-job [`crate::report`]:
    /// the job's own event stream, free of co-tenant lanes.
    pub fn finish_job(&self, job: u32) -> Trace {
        let lanes = self
            .inner
            .lanes
            .lock()
            .iter()
            .filter(|(id, _)| id.job == job)
            .map(|(id, buf)| (*id, buf.events.lock().clone()))
            .collect();
        Trace { lanes }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Writer handle for one lane. Clones share the lane.
#[derive(Clone)]
pub struct Lane {
    epoch: Instant,
    id: LaneId,
    buf: Arc<LaneBuf>,
    sink: Option<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("epoch", &self.epoch)
            .field("id", &self.id)
            .field("buf", &self.buf)
            .field("sink", &self.sink.as_ref().map(|_| "EventSink"))
            .finish()
    }
}

impl Lane {
    /// Record `kind` at the current wall clock; returns the stored event
    /// so callers can feed the same value to derived views.
    pub fn record(&self, kind: EventKind) -> Event {
        let ev = Event {
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
        };
        self.buf.events.lock().push(ev);
        if let Some(sink) = &self.sink {
            sink.on_event(self.id, &ev);
        }
        ev
    }

    /// Open a span.
    pub fn begin(&self, span: SpanId) {
        self.record(EventKind::Begin { span });
    }

    /// Close a span with accounted durations (they count toward stage
    /// totals in derived views).
    pub fn end(&self, span: SpanId, wall: Duration, modeled: Duration) {
        self.record(EventKind::End {
            span,
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted: true,
        });
    }

    /// Close a structural span (aborted chunk, token wait, untimed finish)
    /// whose durations must not be folded into stage totals.
    pub fn end_unaccounted(&self, span: SpanId) {
        self.record(EventKind::End {
            span,
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    /// Record a point event.
    pub fn instant(&self, mark: MarkId) {
        self.record(EventKind::Instant { mark });
    }

    /// Bump a counter.
    pub fn count(&self, counter: CounterId, delta: u64) {
        self.record(EventKind::Count { counter, delta });
    }
}

/// A finished, immutable event stream: one vector of events per lane,
/// lanes in canonical order, events within a lane in emission order. That
/// per-lane order is the determinism contract — it sidesteps cross-thread
/// interleaving, which no fixed seed can pin.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `(lane, events)` pairs sorted by [`LaneId`].
    pub lanes: Vec<(LaneId, Vec<Event>)>,
}

impl Trace {
    /// The seed-deterministic projection: every event's identity, in
    /// canonical lane order, wall timestamps and durations stripped.
    pub fn logical_events(&self) -> Vec<(LaneId, LogicalKind)> {
        self.lanes
            .iter()
            .flat_map(|(id, events)| events.iter().map(move |ev| (*id, ev.kind.logical())))
            .collect()
    }

    /// Total number of recorded events.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// The distinct job ids present, ascending. One-shot traces report
    /// `[0]` (or `[]` if empty).
    pub fn jobs(&self) -> Vec<u32> {
        let mut jobs: Vec<u32> = self.lanes.iter().map(|(id, _)| id.job).collect();
        jobs.dedup();
        jobs
    }

    /// Restrict to the lanes of one job, preserving canonical order.
    pub fn for_job(&self, job: u32) -> Trace {
        Trace {
            lanes: self
                .lanes
                .iter()
                .filter(|(id, _)| id.job == job)
                .cloned()
                .collect(),
        }
    }

    /// Roll the stream up into per-node/per-stage/per-job aggregates.
    pub fn metrics(&self) -> MetricsSummary {
        MetricsSummary::from_trace(self)
    }

    /// Export as Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// Perfetto): one process per node, one thread per lane, `B`/`E`
    /// pairs for spans, `i` for marks, `C` for counters.
    pub fn chrome_json(&self) -> String {
        crate::chrome::export(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Realm;
    use crate::stage::{PipelineKind, StageId};

    fn lane_id(node: u32, stage: StageId) -> LaneId {
        LaneId {
            job: 0,
            node,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage,
                lane: 0,
            },
        }
    }

    #[test]
    fn lanes_come_back_in_canonical_order_regardless_of_creation_order() {
        let tracer = Tracer::new();
        tracer
            .lane(LaneId {
                job: 0,
                node: 1,
                realm: Realm::Storage,
            })
            .count(CounterId::DfsReadBytes, 10);
        tracer
            .lane(lane_id(0, StageId::Kernel))
            .begin(SpanId::Chunk { seq: 0 });
        tracer
            .lane(lane_id(0, StageId::Input))
            .begin(SpanId::Chunk { seq: 0 });
        let trace = tracer.finish();
        let ids: Vec<LaneId> = trace.lanes.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(trace.event_count(), 3);
    }

    #[test]
    fn events_within_a_lane_keep_emission_order_and_timestamps_grow() {
        let tracer = Tracer::new();
        let lane = tracer.lane(lane_id(0, StageId::Input));
        lane.begin(SpanId::Chunk { seq: 0 });
        lane.end(
            SpanId::Chunk { seq: 0 },
            Duration::from_micros(5),
            Duration::from_micros(7),
        );
        lane.instant(MarkId::TaskFaultFired);
        let trace = tracer.finish();
        let events = &trace.lanes[0].1;
        assert_eq!(events.len(), 3);
        assert!(events[0].at_ns <= events[1].at_ns);
        assert!(events[1].at_ns <= events[2].at_ns);
        assert_eq!(
            events[1].kind,
            EventKind::End {
                span: SpanId::Chunk { seq: 0 },
                wall_ns: 5_000,
                modeled_ns: 7_000,
                accounted: true,
            }
        );
    }

    #[test]
    fn logical_events_are_identical_across_differently_timed_runs() {
        let run = |sleep: bool| {
            let tracer = Tracer::new();
            let lane = tracer.lane(lane_id(2, StageId::Kernel));
            for seq in 0..3u64 {
                lane.begin(SpanId::Chunk { seq });
                if sleep {
                    std::thread::sleep(Duration::from_millis(1));
                }
                lane.end(
                    SpanId::Chunk { seq },
                    Duration::from_nanos(seq * 17),
                    Duration::from_nanos(seq * 19),
                );
            }
            lane.end_unaccounted(SpanId::Finish { seq: 2 });
            tracer.finish().logical_events()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn job_views_stamp_lanes_and_share_the_epoch_and_store() {
        let base = Tracer::new();
        let j1 = base.for_job(1);
        let j2 = base.for_job(2);
        // Emitters construct ids with job: 0; the view re-stamps them.
        base.lane(lane_id(0, StageId::Input))
            .begin(SpanId::Chunk { seq: 0 });
        j1.lane(lane_id(0, StageId::Input))
            .begin(SpanId::Chunk { seq: 0 });
        j2.lane(lane_id(0, StageId::Input))
            .begin(SpanId::Chunk { seq: 0 });
        let all = base.finish();
        assert_eq!(all.jobs(), vec![0, 1, 2]);
        assert_eq!(all.event_count(), 3);
        // Canonical order is job-major.
        let ids: Vec<u32> = all.lanes.iter().map(|(id, _)| id.job).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Per-job snapshots see only their own lanes — from any view.
        let one = j2.finish_job(1);
        assert_eq!(one.event_count(), 1);
        assert!(one.lanes.iter().all(|(id, _)| id.job == 1));
        assert_eq!(all.for_job(2).event_count(), 1);
        assert_eq!(base.finish_job(7).event_count(), 0);
        assert_eq!(j1.job(), 1);
    }

    #[test]
    fn clones_of_a_lane_share_the_buffer() {
        let tracer = Tracer::new();
        let a = tracer.lane(lane_id(0, StageId::Partition));
        let b = a.clone();
        a.count(CounterId::ShuffleSendMsgs, 1);
        b.count(CounterId::ShuffleSendMsgs, 2);
        let trace = tracer.finish();
        assert_eq!(trace.lanes[0].1.len(), 2);
    }
}
