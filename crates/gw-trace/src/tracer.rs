//! The event collector: lanes, the tracer, and the finished trace.
//!
//! Recording is lock-cheap: each lane owns its own mutex-guarded vector
//! and is written by (at most) one thread — the stage thread, the storage
//! reader, the fabric endpoint — so `record` is an uncontended lock plus
//! a push. The tracer-level map lock is only taken on lane creation and
//! at [`Tracer::finish`].

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::event::{CounterId, Event, EventKind, LaneId, LogicalKind, MarkId, SpanId};
use crate::metrics::MetricsSummary;

/// Collects events for one job run. Cheap to share (`Arc`); hand lanes to
/// subsystems with [`Tracer::lane`] and snapshot the result with
/// [`Tracer::finish`].
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    lanes: Mutex<BTreeMap<LaneId, Arc<LaneBuf>>>,
}

#[derive(Debug, Default)]
struct LaneBuf {
    events: Mutex<Vec<Event>>,
}

impl Tracer {
    /// A fresh tracer; its epoch (the zero of every `at_ns`) is now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            lanes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get or create the lane `id`, returning a cheap writer handle.
    pub fn lane(&self, id: LaneId) -> Lane {
        let buf = Arc::clone(self.lanes.lock().entry(id).or_default());
        Lane {
            epoch: self.epoch,
            buf,
        }
    }

    /// Snapshot everything recorded so far into a [`Trace`], lanes in
    /// canonical ([`LaneId`]) order.
    pub fn finish(&self) -> Trace {
        let lanes = self
            .lanes
            .lock()
            .iter()
            .map(|(id, buf)| (*id, buf.events.lock().clone()))
            .collect();
        Trace { lanes }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Writer handle for one lane. Clones share the lane.
#[derive(Debug, Clone)]
pub struct Lane {
    epoch: Instant,
    buf: Arc<LaneBuf>,
}

impl Lane {
    /// Record `kind` at the current wall clock; returns the stored event
    /// so callers can feed the same value to derived views.
    pub fn record(&self, kind: EventKind) -> Event {
        let ev = Event {
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
        };
        self.buf.events.lock().push(ev);
        ev
    }

    /// Open a span.
    pub fn begin(&self, span: SpanId) {
        self.record(EventKind::Begin { span });
    }

    /// Close a span with accounted durations (they count toward stage
    /// totals in derived views).
    pub fn end(&self, span: SpanId, wall: Duration, modeled: Duration) {
        self.record(EventKind::End {
            span,
            wall_ns: wall.as_nanos() as u64,
            modeled_ns: modeled.as_nanos() as u64,
            accounted: true,
        });
    }

    /// Close a structural span (aborted chunk, token wait, untimed finish)
    /// whose durations must not be folded into stage totals.
    pub fn end_unaccounted(&self, span: SpanId) {
        self.record(EventKind::End {
            span,
            wall_ns: 0,
            modeled_ns: 0,
            accounted: false,
        });
    }

    /// Record a point event.
    pub fn instant(&self, mark: MarkId) {
        self.record(EventKind::Instant { mark });
    }

    /// Bump a counter.
    pub fn count(&self, counter: CounterId, delta: u64) {
        self.record(EventKind::Count { counter, delta });
    }
}

/// A finished, immutable event stream: one vector of events per lane,
/// lanes in canonical order, events within a lane in emission order. That
/// per-lane order is the determinism contract — it sidesteps cross-thread
/// interleaving, which no fixed seed can pin.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `(lane, events)` pairs sorted by [`LaneId`].
    pub lanes: Vec<(LaneId, Vec<Event>)>,
}

impl Trace {
    /// The seed-deterministic projection: every event's identity, in
    /// canonical lane order, wall timestamps and durations stripped.
    pub fn logical_events(&self) -> Vec<(LaneId, LogicalKind)> {
        self.lanes
            .iter()
            .flat_map(|(id, events)| events.iter().map(move |ev| (*id, ev.kind.logical())))
            .collect()
    }

    /// Total number of recorded events.
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|(_, evs)| evs.len()).sum()
    }

    /// Roll the stream up into per-node/per-stage/per-job aggregates.
    pub fn metrics(&self) -> MetricsSummary {
        MetricsSummary::from_trace(self)
    }

    /// Export as Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// Perfetto): one process per node, one thread per lane, `B`/`E`
    /// pairs for spans, `i` for marks, `C` for counters.
    pub fn chrome_json(&self) -> String {
        crate::chrome::export(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Realm;
    use crate::stage::{PipelineKind, StageId};

    fn lane_id(node: u32, stage: StageId) -> LaneId {
        LaneId {
            node,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage,
                lane: 0,
            },
        }
    }

    #[test]
    fn lanes_come_back_in_canonical_order_regardless_of_creation_order() {
        let tracer = Tracer::new();
        tracer
            .lane(LaneId {
                node: 1,
                realm: Realm::Storage,
            })
            .count(CounterId::DfsReadBytes, 10);
        tracer
            .lane(lane_id(0, StageId::Kernel))
            .begin(SpanId::Chunk { seq: 0 });
        tracer
            .lane(lane_id(0, StageId::Input))
            .begin(SpanId::Chunk { seq: 0 });
        let trace = tracer.finish();
        let ids: Vec<LaneId> = trace.lanes.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(trace.event_count(), 3);
    }

    #[test]
    fn events_within_a_lane_keep_emission_order_and_timestamps_grow() {
        let tracer = Tracer::new();
        let lane = tracer.lane(lane_id(0, StageId::Input));
        lane.begin(SpanId::Chunk { seq: 0 });
        lane.end(
            SpanId::Chunk { seq: 0 },
            Duration::from_micros(5),
            Duration::from_micros(7),
        );
        lane.instant(MarkId::TaskFaultFired);
        let trace = tracer.finish();
        let events = &trace.lanes[0].1;
        assert_eq!(events.len(), 3);
        assert!(events[0].at_ns <= events[1].at_ns);
        assert!(events[1].at_ns <= events[2].at_ns);
        assert_eq!(
            events[1].kind,
            EventKind::End {
                span: SpanId::Chunk { seq: 0 },
                wall_ns: 5_000,
                modeled_ns: 7_000,
                accounted: true,
            }
        );
    }

    #[test]
    fn logical_events_are_identical_across_differently_timed_runs() {
        let run = |sleep: bool| {
            let tracer = Tracer::new();
            let lane = tracer.lane(lane_id(2, StageId::Kernel));
            for seq in 0..3u64 {
                lane.begin(SpanId::Chunk { seq });
                if sleep {
                    std::thread::sleep(Duration::from_millis(1));
                }
                lane.end(
                    SpanId::Chunk { seq },
                    Duration::from_nanos(seq * 17),
                    Duration::from_nanos(seq * 19),
                );
            }
            lane.end_unaccounted(SpanId::Finish { seq: 2 });
            tracer.finish().logical_events()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn clones_of_a_lane_share_the_buffer() {
        let tracer = Tracer::new();
        let a = tracer.lane(lane_id(0, StageId::Partition));
        let b = a.clone();
        a.count(CounterId::ShuffleSendMsgs, 1);
        b.count(CounterId::ShuffleSendMsgs, 2);
        let trace = tracer.finish();
        assert_eq!(trace.lanes[0].1.len(), 2);
    }
}
