//! A dependency-free JSON well-formedness checker.
//!
//! The workspace vendors no JSON parser, and the Chrome exporter is
//! hand-written — so the tests that pin its output need an independent
//! check that the bytes really are JSON. This is a strict recursive-
//! descent validator (RFC 8259 grammar, no extensions, no trailing
//! garbage); it validates, it does not build a document tree. One
//! deviation, in the strict direction: exponents may not carry a leading
//! `+` (RFC 8259 allows it, but no exporter in this repo emits it, so
//! accepting it would only mask corrupted output).

/// Check that `s` is one complete, well-formed JSON value. Returns a
/// byte-offset-tagged message on the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 512;

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {msg}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                self.object()?;
                self.depth -= 1;
                Ok(())
            }
            Some(b'[') => {
                self.depth += 1;
                self.array()?;
                self.depth -= 1;
                Ok(())
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), String> {
        if self.b[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits must follow the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            // Deliberately stricter than RFC 8259 (which allows an
            // optional `+` here): none of the repo's exporters ever emit
            // a signed-positive exponent, so a `+` can only mean a
            // hand-edited or foreign document and is rejected.
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("malformed exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            "1e-3",
            "2E17",
            "\"a\\u00e9\\n\"",
            "  {\"a\":[1,2,{\"b\":true}],\"c\":null}  ",
            "{\"ts\":1.500}",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "1e+3",
            "-12.5e+3",
            "2E+0",
            "\"unterminated",
            "\"bad\\q\"",
            "\"raw\ncontrol\"",
            "{} extra",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_stack_abuse() {
        let deep = "[".repeat(600) + &"]".repeat(600);
        assert!(validate_json(&deep).is_err());
        let fine = "[".repeat(100) + &"]".repeat(100);
        validate_json(&fine).unwrap();
    }
}
