//! Pipeline stage identity shared by the whole engine.
//!
//! These enums used to live in `gw-pipeline`; they moved here because
//! trace events address stages, and the trace plane sits *below* the
//! pipeline executor in the dependency graph. `gw-pipeline` re-exports
//! them so existing paths keep working.

/// Which of the two Glasswing pipelines a stage descriptor belongs to.
/// Purely a display concern: both pipelines share the five [`StageId`]
/// slots, but the first and last stages do different jobs on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PipelineKind {
    /// Input → Stage → Kernel → Retrieve → Partition (paper §III-A).
    Map,
    /// MergeRead → Stage → Kernel → Retrieve → Output (paper §III-C).
    Reduce,
}

impl PipelineKind {
    /// Lowercase display name ("map" / "reduce").
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Map => "map",
            PipelineKind::Reduce => "reduce",
        }
    }
}

/// The five pipeline stages. Map and reduce pipelines share the enum; use
/// [`StageId::name_in`] to display a stage under the right pipeline
/// vocabulary (reduce: `merge-read/stage/kernel/retrieve/output`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageId {
    /// Map: read input split / Reduce: final merge read.
    Input,
    /// Host→device staging (fused out of the graph on unified memory).
    Stage,
    /// Kernel execution.
    Kernel,
    /// Device→host retrieval (fused out of the graph on unified memory).
    Retrieve,
    /// Map: partition+sort+push / Reduce: output write.
    Partition,
}

impl StageId {
    /// All stages in pipeline order.
    pub const ALL: [StageId; 5] = [
        StageId::Input,
        StageId::Stage,
        StageId::Kernel,
        StageId::Retrieve,
        StageId::Partition,
    ];

    /// Stable index 0..5.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StageId::Input => 0,
            StageId::Stage => 1,
            StageId::Kernel => 2,
            StageId::Retrieve => 3,
            StageId::Partition => 4,
        }
    }

    /// Display name under the map-pipeline vocabulary (the historical
    /// default; reduce dumps should prefer [`StageId::name_in`]).
    pub fn name(self) -> &'static str {
        self.name_in(PipelineKind::Map)
    }

    /// Display name under `kind`'s vocabulary.
    pub fn name_in(self, kind: PipelineKind) -> &'static str {
        match (kind, self) {
            (PipelineKind::Map, StageId::Input) => "input",
            (PipelineKind::Map, StageId::Partition) => "partition",
            (PipelineKind::Reduce, StageId::Input) => "merge-read",
            (PipelineKind::Reduce, StageId::Partition) => "output",
            (_, StageId::Stage) => "stage",
            (_, StageId::Kernel) => "kernel",
            (_, StageId::Retrieve) => "retrieve",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pipeline_display_names() {
        assert_eq!(StageId::Input.name(), "input");
        assert_eq!(StageId::Input.name_in(PipelineKind::Reduce), "merge-read");
        assert_eq!(StageId::Partition.name_in(PipelineKind::Map), "partition");
        assert_eq!(StageId::Partition.name_in(PipelineKind::Reduce), "output");
        for mid in [StageId::Stage, StageId::Kernel, StageId::Retrieve] {
            assert_eq!(
                mid.name_in(PipelineKind::Map),
                mid.name_in(PipelineKind::Reduce)
            );
        }
    }

    #[test]
    fn stage_order_matches_index() {
        for w in StageId::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].index() < w[1].index());
        }
        assert!(PipelineKind::Map < PipelineKind::Reduce);
    }
}
