//! Chrome `trace_event` JSON exporter.
//!
//! Written by hand (the workspace vendors no JSON crate) with a **stable
//! field order** — `name, ph, pid, tid, ts, s, args` — so the golden-file
//! test can byte-compare output. One process per job × node (job 0 keeps
//! `pid == node`, so one-shot exports are byte-identical to the
//! pre-service format), one thread per lane (pipeline stages first, then
//! storage/net/chaos), `B`/`E` pairs for spans, `i` for instant marks,
//! `C` for counters (cumulative value per lane). Load the result in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{CounterId, EventKind, LaneId, MarkId, SpanId};
use crate::tracer::Trace;

pub(crate) fn export(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.event_count() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // Lane → (pid, tid): each (job, node) pair becomes a process, lanes
    // become threads numbered in canonical lane order within it. Job 0
    // maps to `pid == node`, so single-job exports are byte-identical to
    // the pre-service format; service jobs get a disjoint pid block.
    let mut tids: BTreeMap<LaneId, (u32, u32)> = BTreeMap::new();
    let mut per_proc: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    for (lane, _) in &trace.lanes {
        let next = per_proc.entry((lane.job, lane.node)).or_insert(0);
        tids.insert(*lane, (pid_of(lane.job, lane.node), *next));
        *next += 1;
    }

    for &(job, node) in per_proc.keys() {
        meta(
            &mut out,
            &mut first,
            "process_name",
            pid_of(job, node),
            0,
            &node_name(job, node),
        );
    }
    for (lane, &(pid, tid)) in &tids {
        meta(
            &mut out,
            &mut first,
            "thread_name",
            pid,
            tid,
            &lane.realm.lane_name(),
        );
    }

    for (lane, events) in &trace.lanes {
        let (pid, tid) = tids[lane];
        let mut totals: BTreeMap<CounterId, u64> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Begin { span } => {
                    event_head(
                        &mut out,
                        &mut first,
                        span_name(span),
                        'B',
                        pid,
                        tid,
                        ev.at_ns,
                    );
                    out.push_str(",\"args\":{");
                    span_args(&mut out, span);
                    out.push_str("}}");
                }
                EventKind::End {
                    span,
                    wall_ns,
                    modeled_ns,
                    accounted,
                } => {
                    event_head(
                        &mut out,
                        &mut first,
                        span_name(span),
                        'E',
                        pid,
                        tid,
                        ev.at_ns,
                    );
                    out.push_str(",\"args\":{");
                    span_args(&mut out, span);
                    let _ = write!(
                        out,
                        ",\"wall_ns\":{wall_ns},\"modeled_ns\":{modeled_ns},\"accounted\":{accounted}"
                    );
                    out.push_str("}}");
                }
                EventKind::Instant { mark } => {
                    event_head(
                        &mut out,
                        &mut first,
                        mark_name(mark),
                        'i',
                        pid,
                        tid,
                        ev.at_ns,
                    );
                    out.push_str(",\"s\":\"t\",\"args\":{");
                    mark_args(&mut out, mark);
                    out.push_str("}}");
                }
                EventKind::Count { counter, delta } => {
                    let total = totals.entry(counter).or_default();
                    *total += delta;
                    event_head(
                        &mut out,
                        &mut first,
                        counter.name(),
                        'C',
                        pid,
                        tid,
                        ev.at_ns,
                    );
                    let _ = write!(out, ",\"args\":{{\"value\":{total}}}}}");
                }
            }
        }
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Jobs are spaced `PID_STRIDE` pids apart so job 0 keeps `pid == node`
/// (golden-trace bit-compatibility) and no realistic cluster size
/// collides across jobs.
const PID_STRIDE: u32 = 1_000;

fn pid_of(job: u32, node: u32) -> u32 {
    job * PID_STRIDE + node
}

fn node_name(job: u32, node: u32) -> String {
    if job == 0 {
        format!("node {node}")
    } else {
        format!("job {job} node {node}")
    }
}

/// Common prefix of one event object: `{"name":…,"ph":…,"pid":…,"tid":…,
/// "ts":…` — the caller appends any extras and the closing brace. `ts` is
/// microseconds with nanosecond fraction, as the format expects.
fn event_head(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    pid: u32,
    tid: u32,
    at_ns: u64,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}.{:03}",
        at_ns / 1_000,
        at_ns % 1_000
    );
}

fn meta(out: &mut String, first: &mut bool, what: &str, pid: u32, tid: u32, name: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    );
    escape_into(out, name);
    out.push_str("\"}}");
}

fn span_name(span: SpanId) -> &'static str {
    match span {
        SpanId::Chunk { .. } => "chunk",
        SpanId::TokenWait { .. } => "token-wait",
        SpanId::Finish { .. } => "finish",
    }
}

fn span_args(out: &mut String, span: SpanId) {
    match span {
        SpanId::Chunk { seq } | SpanId::Finish { seq } => {
            let _ = write!(out, "\"seq\":{seq}");
        }
        SpanId::TokenWait { group, seq } => {
            let _ = write!(out, "\"group\":{group},\"seq\":{seq}");
        }
    }
}

fn mark_name(mark: MarkId) -> &'static str {
    match mark {
        MarkId::FusedPassage { .. } => "fused-passage",
        MarkId::CrashFired { .. } => "crash-fired",
        MarkId::FaultArmed { .. } => "fault-armed",
        MarkId::ReadFaultFired { .. } => "read-fault",
        MarkId::NetFaultFired { .. } => "net-fault",
        MarkId::TaskFaultFired => "task-fault",
        MarkId::StallFired { .. } => "stall-fired",
        MarkId::SpillFaultFired { .. } => "spill-fault",
        MarkId::SpecLaunched { .. } => "spec-launched",
        MarkId::SpecResolved { .. } => "spec-resolved",
        MarkId::DfsRead { .. } => "dfs-read",
        MarkId::StageLanes { .. } => "stage-lanes",
        MarkId::TokenGroup { .. } => "token-group",
    }
}

fn mark_args(out: &mut String, mark: MarkId) {
    match mark {
        MarkId::FusedPassage { fused, seq } => {
            let _ = write!(out, "\"stage\":\"{}\",\"seq\":{seq}", fused.name());
        }
        MarkId::CrashFired { site, after } => {
            out.push_str("\"site\":\"");
            escape_into(out, site);
            let _ = write!(out, "\",\"after\":{after}");
        }
        MarkId::FaultArmed { kind, detail } => {
            out.push_str("\"kind\":\"");
            escape_into(out, kind);
            let _ = write!(out, "\",\"detail\":{detail}");
        }
        MarkId::ReadFaultFired { block } => {
            let _ = write!(out, "\"block\":{block}");
        }
        MarkId::NetFaultFired { kind } => {
            out.push_str("\"kind\":\"");
            escape_into(out, kind);
            out.push('"');
        }
        MarkId::TaskFaultFired => {}
        MarkId::StallFired { site, ms } => {
            out.push_str("\"site\":\"");
            escape_into(out, site);
            let _ = write!(out, "\",\"ms\":{ms}");
        }
        MarkId::SpillFaultFired { op } => {
            out.push_str("\"op\":\"");
            escape_into(out, op);
            out.push('"');
        }
        MarkId::SpecLaunched { block } => {
            let _ = write!(out, "\"block\":{block}");
        }
        MarkId::SpecResolved { block, outcome } => {
            let _ = write!(out, "\"block\":{block},\"outcome\":\"");
            escape_into(out, outcome);
            out.push('"');
        }
        MarkId::DfsRead { block, class } => {
            let _ = write!(out, "\"block\":{block},\"class\":\"{}\"", class.name());
        }
        MarkId::StageLanes { stage, lanes } => {
            let _ = write!(out, "\"stage\":\"{}\",\"lanes\":{lanes}", stage.name());
        }
        MarkId::TokenGroup { group, first, last } => {
            let _ = write!(
                out,
                "\"group\":{group},\"first\":\"{}\",\"last\":\"{}\"",
                first.name(),
                last.name()
            );
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Realm};
    use crate::jsonck::validate_json;
    use crate::stage::{PipelineKind, StageId};
    use std::time::Duration;

    fn sample_trace() -> Trace {
        let lane = LaneId {
            job: 0,
            node: 0,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage: StageId::Kernel,
                lane: 0,
            },
        };
        Trace {
            lanes: vec![(
                lane,
                vec![
                    Event {
                        at_ns: 1_500,
                        kind: EventKind::Begin {
                            span: SpanId::Chunk { seq: 0 },
                        },
                    },
                    Event {
                        at_ns: 4_000,
                        kind: EventKind::End {
                            span: SpanId::Chunk { seq: 0 },
                            wall_ns: 2_500,
                            modeled_ns: 3_000,
                            accounted: true,
                        },
                    },
                    Event {
                        at_ns: 4_200,
                        kind: EventKind::Count {
                            counter: CounterId::ShuffleSendBytes,
                            delta: 64,
                        },
                    },
                ],
            )],
        }
    }

    #[test]
    fn export_is_valid_json_with_stable_field_order() {
        let json = sample_trace().chrome_json();
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // The head field order is pinned; a reorder breaks golden files.
        assert!(json.contains(
            "{\"name\":\"chunk\",\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.500,\"args\":{\"seq\":0}}"
        ));
        assert!(json.contains("\"wall_ns\":2500,\"modeled_ns\":3000,\"accounted\":true"));
        assert!(json.contains(
            "{\"name\":\"shuffle.send.bytes\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":4.200,\"args\":{\"value\":64}}"
        ));
    }

    #[test]
    fn metadata_names_processes_and_threads() {
        let json = sample_trace().chrome_json();
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"node 0\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"map/kernel\"}}"
        ));
    }

    #[test]
    fn counters_are_cumulative_per_lane() {
        let lane = LaneId {
            job: 0,
            node: 1,
            realm: Realm::Net,
        };
        let mk = |at_ns, delta| Event {
            at_ns,
            kind: EventKind::Count {
                counter: CounterId::ShuffleSendMsgs,
                delta,
            },
        };
        let trace = Trace {
            lanes: vec![(lane, vec![mk(10, 1), mk(20, 1), mk(30, 3)])],
        };
        let json = trace.chrome_json();
        assert!(json.contains("\"args\":{\"value\":1}"));
        assert!(json.contains("\"args\":{\"value\":2}"));
        assert!(json.contains("\"args\":{\"value\":5}"));
    }

    #[test]
    fn service_jobs_get_disjoint_pid_blocks_and_named_processes() {
        let mut multi = sample_trace();
        let mut job_lane = multi.lanes[0].0;
        job_lane.job = 2;
        job_lane.node = 1;
        let events = multi.lanes[0].1.clone();
        multi.lanes.push((job_lane, events));
        let json = multi.chrome_json();
        validate_json(&json).unwrap();
        // Job 0 keeps pid == node (golden bit-compatibility)...
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"node 0\"}}"
        ));
        // ...while job 2 node 1 lands in its own pid block with a name
        // that says whose process it is.
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2001,\"tid\":0,\"args\":{\"name\":\"job 2 node 1\"}}"
        ));
        assert!(json.contains("\"ph\":\"B\",\"pid\":2001,\"tid\":0"));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let json = Trace::default().chrome_json();
        validate_json(&json).expect("empty export must be valid JSON");
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn marks_carry_their_payloads() {
        let lane = LaneId {
            job: 0,
            node: 0,
            realm: Realm::Chaos,
        };
        let trace = Trace {
            lanes: vec![(
                lane,
                vec![Event {
                    at_ns: 0,
                    kind: EventKind::Instant {
                        mark: MarkId::CrashFired {
                            site: "kernel",
                            after: 3,
                        },
                    },
                }],
            )],
        };
        let json = trace.chrome_json();
        validate_json(&json).unwrap();
        assert!(json
            .contains("\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"s\":\"t\",\"args\":{\"site\":\"kernel\",\"after\":3}"));
    }

    /// `Duration`-driven ts formatting: 1.5 µs must print as `1.500`.
    #[test]
    fn timestamps_are_microseconds_with_nanosecond_fraction() {
        let ns = Duration::from_nanos(1_500).as_nanos() as u64;
        let mut out = String::new();
        let mut first = true;
        event_head(&mut out, &mut first, "x", 'B', 0, 0, ns);
        assert!(out.ends_with("\"ts\":1.500"));
    }
}
