//! Metrics registry: the rollup view over a finished trace.
//!
//! Tables II/III-style aggregates derive from the same event stream the
//! Chrome exporter renders: per-node counters, per-stage chunk counts
//! (fused passages included, so fused and unfused graphs agree), and
//! token-wait occupancy per stage.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::event::{CounterId, EventKind, MarkId, Realm, SpanId};
use crate::stage::{PipelineKind, StageId};
use crate::tracer::Trace;

/// Per-node/per-stage/per-job aggregates rolled up from a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Counter totals keyed by `(node, counter)`.
    pub counters: BTreeMap<(u32, CounterId), u64>,
    /// Chunks that completed each stage (fused passages count), keyed by
    /// `(node, pipeline, stage)`.
    pub stage_chunks: BTreeMap<(u32, PipelineKind, StageId), u64>,
    /// Wall nanoseconds spent waiting on §III-D buffer tokens, keyed by
    /// `(node, pipeline, stage)` of the waiting stage.
    pub token_wait_ns: BTreeMap<(u32, PipelineKind, StageId), u64>,
}

impl MetricsSummary {
    /// Fold a finished trace into aggregates.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut m = MetricsSummary::default();
        for (lane, events) in &trace.lanes {
            let mut wait_begun: Vec<u64> = Vec::new();
            for ev in events {
                if let EventKind::Count { counter, delta } = ev.kind {
                    *m.counters.entry((lane.node, counter)).or_default() += delta;
                }
                // Sub-lanes of a widened stage (`lane > 0`) fold into the
                // same per-stage aggregate: metrics stay per-stage.
                let Realm::Pipeline { kind, stage, .. } = lane.realm else {
                    continue;
                };
                match ev.kind {
                    EventKind::End {
                        span: SpanId::Chunk { .. },
                        accounted: true,
                        ..
                    } => {
                        *m.stage_chunks.entry((lane.node, kind, stage)).or_default() += 1;
                    }
                    EventKind::Instant {
                        mark: MarkId::FusedPassage { fused, .. },
                    } => {
                        *m.stage_chunks.entry((lane.node, kind, fused)).or_default() += 1;
                    }
                    EventKind::Begin {
                        span: SpanId::TokenWait { .. },
                    } => wait_begun.push(ev.at_ns),
                    EventKind::End {
                        span: SpanId::TokenWait { .. },
                        ..
                    } => {
                        if let Some(t0) = wait_begun.pop() {
                            *m.token_wait_ns.entry((lane.node, kind, stage)).or_default() +=
                                ev.at_ns.saturating_sub(t0);
                        }
                    }
                    _ => {}
                }
            }
        }
        m
    }

    /// One node's total for `counter`.
    pub fn counter(&self, node: u32, counter: CounterId) -> u64 {
        self.counters.get(&(node, counter)).copied().unwrap_or(0)
    }

    /// Job-wide total for `counter`.
    pub fn counter_total(&self, counter: CounterId) -> u64 {
        self.counters
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Chunks that completed `stage` of `kind` on `node`.
    pub fn chunks(&self, node: u32, kind: PipelineKind, stage: StageId) -> u64 {
        self.stage_chunks
            .get(&(node, kind, stage))
            .copied()
            .unwrap_or(0)
    }

    /// Job-wide chunks that completed `stage` of `kind`.
    pub fn chunks_total(&self, kind: PipelineKind, stage: StageId) -> u64 {
        self.stage_chunks
            .iter()
            .filter(|((_, k, s), _)| *k == kind && *s == stage)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Job-wide wall time spent waiting on buffer tokens.
    pub fn token_wait_total(&self) -> Duration {
        Duration::from_nanos(self.token_wait_ns.values().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LaneId;
    use crate::tracer::Tracer;

    fn pipe_lane(node: u32, stage: StageId) -> LaneId {
        LaneId {
            job: 0,
            node,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage,
                lane: 0,
            },
        }
    }

    #[test]
    fn rollup_counts_chunks_counters_and_fused_passages() {
        let tracer = Tracer::new();
        let kernel = tracer.lane(pipe_lane(0, StageId::Kernel));
        for seq in 0..4u64 {
            kernel.begin(SpanId::Chunk { seq });
            kernel.instant(MarkId::FusedPassage {
                fused: StageId::Stage,
                seq,
            });
            kernel.end(
                SpanId::Chunk { seq },
                Duration::from_micros(10),
                Duration::from_micros(20),
            );
        }
        // Aborted chunk: must not count.
        kernel.begin(SpanId::Chunk { seq: 4 });
        kernel.end_unaccounted(SpanId::Chunk { seq: 4 });
        let storage = tracer.lane(LaneId {
            job: 0,
            node: 0,
            realm: Realm::Storage,
        });
        storage.count(CounterId::DfsReadBytes, 100);
        storage.count(CounterId::DfsReadBytes, 50);
        storage.count(CounterId::DfsReadLocal, 2);
        let m = tracer.finish().metrics();
        assert_eq!(m.chunks(0, PipelineKind::Map, StageId::Kernel), 4);
        assert_eq!(m.chunks(0, PipelineKind::Map, StageId::Stage), 4);
        assert_eq!(m.chunks(0, PipelineKind::Map, StageId::Retrieve), 0);
        assert_eq!(m.counter(0, CounterId::DfsReadBytes), 150);
        assert_eq!(m.counter_total(CounterId::DfsReadLocal), 2);
        assert_eq!(m.counter(1, CounterId::DfsReadBytes), 0);
    }

    #[test]
    fn token_wait_pairs_fold_into_occupancy() {
        let trace = Trace {
            lanes: vec![(
                pipe_lane(3, StageId::Input),
                vec![
                    crate::Event {
                        at_ns: 100,
                        kind: EventKind::Begin {
                            span: SpanId::TokenWait { group: 0, seq: 0 },
                        },
                    },
                    crate::Event {
                        at_ns: 350,
                        kind: EventKind::End {
                            span: SpanId::TokenWait { group: 0, seq: 0 },
                            wall_ns: 0,
                            modeled_ns: 0,
                            accounted: false,
                        },
                    },
                ],
            )],
        };
        let m = trace.metrics();
        assert_eq!(
            m.token_wait_ns.get(&(3, PipelineKind::Map, StageId::Input)),
            Some(&250)
        );
        assert_eq!(m.token_wait_total(), Duration::from_nanos(250));
    }
}
