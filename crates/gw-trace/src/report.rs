//! Stable renderers for [`PerfAnalysis`]: a paper-style plain-text
//! report (`to_report`, the Table II/III per-stage breakdown) and a
//! hand-written JSON form (`to_json`, schema `gw-perf-analysis-v1`).
//!
//! Both renderers are pure functions of the analysis with fixed section
//! and key order, so diffs between runs show performance changes, not
//! formatting noise. The JSON writer emits fixed-point numbers only
//! (never exponent notation) and is validated against the in-repo
//! RFC 8259 checker in tests — which deliberately rejects `+` exponents,
//! see `jsonck`.

use std::fmt::Write as _;

use crate::analysis::{PerfAnalysis, PipelinePerf};
use crate::stage::StageId;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Escape a string for a JSON literal (names here are ASCII already, but
/// stay correct for anything).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_num(out: &mut String, v: f64) {
    // Fixed-point keeps the output inside the strict validator's number
    // grammar (Rust's `{:.6}` never produces an exponent).
    let _ = write!(out, "{v:.6}");
}

impl PerfAnalysis {
    /// Paper-style plain-text report: per-node stage breakdown with the
    /// overlap matrix and efficiency score, critical-path attribution,
    /// straggler ranking and advisor output.
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== glasswing perf analysis ==");
        let _ = writeln!(out, "wall time: {:.3} ms", ms(self.critical_path.wall_ns));

        for node in &self.nodes {
            for p in &node.pipelines {
                let _ = writeln!(
                    out,
                    "\n-- node {}, {} pipeline --",
                    node.node,
                    p.kind.name()
                );
                let _ = writeln!(
                    out,
                    "{:<12} {:>7} {:>10} {:>26} {:>7} {:>10}",
                    "stage", "chunks", "busy(ms)", "service mean/min/max (ms)", "waits", "wait(ms)"
                );
                for s in &p.stages {
                    let name = if s.fused {
                        format!("{} (fused)", s.stage.name_in(p.kind))
                    } else {
                        s.stage.name_in(p.kind).to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{:<12} {:>7} {:>10.3} {:>26} {:>7} {:>10.3}",
                        name,
                        s.chunks,
                        ms(s.busy_ns),
                        format!(
                            "{:.3}/{:.3}/{:.3}",
                            ms(s.service.mean_ns()),
                            ms(s.service.min_ns),
                            ms(s.service.max_ns)
                        ),
                        s.token_waits,
                        ms(s.token_wait_ns),
                    );
                }
                let _ = writeln!(
                    out,
                    "busy union {:.3} ms, busy sum {:.3} ms, pipeline efficiency {:.2}x (union/sum {:.2})",
                    ms(p.busy_union_ns),
                    ms(p.busy_sum_ns),
                    p.efficiency(),
                    p.busy_union_over_sum(),
                );
                render_overlap(&mut out, p);
            }
        }

        let _ = writeln!(out, "\n-- critical path --");
        let cp = &self.critical_path;
        for (&(node, kind, stage), &ns) in &cp.attribution {
            let pct = if cp.wall_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / cp.wall_ns as f64
            };
            let _ = writeln!(
                out,
                "  node {node} {} {:<12} {:>10.3} ms ({pct:>5.1}%)",
                kind.name(),
                stage.name_in(kind),
                ms(ns),
            );
        }
        let _ = writeln!(out, "  token-idle {:>10.3} ms", ms(cp.token_idle_ns));
        let _ = writeln!(out, "  idle       {:>10.3} ms", ms(cp.idle_ns));
        if let Some((node, kind, stage)) = cp.gating() {
            let _ = writeln!(
                out,
                "  gating: {} on node {node} ({} pipeline)",
                stage.name_in(kind),
                kind.name()
            );
        }

        if self.stragglers.len() > 1 {
            let _ = writeln!(out, "\n-- stragglers (slowest first) --");
            for s in &self.stragglers {
                let _ = writeln!(
                    out,
                    "  node {:<4} done {:>10.3} ms  (+{:.3} ms after fastest, map done {:.3} ms)",
                    s.node,
                    ms(s.done_ns),
                    ms(s.skew_ns),
                    ms(s.map_done_ns),
                );
            }
        }

        let _ = writeln!(out, "\n-- advisor --");
        let adv = &self.advice;
        for (i, b) in [1usize, 2, 3].iter().enumerate() {
            let _ = writeln!(
                out,
                "  predicted makespan B={b}: {:>10.3} ms",
                ms(adv.buffering_makespan_ns[i])
            );
        }
        for (stage, x) in &adv.lane_scaling {
            let _ = writeln!(
                out,
                "  doubling {:<10} lanes predicted {x:.2}x",
                stage.name()
            );
        }
        for line in &adv.lines {
            let _ = writeln!(out, "  {line}");
        }

        let a = self.anomalies;
        if a != Default::default() {
            let _ = writeln!(
                out,
                "\n-- anomalies --\n  unclosed spans {}, unaccounted chunks {}, orphan ends {}",
                a.unclosed_spans, a.unaccounted_chunks, a.orphan_ends
            );
        }
        out
    }

    /// JSON rendering (schema `gw-perf-analysis-v1`); one object, fixed
    /// key order, fixed-point floats, valid under `validate_json`.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\"schema\":\"gw-perf-analysis-v1\"");

        o.push_str(",\"nodes\":[");
        for (ni, node) in self.nodes.iter().enumerate() {
            if ni > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"node\":{},\"pipelines\":[", node.node);
            for (pi, p) in node.pipelines.iter().enumerate() {
                if pi > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{{\"kind\":\"{}\",\"stages\":[", p.kind.name());
                for (si, s) in p.stages.iter().enumerate() {
                    if si > 0 {
                        o.push(',');
                    }
                    let _ = write!(
                        o,
                        "{{\"stage\":\"{}\",\"fused\":{},\"chunks\":{},\"busy_ns\":{},\
                         \"service\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}},\
                         \"token_waits\":{},\"token_wait_ns\":{}}}",
                        s.stage.name_in(p.kind),
                        s.fused,
                        s.chunks,
                        s.busy_ns,
                        s.service.count,
                        s.service.total_ns,
                        s.service.min_ns,
                        s.service.max_ns,
                        s.token_waits,
                        s.token_wait_ns,
                    );
                }
                let _ = write!(
                    o,
                    "],\"busy_union_ns\":{},\"busy_sum_ns\":{},\"span_ns\":{},\"efficiency\":",
                    p.busy_union_ns, p.busy_sum_ns, p.span_ns
                );
                push_num(&mut o, p.efficiency());
                o.push_str(",\"overlap_ns\":[");
                for (ri, row) in p.overlap.overlap_ns.iter().enumerate() {
                    if ri > 0 {
                        o.push(',');
                    }
                    o.push('[');
                    for (ci, v) in row.iter().enumerate() {
                        if ci > 0 {
                            o.push(',');
                        }
                        let _ = write!(o, "{v}");
                    }
                    o.push(']');
                }
                o.push_str("]}");
            }
            o.push_str("]}");
        }
        o.push(']');

        let cp = &self.critical_path;
        let _ = write!(o, ",\"critical_path\":{{\"wall_ns\":{}", cp.wall_ns);
        o.push_str(",\"attribution\":[");
        for (i, (&(node, kind, stage), &ns)) in cp.attribution.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"node\":{node},\"pipeline\":\"{}\",\"stage\":\"{}\",\"ns\":{ns}}}",
                kind.name(),
                stage.name_in(kind)
            );
        }
        let _ = write!(
            o,
            "],\"token_idle_ns\":{},\"idle_ns\":{}}}",
            cp.token_idle_ns, cp.idle_ns
        );

        o.push_str(",\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"node\":{},\"done_ns\":{},\"map_done_ns\":{},\"skew_ns\":{}}}",
                s.node, s.done_ns, s.map_done_ns, s.skew_ns
            );
        }
        o.push(']');

        let adv = &self.advice;
        o.push_str(",\"advice\":{\"bottleneck\":");
        match adv.bottleneck {
            Some(s) => {
                o.push('"');
                o.push_str(s.name());
                o.push('"');
            }
            None => o.push_str("null"),
        }
        let _ = write!(
            o,
            ",\"bottleneck_nodes\":[{},{}]",
            adv.bottleneck_nodes.0, adv.bottleneck_nodes.1
        );
        let _ = write!(
            o,
            ",\"buffering_makespan_ns\":[{},{},{}]",
            adv.buffering_makespan_ns[0],
            adv.buffering_makespan_ns[1],
            adv.buffering_makespan_ns[2]
        );
        o.push_str(",\"lane_scaling\":[");
        for (i, (stage, x)) in adv.lane_scaling.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"stage\":\"{}\",\"speedup\":", stage.name());
            push_num(&mut o, *x);
            o.push('}');
        }
        o.push_str("],\"lines\":[");
        for (i, line) in adv.lines.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('"');
            escape_json(line, &mut o);
            o.push('"');
        }
        o.push_str("]}");

        let a = self.anomalies;
        let _ = write!(
            o,
            ",\"anomalies\":{{\"unclosed_spans\":{},\"unaccounted_chunks\":{},\"orphan_ends\":{}}}}}",
            a.unclosed_spans, a.unaccounted_chunks, a.orphan_ends
        );
        o
    }
}

fn render_overlap(out: &mut String, p: &PipelinePerf) {
    let live: Vec<StageId> = p
        .overlap
        .stages
        .iter()
        .zip(&p.stages)
        .filter(|(_, s)| !s.fused)
        .map(|(id, _)| *id)
        .collect();
    if live.len() < 2 {
        return;
    }
    let _ = writeln!(out, "overlap (ms):");
    let _ = write!(out, "{:<12}", "");
    for s in &live {
        let _ = write!(out, " {:>10}", s.name_in(p.kind));
    }
    out.push('\n');
    for (i, si) in live.iter().enumerate() {
        let _ = write!(out, "{:<12}", si.name_in(p.kind));
        for (j, sj) in live.iter().enumerate() {
            if j < i {
                let _ = write!(out, " {:>10}", "");
            } else {
                let _ = write!(out, " {:>10.3}", ms(p.overlap.between(*si, *sj)));
            }
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::PerfAnalysis;
    use crate::event::{Event, EventKind, LaneId, Realm, SpanId};
    use crate::jsonck::validate_json;
    use crate::stage::{PipelineKind, StageId};
    use crate::tracer::Trace;

    fn sample() -> PerfAnalysis {
        let lane = |stage| LaneId {
            job: 0,
            node: 0,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage,
                lane: 0,
            },
        };
        let chunk = |at_ns, kind| Event { at_ns, kind };
        let pair = |t0: u64, t1: u64, seq: u64| {
            vec![
                chunk(
                    t0,
                    EventKind::Begin {
                        span: SpanId::Chunk { seq },
                    },
                ),
                chunk(
                    t1,
                    EventKind::End {
                        span: SpanId::Chunk { seq },
                        wall_ns: t1 - t0,
                        modeled_ns: t1 - t0,
                        accounted: true,
                    },
                ),
            ]
        };
        Trace {
            lanes: vec![
                (lane(StageId::Input), pair(0, 120, 0)),
                (lane(StageId::Kernel), pair(60, 260, 0)),
            ],
        }
        .analysis()
    }

    #[test]
    fn report_has_the_paper_style_sections() {
        let r = sample().to_report();
        for needle in [
            "glasswing perf analysis",
            "node 0, map pipeline",
            "pipeline efficiency",
            "critical path",
            "advisor",
            "input",
            "kernel",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }

    #[test]
    fn json_is_valid_under_the_strict_checker() {
        let j = sample().to_json();
        validate_json(&j).unwrap_or_else(|e| panic!("invalid analysis JSON: {e}\n{j}"));
        assert!(j.starts_with("{\"schema\":\"gw-perf-analysis-v1\""));
        assert!(j.contains("\"efficiency\":"));
    }

    #[test]
    fn empty_analysis_renders() {
        let a = Trace::default().analysis();
        let r = a.to_report();
        assert!(r.contains("glasswing perf analysis"));
        validate_json(&a.to_json()).expect("empty analysis JSON invalid");
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        let mut a = sample();
        a.advice.lines.push("a \"quoted\"\\\u{1} line".to_string());
        validate_json(&a.to_json()).expect("escaped JSON invalid");
    }
}
