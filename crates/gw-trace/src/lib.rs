//! # gw-trace — the deterministic observability plane
//!
//! The paper's evaluation (Tables II/III, Figs. 2–5) is a set of claims
//! about *where time goes*: stage overlap, PCIe staging cost, shuffle
//! occupancy. Aggregate timers can prove totals but not shapes; this
//! crate records the shapes as a typed event stream and derives both the
//! totals ([`MetricsSummary`], and `StageTimers` over in `gw-pipeline`)
//! and a visual timeline ([`Trace::chrome_json`]) from that one stream.
//!
//! Three design rules, all load-bearing for the tests that pin this
//! plane:
//!
//! 1. **Lanes, not a global log.** Events are recorded per
//!    [`LaneId`] (job × node × realm, one lane per pipeline stage
//!    thread; one-shot runs use job 0).
//!    Within a lane, emission order is program order; *across* lanes no
//!    order is defined. That is exactly the strongest contract a
//!    multithreaded pipeline can keep deterministic, and it makes
//!    recording lock-cheap (one uncontended mutex per lane).
//! 2. **Identity and timing are separable.** Every event carries logical
//!    identity (chunk sequence numbers, typed marks, counter deltas) and
//!    wall/modeled timing. [`Trace::logical_events`] strips the timing;
//!    for a fixed `(seed, JobConfig)` the logical stream is
//!    byte-reproducible across runs and across buffering levels.
//! 3. **Views, not bookkeeping.** Consumers (`StageTimers`, the metrics
//!    registry, the Chrome exporter) fold over emitted events; none of
//!    them keeps its own instrumentation state inside pipeline code.

mod analysis;
mod chrome;
mod event;
mod interference;
mod jsonck;
mod metrics;
mod report;
mod stage;
mod tracer;

pub use analysis::{
    Advice, Anomalies, CriticalPath, NodePerf, OverlapMatrix, PerfAnalysis, PipelinePerf,
    ServiceStats, StagePerf, Straggler,
};
pub use event::{
    CounterId, Event, EventKind, LaneId, LogicalKind, MarkId, ReadClass, Realm, SpanId,
};
pub use interference::{Interference, JobActivity, JobOverlap};
pub use jsonck::validate_json;
pub use metrics::MetricsSummary;
pub use stage::{PipelineKind, StageId};
pub use tracer::{EventSink, Lane, Trace, Tracer};
