//! The typed event vocabulary of the observability plane.
//!
//! Every event the engine emits is one of four shapes — span begin, span
//! end, instant mark, counter bump — addressed to one **lane** (a
//! node × realm pair: one lane per pipeline stage thread, plus per-node
//! storage/net/chaos lanes). The *identity* parts of an event (span ids,
//! marks, counter deltas) are functions of the seed and the job
//! configuration alone; the *timing* parts (`at_ns`, wall/modeled
//! durations) are not. [`LogicalKind`] is the projection that strips the
//! timing parts, and it is what the determinism tests compare.

use crate::stage::{PipelineKind, StageId};

/// One recorded event: nanoseconds since the owning tracer's epoch plus
/// the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Wall-clock timestamp, nanoseconds since the tracer's epoch.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened on this lane.
    Begin {
        /// Which span.
        span: SpanId,
    },
    /// A span closed on this lane. `accounted: false` marks a structural
    /// span (an aborted chunk, a token wait, a finish hook that reported
    /// no explicit timing): views over the stream must not fold its
    /// durations into per-stage totals.
    End {
        /// Which span.
        span: SpanId,
        /// Measured host time attributed to the span.
        wall_ns: u64,
        /// Model-transformed time attributed to the span.
        modeled_ns: u64,
        /// Whether the durations count toward stage totals.
        accounted: bool,
    },
    /// A point event on this lane.
    Instant {
        /// Which mark.
        mark: MarkId,
    },
    /// A monotonic counter bump on this lane.
    Count {
        /// Which counter.
        counter: CounterId,
        /// Increment (counters only ever grow).
        delta: u64,
    },
}

/// Span identity. Spans on one lane obey stack discipline: a `Begin` is
/// always closed by the next `End` carrying the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanId {
    /// One chunk's pass through the lane's stage (the chunk sequence
    /// number is the logical timestamp).
    Chunk {
        /// Chunk sequence number.
        seq: u64,
    },
    /// Waiting to acquire a §III-D buffer token.
    TokenWait {
        /// Interlock group index within the pipeline.
        group: u32,
        /// Chunk sequence number the acquire is on behalf of.
        seq: u64,
    },
    /// A stage's `finish` hook (e.g. the reduce output's final write).
    Finish {
        /// Last chunk sequence number the stage saw.
        seq: u64,
    },
}

/// Instant-mark identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkId {
    /// A chunk passed a stage that was fused out of the graph at build
    /// time (unified-memory pass-through). Zero cost by construction;
    /// timer views fold it in as an empty sample so fused and unfused
    /// graphs report the same chunk counts and modeled totals.
    FusedPassage {
        /// The fused stage slot the chunk notionally passed.
        fused: StageId,
        /// Chunk sequence number.
        seq: u64,
    },
    /// A chaos-injected node crash fired.
    CrashFired {
        /// Crash-site name (e.g. "kernel").
        site: &'static str,
        /// The passage count the site was armed at.
        after: u64,
    },
    /// A chaos fault was armed when the plan was installed.
    FaultArmed {
        /// Fault family ("crash", "read", "net-drop", "net-delay", ...).
        kind: &'static str,
        /// Family-specific detail (site index, block, nth message, ...).
        detail: u64,
    },
    /// A chaos storage read fault fired (one replica refused a read).
    ReadFaultFired {
        /// Block index the fault hit.
        block: u64,
    },
    /// A chaos network fault fired (message dropped or delayed).
    NetFaultFired {
        /// Fault kind name ("drop" / "delay").
        kind: &'static str,
    },
    /// A chaos task-level fault fired (recovered by the §III-E budget).
    TaskFaultFired,
    /// A chaos gray-failure transient stall fired: the stage passage was
    /// held for `ms` milliseconds, then continued normally.
    StallFired {
        /// Stalled site name (e.g. "kernel").
        site: &'static str,
        /// Injected stall length, milliseconds.
        ms: u64,
    },
    /// A chaos spill-file I/O fault fired (the intermediate store poisons
    /// and the job fails with a typed I/O error instead of panicking).
    SpillFaultFired {
        /// Faulted operation name ("write" / "read").
        op: &'static str,
    },
    /// The speculation controller launched a duplicate attempt for a
    /// straggling split.
    SpecLaunched {
        /// Input block of the speculated split.
        block: u64,
    },
    /// A speculation race resolved: the duplicate attempt won, was
    /// cancelled (primary finished first), or failed (its node died).
    SpecResolved {
        /// Input block of the speculated split.
        block: u64,
        /// Outcome name ("won" / "cancelled" / "failed").
        outcome: &'static str,
    },
    /// A DFS split read completed.
    DfsRead {
        /// Block index read.
        block: u64,
        /// Where the read was served from.
        class: ReadClass,
    },
    /// A stage was widened to multiple worker lanes. Emitted once per
    /// pipeline instantiation on the stage's lane-0 sub-lane before any
    /// chunk flows, and **only** when `lanes > 1`, so single-lane runs
    /// keep their exact pre-multi-lane logical streams. Post-hoc analysis
    /// reads it to seed the N-lane schedule recurrence with the lane
    /// counts the run actually used.
    StageLanes {
        /// The widened stage slot.
        stage: StageId,
        /// Number of worker lanes the stage ran with.
        lanes: u32,
    },
    /// §III-D interlock topology: emitted once per pipeline
    /// instantiation on the acquiring stage's lane, before any chunk
    /// flows, so post-hoc analysis can replay the buffer-token schedule
    /// without guessing which stages bound each circulating-token group.
    TokenGroup {
        /// Interlock group index within the pipeline.
        group: u32,
        /// Stage that acquires the group's token.
        first: StageId,
        /// Stage that releases it.
        last: StageId,
    },
}

/// Where a DFS read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// Served by the reader's own replica.
    Local,
    /// Served by a remote replica (no replica on the reader).
    Remote,
    /// Served remotely because a closer replica was dead or faulted.
    RemoteFault,
}

impl ReadClass {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReadClass::Local => "local",
            ReadClass::Remote => "remote",
            ReadClass::RemoteFault => "remote-fault",
        }
    }
}

/// Counter identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterId {
    /// DFS split reads served locally.
    DfsReadLocal,
    /// DFS split reads served by a remote replica.
    DfsReadRemote,
    /// DFS split reads served remotely because of a dead/faulted replica.
    DfsReadRemoteFault,
    /// Bytes read from the DFS.
    DfsReadBytes,
    /// Shuffle messages sent by this node.
    ShuffleSendMsgs,
    /// Shuffle wire bytes sent by this node.
    ShuffleSendBytes,
    /// Shuffle messages received by this node.
    ShuffleRecvMsgs,
    /// Shuffle runs retransmitted to a recovering peer.
    ShuffleRetransmit,
    /// `RunPool` builder acquisitions served from the recycle pool.
    RunPoolHit,
    /// `RunPool` builder acquisitions that had to allocate fresh arenas.
    RunPoolMiss,
    /// Runs consumed across supervised map-side `merge_runs` calls
    /// (fan-in; one bump per merge, delta = runs merged).
    MergeFanIn,
    /// Stage passages throttled by an armed gray-failure slowdown (one
    /// bump per throttled passage; the passage count is a function of the
    /// seed and job configuration, unlike the injected wall time).
    GraySlowdowns,
    /// Map kernel launches skipped because the chunk's split was already
    /// completed by another attempt (speculation superseded the work).
    SpecSuperseded,
}

impl CounterId {
    /// Stable dotted name for exports.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::DfsReadLocal => "dfs.read.local",
            CounterId::DfsReadRemote => "dfs.read.remote",
            CounterId::DfsReadRemoteFault => "dfs.read.remote-fault",
            CounterId::DfsReadBytes => "dfs.read.bytes",
            CounterId::ShuffleSendMsgs => "shuffle.send.msgs",
            CounterId::ShuffleSendBytes => "shuffle.send.bytes",
            CounterId::ShuffleRecvMsgs => "shuffle.recv.msgs",
            CounterId::ShuffleRetransmit => "shuffle.retransmit",
            CounterId::RunPoolHit => "runpool.reuse.hit",
            CounterId::RunPoolMiss => "runpool.reuse.miss",
            CounterId::MergeFanIn => "merge.fanin",
            CounterId::GraySlowdowns => "chaos.gray.slowdowns",
            CounterId::SpecSuperseded => "spec.superseded",
        }
    }
}

/// One event lane: a job × node × realm triple. The `Ord` impl defines
/// the canonical lane order of a [`crate::Trace`] (job-major, then
/// node-major, then realm in declaration order: pipeline stages first,
/// then storage/net/chaos/job). One-shot runs use `job: 0` everywhere,
/// so their canonical order is exactly the pre-service node × realm
/// order; a resident service stamps each submission's events with its
/// own job id so two jobs sharing a node never share a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId {
    /// Service job index (0 for one-shot runs).
    pub job: u32,
    /// Cluster node index.
    pub node: u32,
    /// Which subsystem of the node the lane belongs to.
    pub realm: Realm,
}

/// The subsystem a lane belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Realm {
    /// One pipeline stage worker lane (one thread). Single-lane stages
    /// use `lane: 0`; a stage widened to N lanes owns N sub-lanes, each
    /// with exactly one writer thread. `lane` sorts after `stage`, so
    /// sub-lanes of a stage stay adjacent in canonical trace order and
    /// all-lane-0 traces keep their pre-multi-lane order.
    Pipeline {
        /// Map or reduce pipeline.
        kind: PipelineKind,
        /// Stage slot.
        stage: StageId,
        /// Worker lane within the stage (0 for single-lane stages).
        lane: u32,
    },
    /// DFS reads.
    Storage,
    /// Shuffle fabric endpoint, egress side (send calls).
    Net,
    /// Shuffle fabric endpoint, ingress side. A separate lane because
    /// receives happen on a different thread than sends; one shared lane
    /// would make per-lane emission order racy.
    NetRx,
    /// Chaos plane (faults armed and fired).
    Chaos,
    /// Job-level events.
    Job,
    /// Split coordinator decisions affecting this node (speculation
    /// launches and race resolutions). Declared after [`Realm::Job`] so
    /// the canonical lane order of existing traces is unchanged.
    Coordinator,
}

impl Realm {
    /// Display name of the lane within its node.
    pub fn lane_name(self) -> String {
        match self {
            Realm::Pipeline { kind, stage, lane } => {
                if lane == 0 {
                    format!("{}/{}", kind.name(), stage.name_in(kind))
                } else {
                    format!("{}/{}#{}", kind.name(), stage.name_in(kind), lane)
                }
            }
            Realm::Storage => "storage".to_string(),
            Realm::Net => "net-tx".to_string(),
            Realm::NetRx => "net-rx".to_string(),
            Realm::Chaos => "chaos".to_string(),
            Realm::Job => "job".to_string(),
            Realm::Coordinator => "coordinator".to_string(),
        }
    }
}

/// The seed-deterministic projection of an [`EventKind`]: identity parts
/// only, wall timestamps and measured durations stripped. For a fixed
/// `(seed, JobConfig)` the per-lane sequence of logical events is
/// byte-reproducible across runs and across buffering levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalKind {
    /// Span opened.
    Begin {
        /// Which span.
        span: SpanId,
    },
    /// Span closed.
    End {
        /// Which span.
        span: SpanId,
        /// Whether the span counted toward stage totals.
        accounted: bool,
    },
    /// Point event.
    Instant {
        /// Which mark.
        mark: MarkId,
    },
    /// Counter bump.
    Count {
        /// Which counter.
        counter: CounterId,
        /// Increment.
        delta: u64,
    },
}

impl EventKind {
    /// Project away the nondeterministic timing parts.
    pub fn logical(self) -> LogicalKind {
        match self {
            EventKind::Begin { span } => LogicalKind::Begin { span },
            EventKind::End {
                span, accounted, ..
            } => LogicalKind::End { span, accounted },
            EventKind::Instant { mark } => LogicalKind::Instant { mark },
            EventKind::Count { counter, delta } => LogicalKind::Count { counter, delta },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_projection_strips_durations_but_keeps_identity() {
        let a = EventKind::End {
            span: SpanId::Chunk { seq: 3 },
            wall_ns: 1_000,
            modeled_ns: 2_000,
            accounted: true,
        };
        let b = EventKind::End {
            span: SpanId::Chunk { seq: 3 },
            wall_ns: 999_999,
            modeled_ns: 1,
            accounted: true,
        };
        assert_eq!(a.logical(), b.logical());
        let c = EventKind::End {
            span: SpanId::Chunk { seq: 4 },
            wall_ns: 1_000,
            modeled_ns: 2_000,
            accounted: true,
        };
        assert_ne!(a.logical(), c.logical());
    }

    #[test]
    fn lane_order_is_node_major_then_pipeline_first() {
        let map_input = LaneId {
            job: 0,
            node: 0,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage: StageId::Input,
                lane: 0,
            },
        };
        let reduce_output = LaneId {
            job: 0,
            node: 0,
            realm: Realm::Pipeline {
                kind: PipelineKind::Reduce,
                stage: StageId::Partition,
                lane: 0,
            },
        };
        let storage = LaneId {
            job: 0,
            node: 0,
            realm: Realm::Storage,
        };
        let other_node = LaneId {
            job: 0,
            node: 1,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage: StageId::Input,
                lane: 0,
            },
        };
        assert!(map_input < reduce_output);
        assert!(reduce_output < storage);
        assert!(storage < other_node);
    }

    #[test]
    fn sub_lanes_of_a_stage_sort_adjacent_and_after_lane_zero() {
        let pipe = |stage, lane| LaneId {
            job: 0,
            node: 0,
            realm: Realm::Pipeline {
                kind: PipelineKind::Map,
                stage,
                lane,
            },
        };
        // input#0 < input#1 < kernel#0: lanes nest inside the stage order.
        assert!(pipe(StageId::Input, 0) < pipe(StageId::Input, 1));
        assert!(pipe(StageId::Input, 1) < pipe(StageId::Kernel, 0));
        assert_eq!(
            pipe(StageId::Input, 1).realm.lane_name(),
            "map/input#1".to_string()
        );
        assert_eq!(
            pipe(StageId::Input, 0).realm.lane_name(),
            "map/input".to_string()
        );
    }
}
