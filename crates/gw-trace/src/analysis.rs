//! Post-hoc performance analysis over a finished [`Trace`].
//!
//! The paper's evaluation argues from *where time goes*: stage overlap
//! (§III-D), the dominant stage per configuration (Tables II/III), and
//! what would change under more buffering or more lanes (Figs. 4/5).
//! [`PerfAnalysis`] folds one finished trace into exactly those answers:
//!
//! 1. **Per-node stage timelines** — busy intervals reconstructed from
//!    chunk/finish span begin/end pairs, an interval-union overlap matrix
//!    (for every stage pair, how long both were simultaneously busy) and
//!    the pipeline-efficiency score `Σ stage busy ÷ busy union` (1.0 =
//!    fully serialized, higher = the paper's overlap win).
//! 2. **Critical path** — a sweep over all chunk and token-wait spans
//!    that attributes each slice of end-to-end wall time to the stage
//!    (and node) gating it, plus a straggler report ranking nodes by
//!    completion skew.
//! 3. **Bottleneck advisor** — a bounded-buffer schedule replay over the
//!    measured per-chunk service times that predicts the makespan at
//!    B ∈ {1,2,3} and the speedup from doubling each stage's lanes, and
//!    names the stage with the largest predicted doubling gain.
//!
//! **Determinism contract.** Timing magnitudes (`*_ns` totals, the
//! efficiency score, predicted makespans) are measurements and vary run
//! to run. Everything *structural* — which stages ran, chunk counts,
//! token-wait counts, anomaly counts — is a function of the logical
//! event stream alone, and [`PerfAnalysis::determinism_digest`] renders
//! exactly that projection (the analysis-level analogue of
//! [`Trace::logical_events`]). `tests/analysis_determinism.rs` pins it
//! across repeated runs and buffering levels.
//!
//! The analysis is a pure consumer of [`Trace`]: it emits nothing and
//! never changes what the engine records, so the Chrome export and its
//! golden files are byte-identical with or without it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::event::{EventKind, MarkId, Realm, SpanId};
use crate::stage::{PipelineKind, StageId};
use crate::tracer::Trace;

/// The §III-D buffering levels the advisor predicts across.
const ADVISED_B: [usize; 3] = [1, 2, 3];

/// Complete post-hoc analysis of one job trace.
#[derive(Debug, Clone, Default)]
pub struct PerfAnalysis {
    /// Per-node stage timelines and overlap accounting, sorted by node.
    pub nodes: Vec<NodePerf>,
    /// Job-level critical-path attribution of end-to-end wall time.
    pub critical_path: CriticalPath,
    /// Nodes ranked by completion time, slowest first.
    pub stragglers: Vec<Straggler>,
    /// Bottleneck attribution and what-if predictions.
    pub advice: Advice,
    /// Malformed-stream tolerance counters (truncated/aborted spans).
    pub anomalies: Anomalies,
}

/// One node's per-pipeline breakdowns.
#[derive(Debug, Clone)]
pub struct NodePerf {
    /// Cluster node index.
    pub node: u32,
    /// Map then reduce (when present), each with its stage breakdown.
    pub pipelines: Vec<PipelinePerf>,
}

/// One pipeline instantiation's stage timeline and overlap accounting.
#[derive(Debug, Clone)]
pub struct PipelinePerf {
    /// Map or reduce.
    pub kind: PipelineKind,
    /// Stages that appeared in the trace, in pipeline order. Fused
    /// stages appear with zero busy time but real chunk counts.
    pub stages: Vec<StagePerf>,
    /// Pairwise simultaneous-busy matrix over `stages`.
    pub overlap: OverlapMatrix,
    /// Length of the union of all stages' busy intervals.
    pub busy_union_ns: u64,
    /// Sum of per-stage busy time (what a no-overlap run would take).
    pub busy_sum_ns: u64,
    /// First begin → last end across this pipeline's lanes.
    pub span_ns: u64,
}

impl PipelinePerf {
    /// The paper's overlap win: `Σ stage busy ÷ busy union`. A fully
    /// serialized pipeline scores exactly 1.0 (the lower bound); any
    /// overlap pushes it above.
    pub fn efficiency(&self) -> f64 {
        if self.busy_union_ns == 0 {
            1.0
        } else {
            self.busy_sum_ns as f64 / self.busy_union_ns as f64
        }
    }

    /// The same score as the ISSUE states it (busy-union ÷ busy-sum):
    /// 1.0 = serialized, smaller = more overlap.
    pub fn busy_union_over_sum(&self) -> f64 {
        if self.busy_sum_ns == 0 {
            1.0
        } else {
            self.busy_union_ns as f64 / self.busy_sum_ns as f64
        }
    }

    /// This pipeline's entry for `stage`, if it appeared.
    pub fn stage(&self, stage: StageId) -> Option<&StagePerf> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

/// One stage's timeline summary within a pipeline.
#[derive(Debug, Clone)]
pub struct StagePerf {
    /// Stage slot.
    pub stage: StageId,
    /// Whether the stage was fused out (pass-through): chunk counts come
    /// from fused-passage marks, busy time is zero by construction.
    pub fused: bool,
    /// Chunks that completed this stage (accounted ends + fused passages).
    pub chunks: u64,
    /// Union length of the stage's busy (chunk + finish span) intervals.
    pub busy_ns: u64,
    /// Service-time distribution over accounted chunk spans.
    pub service: ServiceStats,
    /// Token-wait spans on this stage's lane (the executor brackets every
    /// §III-D acquire, blocking or not, so this equals the acquire count).
    pub token_waits: u64,
    /// Wall time the stage spent inside token-wait spans.
    pub token_wait_ns: u64,
}

/// Distribution summary of accounted per-chunk service times.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Accounted samples.
    pub count: u64,
    /// Sum of sample wall durations.
    pub total_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

impl ServiceStats {
    fn push(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean service time (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Pairwise simultaneous-busy accounting over one pipeline's stages.
#[derive(Debug, Clone, Default)]
pub struct OverlapMatrix {
    /// Row/column order (matches `PipelinePerf::stages`).
    pub stages: Vec<StageId>,
    /// Deterministic marginals: chunks completed per stage, aligned with
    /// `stages` (the "overlap-matrix chunk counts" of the determinism
    /// contract — the `*_ns` entries below are measurements).
    pub chunk_counts: Vec<u64>,
    /// `overlap_ns[i][j]`: wall time stages `i` and `j` were busy at the
    /// same moment (symmetric; diagonal = the stage's own busy time).
    pub overlap_ns: Vec<Vec<u64>>,
}

impl OverlapMatrix {
    /// Simultaneous-busy time of a stage pair.
    pub fn between(&self, a: StageId, b: StageId) -> u64 {
        let find = |s| self.stages.iter().position(|x| *x == s);
        match (find(a), find(b)) {
            (Some(i), Some(j)) => self.overlap_ns[i][j],
            _ => 0,
        }
    }
}

/// Attribution of end-to-end wall time to the gating stage per node.
///
/// The sweep walks every pipeline lane's busy and token-wait intervals.
/// While at least one stage is busy, the slice is attributed to the busy
/// stage with the largest total busy time (the saturated candidate;
/// deterministic tie-break in canonical `(node, kind, stage)` order).
/// Slices where nothing is busy but some stage is waiting on a §III-D
/// token count as `token_idle_ns`; the rest (fill/drain, barriers,
/// phase gaps) is `idle_ns`.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// End-to-end wall window (first event → last event, all lanes).
    pub wall_ns: u64,
    /// Gated wall time per `(node, pipeline, stage)`.
    pub attribution: BTreeMap<(u32, PipelineKind, StageId), u64>,
    /// Wall time where no stage was busy but a token wait was open.
    pub token_idle_ns: u64,
    /// Wall time with no pipeline activity at all.
    pub idle_ns: u64,
}

impl CriticalPath {
    /// The single largest contributor (ties resolve to canonical order).
    pub fn gating(&self) -> Option<(u32, PipelineKind, StageId)> {
        self.attribution
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(k, _)| *k)
    }
}

/// One node's completion entry in the straggler ranking.
#[derive(Debug, Clone, Copy)]
pub struct Straggler {
    /// Cluster node index.
    pub node: u32,
    /// Last map-pipeline event on this node (ns since trace epoch).
    pub map_done_ns: u64,
    /// Last pipeline event on this node (map or reduce).
    pub done_ns: u64,
    /// How long after the fastest node this one finished.
    pub skew_ns: u64,
}

/// Bottleneck attribution and §III-D what-if predictions, computed from
/// the map pipelines' measured per-chunk service times replayed through
/// a bounded-buffer schedule model.
#[derive(Debug, Clone, Default)]
pub struct Advice {
    /// Per node: the map stage with the largest predicted gain from
    /// doubling its lanes.
    pub per_node_bottleneck: Vec<(u32, StageId)>,
    /// The job-level named bottleneck (largest predicted doubling gain on
    /// the job makespan), when any map pipeline carried chunks.
    pub bottleneck: Option<StageId>,
    /// How many nodes agree with the named bottleneck, out of how many.
    pub bottleneck_nodes: (usize, usize),
    /// Predicted job makespan (max across nodes) at B = 1, 2, 3.
    pub buffering_makespan_ns: [u64; 3],
    /// Predicted job speedup from doubling each live stage's lanes, at
    /// the default B=2, stages in pipeline order.
    pub lane_scaling: Vec<(StageId, f64)>,
    /// Rendered recommendations.
    pub lines: Vec<String>,
}

impl Advice {
    /// Predicted relative gain of raising the buffering level `from→to`
    /// (e.g. `buffering_gain(2, 3)` for "B=2→3").
    pub fn buffering_gain(&self, from: usize, to: usize) -> f64 {
        let m = |b: usize| self.buffering_makespan_ns[b - 1] as f64;
        if !(1..=3).contains(&from) || !(1..=3).contains(&to) || m(from) == 0.0 {
            return 0.0;
        }
        (m(from) - m(to)) / m(from)
    }

    /// Predicted speedup from doubling `stage`'s lanes.
    pub fn doubling_speedup(&self, stage: StageId) -> f64 {
        self.lane_scaling
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, x)| *x)
            .unwrap_or(1.0)
    }
}

/// Counts of stream shapes the analysis tolerates instead of trusting:
/// a chaos-killed node truncates its lanes mid-span, and aborted chunks
/// close with `accounted: false` and no usable duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Anomalies {
    /// Span begins never closed (truncated lanes). Their intervals are
    /// excluded from busy time but counted here.
    pub unclosed_spans: u64,
    /// Chunk spans closed unaccounted. Includes genuine aborts (injected
    /// crashes, stage errors) *and* each source's routine end-of-input
    /// probe chunk, so a clean run reports one per pipeline
    /// instantiation — the count is deterministic either way.
    pub unaccounted_chunks: u64,
    /// Span ends with no matching begin (front-truncated lanes).
    pub orphan_ends: u64,
}

/// Everything folded out of one pipeline lane.
#[derive(Debug, Default)]
struct LaneFold {
    busy: Vec<(u64, u64)>,
    waits: Vec<(u64, u64)>,
    wait_count: u64,
    /// Accounted chunk wall durations by sequence number.
    chunk_wall: BTreeMap<u64, u64>,
    chunks: u64,
    service: ServiceStats,
    /// Fused-passage chunk counts observed on this (fronting) lane.
    fused_chunks: BTreeMap<StageId, u64>,
    /// Token-group topology marks seen on this lane.
    groups: Vec<(u32, StageId, StageId)>,
    /// Worker lanes the stage ran with: the max of the `StageLanes` mark
    /// and the highest sub-lane index observed (0 = no pipeline events;
    /// treated as 1 by the schedule replay).
    lanes: usize,
    last_at: u64,
}

impl PerfAnalysis {
    /// Fold a finished trace into the full analysis. Never panics on
    /// truncated or unaccounted streams; see [`Anomalies`].
    pub fn from_trace(trace: &Trace) -> Self {
        let mut anomalies = Anomalies::default();
        let mut folds: BTreeMap<(u32, PipelineKind, StageId), LaneFold> = BTreeMap::new();
        let mut window: Option<(u64, u64)> = None;

        for (lane, events) in &trace.lanes {
            for ev in events {
                window = Some(match window {
                    None => (ev.at_ns, ev.at_ns),
                    Some((lo, hi)) => (lo.min(ev.at_ns), hi.max(ev.at_ns)),
                });
            }
            // Sub-lanes of a widened stage fold into one per-stage entry;
            // span pairing below stays per trace lane (each sub-lane is a
            // single writer), so multi-lane begin/end streams never
            // interleave inside one pairing scan.
            let Realm::Pipeline {
                kind,
                stage,
                lane: sub_lane,
            } = lane.realm
            else {
                continue;
            };
            let fold = folds.entry((lane.node, kind, stage)).or_default();
            fold.lanes = fold.lanes.max(sub_lane as usize + 1);
            let mut open: Vec<(SpanId, u64)> = Vec::new();
            for ev in events {
                fold.last_at = fold.last_at.max(ev.at_ns);
                match ev.kind {
                    EventKind::Begin { span } => open.push((span, ev.at_ns)),
                    EventKind::End {
                        span,
                        wall_ns,
                        accounted,
                        ..
                    } => {
                        // Tolerant pairing: spans obey stack discipline in
                        // well-formed streams, but a truncated lane may
                        // leave strays — match the innermost same-id begin
                        // and count anything unmatched.
                        let Some(pos) = open.iter().rposition(|(s, _)| *s == span) else {
                            anomalies.orphan_ends += 1;
                            continue;
                        };
                        let (_, t0) = open.remove(pos);
                        let iv = (t0, ev.at_ns.max(t0));
                        match span {
                            SpanId::Chunk { seq } => {
                                fold.busy.push(iv);
                                if accounted {
                                    fold.chunks += 1;
                                    fold.chunk_wall.insert(seq, wall_ns);
                                    fold.service.push(wall_ns);
                                } else {
                                    anomalies.unaccounted_chunks += 1;
                                }
                            }
                            SpanId::Finish { .. } => fold.busy.push(iv),
                            SpanId::TokenWait { .. } => {
                                fold.waits.push(iv);
                                fold.wait_count += 1;
                            }
                        }
                    }
                    EventKind::Instant {
                        mark: MarkId::FusedPassage { fused, .. },
                    } => {
                        *fold.fused_chunks.entry(fused).or_default() += 1;
                    }
                    EventKind::Instant {
                        mark: MarkId::TokenGroup { group, first, last },
                    } => fold.groups.push((group, first, last)),
                    EventKind::Instant {
                        mark: MarkId::StageLanes { lanes, .. },
                    } => fold.lanes = fold.lanes.max(lanes as usize),
                    _ => {}
                }
            }
            anomalies.unclosed_spans += open.len() as u64;
        }

        // Re-home fused-passage counts from the fronting lane onto the
        // fused stage's own (empty) entry, so fused stages report real
        // chunk counts with zero busy time.
        let fused_moves: Vec<((u32, PipelineKind), StageId, u64)> = folds
            .iter()
            .flat_map(|((node, kind, _), fold)| {
                let key = (*node, *kind);
                fold.fused_chunks
                    .iter()
                    .map(move |(stage, n)| (key, *stage, *n))
            })
            .collect();
        for ((node, kind), stage, n) in fused_moves {
            folds.entry((node, kind, stage)).or_default().chunks += n;
        }

        let nodes = build_node_perfs(&mut folds);
        let critical_path = build_critical_path(&folds, window);
        let stragglers = build_stragglers(&folds);
        let advice = build_advice(&folds, &stragglers);

        PerfAnalysis {
            nodes,
            critical_path,
            stragglers,
            advice,
            anomalies,
        }
    }

    /// One node's analysis, if it appears in the trace.
    pub fn node(&self, node: u32) -> Option<&NodePerf> {
        self.nodes.iter().find(|n| n.node == node)
    }

    /// A node's pipeline breakdown.
    pub fn pipeline(&self, node: u32, kind: PipelineKind) -> Option<&PipelinePerf> {
        self.node(node)?.pipelines.iter().find(|p| p.kind == kind)
    }

    /// The deterministic projection of the analysis: everything that is
    /// a function of the logical event stream alone — overlap-matrix
    /// chunk counts, per-stage token-wait counts, the critical path's
    /// attributable stage sets, anomaly counts and the straggler ranking
    /// — rendered as a stable string. For a fixed `(seed, JobConfig)`
    /// this is byte-identical across repeated runs (and across buffering
    /// levels), exactly like [`Trace::logical_events`]. Timing-valued
    /// fields are deliberately absent. The straggler ranking is included
    /// because completion *order* is structural wherever the
    /// configuration forces it (notably single-node jobs, the shape the
    /// determinism proptest mirrors).
    pub fn determinism_digest(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            for p in &node.pipelines {
                let _ = write!(out, "node {} {}:", node.node, p.kind.name());
                for (s, chunks) in p.overlap.stages.iter().zip(&p.overlap.chunk_counts) {
                    let sp = p.stage(*s).expect("matrix stage present");
                    let _ = write!(
                        out,
                        " {}(chunks={chunks},waits={}{})",
                        s.name_in(p.kind),
                        sp.token_waits,
                        if sp.fused { ",fused" } else { "" },
                    );
                }
                // The critical path can only ever attribute time to
                // stages that had busy intervals; that set is logical.
                let gates: Vec<&str> = p
                    .stages
                    .iter()
                    .filter(|s| !s.busy_is_empty())
                    .map(|s| s.stage.name_in(p.kind))
                    .collect();
                let _ = writeln!(out, " | cp-gates [{}]", gates.join(","));
            }
        }
        let ranked: Vec<String> = self.stragglers.iter().map(|s| s.node.to_string()).collect();
        let _ = writeln!(out, "straggler-ranking [{}]", ranked.join(","));
        let a = self.anomalies;
        let _ = writeln!(
            out,
            "anomalies unclosed={} unaccounted={} orphans={}",
            a.unclosed_spans, a.unaccounted_chunks, a.orphan_ends
        );
        out
    }
}

impl StagePerf {
    /// Whether the stage recorded any busy interval (logical: it did iff
    /// the stage closed at least one chunk/finish span).
    fn busy_is_empty(&self) -> bool {
        self.busy_ns == 0 && self.service.count == 0 && self.chunks == 0
    }
}

impl Trace {
    /// Run the full post-hoc analysis over this trace.
    pub fn analysis(&self) -> PerfAnalysis {
        PerfAnalysis::from_trace(self)
    }
}

/// Coalesce intervals into a sorted, disjoint union.
fn merge_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some((_, pe)) if s <= *pe => *pe = (*pe).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn total_len(v: &[(u64, u64)]) -> u64 {
    v.iter().map(|(s, e)| e - s).sum()
}

/// Intersection length of two disjoint sorted interval lists.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut acc) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            acc += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

fn build_node_perfs(folds: &mut BTreeMap<(u32, PipelineKind, StageId), LaneFold>) -> Vec<NodePerf> {
    // Normalize every fold's intervals once.
    for fold in folds.values_mut() {
        fold.busy = merge_intervals(std::mem::take(&mut fold.busy));
        fold.waits = merge_intervals(std::mem::take(&mut fold.waits));
    }

    let mut by_pipe: BTreeMap<(u32, PipelineKind), Vec<StageId>> = BTreeMap::new();
    for (node, kind, stage) in folds.keys() {
        by_pipe.entry((*node, *kind)).or_default().push(*stage);
    }

    let mut nodes: Vec<NodePerf> = Vec::new();
    for ((node, kind), stages) in by_pipe {
        let perfs: Vec<StagePerf> = stages
            .iter()
            .map(|stage| {
                let fold = &folds[&(node, kind, *stage)];
                StagePerf {
                    stage: *stage,
                    fused: fold.busy.is_empty() && fold.service.count == 0 && fold.chunks > 0,
                    chunks: fold.chunks,
                    busy_ns: total_len(&fold.busy),
                    service: fold.service,
                    token_waits: fold.wait_count,
                    token_wait_ns: total_len(&fold.waits),
                }
            })
            .collect();

        let n = stages.len();
        let mut overlap_ns = vec![vec![0u64; n]; n];
        for (i, si) in stages.iter().enumerate() {
            for (j, sj) in stages.iter().enumerate().skip(i) {
                let len = intersect_len(
                    &folds[&(node, kind, *si)].busy,
                    &folds[&(node, kind, *sj)].busy,
                );
                overlap_ns[i][j] = len;
                overlap_ns[j][i] = len;
            }
        }
        let all: Vec<(u64, u64)> = stages
            .iter()
            .flat_map(|s| folds[&(node, kind, *s)].busy.iter().copied())
            .collect();
        let union = merge_intervals(all);
        let busy_union_ns = total_len(&union);
        let busy_sum_ns = perfs.iter().map(|p| p.busy_ns).sum();
        let span_ns = match (union.first(), union.last()) {
            (Some((s, _)), Some((_, e))) => e - s,
            _ => 0,
        };
        let pipe = PipelinePerf {
            kind,
            overlap: OverlapMatrix {
                stages: stages.clone(),
                chunk_counts: perfs.iter().map(|p| p.chunks).collect(),
                overlap_ns,
            },
            stages: perfs,
            busy_union_ns,
            busy_sum_ns,
            span_ns,
        };
        match nodes.last_mut() {
            Some(np) if np.node == node => np.pipelines.push(pipe),
            _ => nodes.push(NodePerf {
                node,
                pipelines: vec![pipe],
            }),
        }
    }
    nodes
}

fn build_critical_path(
    folds: &BTreeMap<(u32, PipelineKind, StageId), LaneFold>,
    window: Option<(u64, u64)>,
) -> CriticalPath {
    let Some((lo, hi)) = window else {
        return CriticalPath::default();
    };
    // Sweep events: (t, close?, class, lane index). Closes sort before
    // opens at equal t so zero-length touches don't count.
    let keys: Vec<(u32, PipelineKind, StageId)> = folds.keys().copied().collect();
    let busy_total: Vec<u64> = keys.iter().map(|k| total_len(&folds[k].busy)).collect();
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Edge {
        Close,
        Open,
    }
    let mut edges: Vec<(u64, Edge, bool, usize)> = Vec::new();
    for (idx, key) in keys.iter().enumerate() {
        for &(s, e) in &folds[key].busy {
            edges.push((s, Edge::Open, true, idx));
            edges.push((e, Edge::Close, true, idx));
        }
        for &(s, e) in &folds[key].waits {
            edges.push((s, Edge::Open, false, idx));
            edges.push((e, Edge::Close, false, idx));
        }
    }
    edges.sort_unstable_by_key(|&(t, edge, ..)| (t, edge));

    let mut cp = CriticalPath {
        wall_ns: hi - lo,
        ..CriticalPath::default()
    };
    let mut busy_open = vec![0u32; keys.len()];
    let mut waiting_open = 0u64;
    let mut busy_active = 0u64;
    let mut cursor = lo;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        if t > cursor {
            let len = t - cursor;
            if busy_active > 0 {
                // Gate = busiest active lane; deterministic tie-break by
                // canonical key order (keys is sorted).
                let gate = busy_open
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| **n > 0)
                    .max_by_key(|(idx, _)| (busy_total[*idx], usize::MAX - *idx))
                    .map(|(idx, _)| idx);
                if let Some(idx) = gate {
                    *cp.attribution.entry(keys[idx]).or_default() += len;
                }
            } else if waiting_open > 0 {
                cp.token_idle_ns += len;
            } else {
                cp.idle_ns += len;
            }
            cursor = t;
        }
        while i < edges.len() && edges[i].0 == t {
            let (_, edge, is_busy, idx) = edges[i];
            match (edge, is_busy) {
                (Edge::Open, true) => {
                    busy_open[idx] += 1;
                    busy_active += 1;
                }
                (Edge::Close, true) => {
                    busy_open[idx] -= 1;
                    busy_active -= 1;
                }
                (Edge::Open, false) => waiting_open += 1,
                (Edge::Close, false) => waiting_open -= 1,
            }
            i += 1;
        }
    }
    if hi > cursor {
        cp.idle_ns += hi - cursor;
    }
    cp
}

fn build_stragglers(folds: &BTreeMap<(u32, PipelineKind, StageId), LaneFold>) -> Vec<Straggler> {
    let mut done: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for ((node, kind, _), fold) in folds {
        let entry = done.entry(*node).or_default();
        if *kind == PipelineKind::Map {
            entry.0 = entry.0.max(fold.last_at);
        }
        entry.1 = entry.1.max(fold.last_at);
    }
    let fastest = done.values().map(|(_, d)| *d).min().unwrap_or(0);
    let mut ranked: Vec<Straggler> = done
        .into_iter()
        .map(|(node, (map_done_ns, done_ns))| Straggler {
            node,
            map_done_ns,
            done_ns,
            skew_ns: done_ns - fastest,
        })
        .collect();
    ranked.sort_by(|a, b| b.done_ns.cmp(&a.done_ns).then(a.node.cmp(&b.node)));
    ranked
}

/// Bounded-buffer pipeline schedule replay (the advisor's prediction
/// model): chunk `c` starts stage `s` after finishing stage `s-1`, after
/// its own lane frees up, and — per §III-D token group — after chunk
/// `c-B` exits the group. Durations are the measured per-chunk wall
/// times. `lanes[s]` models the stage's worker-lane count: chunks are
/// dispatched round-robin (chunk `c` runs on lane `c % N`), so the
/// stage-serial constraint is `end[c - N][s]`, not `end[c - 1][s]` — an
/// N-lane stage services N chunks concurrently at unchanged per-chunk
/// cost, which is exactly what the executor's deterministic round-robin
/// front does.
fn simulate(durs: &[Vec<u64>; 5], groups: &[(usize, usize)], b: usize, lanes: [usize; 5]) -> u64 {
    let n = durs[0].len();
    if n == 0 {
        return 0;
    }
    let mut end = vec![[0u64; 5]; n];
    for c in 0..n {
        let mut prev = 0u64;
        for s in 0..5 {
            let mut start = prev;
            let l = lanes[s].max(1);
            if c >= l {
                start = start.max(end[c - l][s]);
            }
            for &(first, last) in groups {
                if first == s && c >= b {
                    start = start.max(end[c - b][last]);
                }
            }
            let e = start + durs[s][c];
            end[c][s] = e;
            prev = e;
        }
    }
    end[n - 1][4]
}

fn build_advice(
    folds: &BTreeMap<(u32, PipelineKind, StageId), LaneFold>,
    stragglers: &[Straggler],
) -> Advice {
    // Assemble per-node map-pipeline chunk duration tables.
    struct NodeModel {
        node: u32,
        durs: [Vec<u64>; 5],
        groups: Vec<(usize, usize)>,
        busy: [u64; 5],
        /// Lane counts the run actually used (from `StageLanes` marks and
        /// observed sub-lane indices; 1 where nothing says otherwise).
        lanes: [usize; 5],
    }
    let mut models: Vec<NodeModel> = Vec::new();
    let map_nodes: BTreeSet<u32> = folds
        .keys()
        .filter(|(_, kind, _)| *kind == PipelineKind::Map)
        .map(|(node, ..)| *node)
        .collect();
    for node in map_nodes {
        let mut seqs: BTreeSet<u64> = BTreeSet::new();
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for stage in StageId::ALL {
            if let Some(fold) = folds.get(&(node, PipelineKind::Map, stage)) {
                seqs.extend(fold.chunk_wall.keys().copied());
                for &(_, first, last) in &fold.groups {
                    groups.push((first.index(), last.index()));
                }
            }
        }
        if groups.is_empty() {
            // Pre-topology traces: the map pipeline's standard groups.
            groups = vec![
                (StageId::Input.index(), StageId::Kernel.index()),
                (StageId::Kernel.index(), StageId::Partition.index()),
            ];
        }
        let seqs: Vec<u64> = seqs.into_iter().collect();
        let mut durs: [Vec<u64>; 5] = Default::default();
        let mut busy = [0u64; 5];
        let mut lanes = [1usize; 5];
        for stage in StageId::ALL {
            let fold = folds.get(&(node, PipelineKind::Map, stage));
            durs[stage.index()] = seqs
                .iter()
                .map(|seq| {
                    fold.and_then(|f| f.chunk_wall.get(seq).copied())
                        .unwrap_or(0)
                })
                .collect();
            busy[stage.index()] = fold.map(|f| total_len(&f.busy)).unwrap_or(0);
            lanes[stage.index()] = fold.map(|f| f.lanes.max(1)).unwrap_or(1);
        }
        if !seqs.is_empty() {
            models.push(NodeModel {
                node,
                durs,
                groups,
                busy,
                lanes,
            });
        }
    }

    let mut advice = Advice::default();
    if models.is_empty() {
        return advice;
    }

    // Predicted job makespan = slowest node's predicted makespan. Each
    // node replays at the lane counts its run actually used.
    let job_makespan = |b: usize, lanes_of: &dyn Fn(&NodeModel) -> [usize; 5]| -> u64 {
        models
            .iter()
            .map(|m| simulate(&m.durs, &m.groups, b, lanes_of(m)))
            .max()
            .unwrap_or(0)
    };
    let base_lanes = |m: &NodeModel| m.lanes;
    for (i, b) in ADVISED_B.iter().enumerate() {
        advice.buffering_makespan_ns[i] = job_makespan(*b, &base_lanes);
    }

    // Doubling a stage's lanes: replay the same per-chunk service times
    // through the recurrence with the stage's lane count doubled (N
    // chunks in service concurrently, per-chunk cost unchanged) — the
    // same model the multi-lane executor implements, so the prediction
    // is directly falsifiable by a real lane_plan run.
    let base = job_makespan(2, &base_lanes).max(1);
    let live: Vec<StageId> = StageId::ALL
        .into_iter()
        .filter(|s| models.iter().any(|m| m.busy[s.index()] > 0))
        .collect();
    for stage in &live {
        let doubled = |m: &NodeModel| {
            let mut lanes = m.lanes;
            lanes[stage.index()] *= 2;
            lanes
        };
        let faster = job_makespan(2, &doubled).max(1);
        advice
            .lane_scaling
            .push((*stage, base as f64 / faster as f64));
    }
    let pick = |scaling: &[(StageId, f64)], busy: &dyn Fn(StageId) -> u64| -> Option<StageId> {
        scaling
            .iter()
            .max_by(|(sa, a), (sb, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(busy(*sa).cmp(&busy(*sb)))
                    .then(sb.cmp(sa))
            })
            .map(|(s, _)| *s)
    };
    let total_busy = |s: StageId| -> u64 { models.iter().map(|m| m.busy[s.index()]).sum::<u64>() };
    advice.bottleneck = pick(&advice.lane_scaling, &total_busy);

    for m in &models {
        let mut scaling: Vec<(StageId, f64)> = Vec::new();
        let base = simulate(&m.durs, &m.groups, 2, m.lanes).max(1);
        for stage in &live {
            let mut lanes = m.lanes;
            lanes[stage.index()] *= 2;
            let faster = simulate(&m.durs, &m.groups, 2, lanes).max(1);
            scaling.push((*stage, base as f64 / faster as f64));
        }
        let node_busy = |s: StageId| -> u64 { m.busy[s.index()] };
        if let Some(stage) = pick(&scaling, &node_busy) {
            advice.per_node_bottleneck.push((m.node, stage));
        }
    }
    let agreeing = advice
        .per_node_bottleneck
        .iter()
        .filter(|(_, s)| Some(*s) == advice.bottleneck)
        .count();
    advice.bottleneck_nodes = (agreeing, models.len());

    if let Some(b) = advice.bottleneck {
        advice.lines.push(format!(
            "{} is the bottleneck on {}/{} nodes; doubling its lanes predicted {:.2}x",
            b.name(),
            advice.bottleneck_nodes.0,
            advice.bottleneck_nodes.1,
            advice.doubling_speedup(b),
        ));
    }
    advice.lines.push(format!(
        "B=1->2 predicted {:.1}% gain; B=2->3 predicted {:.1}% gain",
        100.0 * advice.buffering_gain(1, 2),
        100.0 * advice.buffering_gain(2, 3),
    ));
    if stragglers.len() > 1 {
        let worst = &stragglers[0];
        if worst.skew_ns > 0 {
            advice.lines.push(format!(
                "node {} finished {:.3} ms after the fastest node",
                worst.node,
                worst.skew_ns as f64 / 1e6,
            ));
        }
    }
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, LaneId};
    use crate::tracer::Tracer;
    use std::time::Duration;

    fn lane(node: u32, kind: PipelineKind, stage: StageId) -> LaneId {
        LaneId {
            job: 0,
            node,
            realm: Realm::Pipeline {
                kind,
                stage,
                lane: 0,
            },
        }
    }

    fn ev(at_ns: u64, kind: EventKind) -> Event {
        Event { at_ns, kind }
    }

    fn begin(at: u64, seq: u64) -> Event {
        ev(
            at,
            EventKind::Begin {
                span: SpanId::Chunk { seq },
            },
        )
    }

    fn end(at: u64, seq: u64, wall_ns: u64) -> Event {
        ev(
            at,
            EventKind::End {
                span: SpanId::Chunk { seq },
                wall_ns,
                modeled_ns: wall_ns,
                accounted: true,
            },
        )
    }

    /// Two stages, 50% overlapped: input busy [0,100), kernel [50,150).
    fn overlapped_trace() -> Trace {
        Trace {
            lanes: vec![
                (
                    lane(0, PipelineKind::Map, StageId::Input),
                    vec![begin(0, 0), end(100, 0, 100)],
                ),
                (
                    lane(0, PipelineKind::Map, StageId::Kernel),
                    vec![begin(50, 0), end(150, 0, 100)],
                ),
            ],
        }
    }

    #[test]
    fn overlap_matrix_and_efficiency() {
        let a = overlapped_trace().analysis();
        let p = a.pipeline(0, PipelineKind::Map).unwrap();
        assert_eq!(p.busy_sum_ns, 200);
        assert_eq!(p.busy_union_ns, 150);
        assert_eq!(p.overlap.between(StageId::Input, StageId::Kernel), 50);
        assert_eq!(p.overlap.between(StageId::Input, StageId::Input), 100);
        assert!((p.efficiency() - 200.0 / 150.0).abs() < 1e-9);
        assert!((p.busy_union_over_sum() - 0.75).abs() < 1e-9);
        assert_eq!(p.overlap.chunk_counts, vec![1, 1]);
    }

    #[test]
    fn serialized_pipeline_scores_exactly_one() {
        let trace = Trace {
            lanes: vec![
                (
                    lane(0, PipelineKind::Map, StageId::Input),
                    vec![begin(0, 0), end(100, 0, 100)],
                ),
                (
                    lane(0, PipelineKind::Map, StageId::Kernel),
                    vec![begin(100, 0), end(250, 0, 150)],
                ),
            ],
        };
        let a = trace.analysis();
        let p = a.pipeline(0, PipelineKind::Map).unwrap();
        assert!((p.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_attributes_the_saturated_stage_and_idle() {
        // input [0,100), kernel [50,150); gap [150,200) with a token wait
        // open on input; tail [200,220) fully idle (a stray mark).
        let mut trace = overlapped_trace();
        trace.lanes[0].1.extend([
            ev(
                150,
                EventKind::Begin {
                    span: SpanId::TokenWait { group: 0, seq: 1 },
                },
            ),
            ev(
                200,
                EventKind::End {
                    span: SpanId::TokenWait { group: 0, seq: 1 },
                    wall_ns: 0,
                    modeled_ns: 0,
                    accounted: false,
                },
            ),
            ev(
                220,
                EventKind::Instant {
                    mark: MarkId::TaskFaultFired,
                },
            ),
        ]);
        let a = trace.analysis();
        let cp = &a.critical_path;
        assert_eq!(cp.wall_ns, 220);
        // Both stages have equal busy totals (100); the tie breaks to the
        // canonical-order first key (input) during [50,100).
        let input = cp.attribution[&(0, PipelineKind::Map, StageId::Input)];
        let kernel = cp.attribution[&(0, PipelineKind::Map, StageId::Kernel)];
        assert_eq!(input + kernel, 150);
        assert_eq!(cp.token_idle_ns, 50);
        assert_eq!(cp.idle_ns, 20);
        assert_eq!(cp.gating().unwrap().0, 0);
    }

    #[test]
    fn truncated_trace_is_tolerated_and_counted() {
        // A chaos-killed node: run a real tracer, then truncate the lane
        // mid-span the way a dying node leaves it.
        let tracer = Tracer::new();
        let l = tracer.lane(lane(1, PipelineKind::Map, StageId::Kernel));
        l.begin(SpanId::Chunk { seq: 0 });
        l.end(
            SpanId::Chunk { seq: 0 },
            Duration::from_micros(5),
            Duration::from_micros(5),
        );
        l.begin(SpanId::Chunk { seq: 1 });
        l.end_unaccounted(SpanId::Chunk { seq: 1 }); // aborted by the crash
        l.begin(SpanId::Chunk { seq: 2 }); // never closed: lane truncated
        let mut trace = tracer.finish();
        // Also simulate front-truncation: an end with no begin.
        trace.lanes[0].1.push(ev(
            999_999,
            EventKind::End {
                span: SpanId::Chunk { seq: 7 },
                wall_ns: 1,
                modeled_ns: 1,
                accounted: true,
            },
        ));
        let a = trace.analysis(); // must not panic
        assert_eq!(
            a.anomalies,
            Anomalies {
                unclosed_spans: 1,
                unaccounted_chunks: 1,
                orphan_ends: 1,
            }
        );
        // The accounted chunk still counts; the unclosed one does not.
        let p = a.pipeline(1, PipelineKind::Map).unwrap();
        assert_eq!(p.stage(StageId::Kernel).unwrap().chunks, 1);
    }

    #[test]
    fn fused_stages_report_chunks_with_zero_busy_time() {
        let trace = Trace {
            lanes: vec![(
                lane(0, PipelineKind::Map, StageId::Kernel),
                vec![
                    begin(0, 0),
                    ev(
                        5,
                        EventKind::Instant {
                            mark: MarkId::FusedPassage {
                                fused: StageId::Stage,
                                seq: 0,
                            },
                        },
                    ),
                    end(10, 0, 10),
                ],
            )],
        };
        let a = trace.analysis();
        let p = a.pipeline(0, PipelineKind::Map).unwrap();
        let fused = p.stage(StageId::Stage).unwrap();
        assert!(fused.fused);
        assert_eq!(fused.chunks, 1);
        assert_eq!(fused.busy_ns, 0);
        assert_eq!(p.stage(StageId::Kernel).unwrap().chunks, 1);
    }

    #[test]
    fn stragglers_rank_slowest_first() {
        let trace = Trace {
            lanes: vec![
                (
                    lane(0, PipelineKind::Map, StageId::Input),
                    vec![begin(0, 0), end(100, 0, 100)],
                ),
                (
                    lane(1, PipelineKind::Map, StageId::Input),
                    vec![begin(0, 0), end(300, 0, 300)],
                ),
            ],
        };
        let a = trace.analysis();
        assert_eq!(a.stragglers.len(), 2);
        assert_eq!(a.stragglers[0].node, 1);
        assert_eq!(a.stragglers[0].skew_ns, 200);
        assert_eq!(a.stragglers[1].skew_ns, 0);
    }

    #[test]
    fn advisor_names_the_dominant_stage() {
        // Kernel 10x slower than everything else: doubling kernel lanes
        // must be the best predicted lever.
        let mut input = Vec::new();
        let mut kernel = Vec::new();
        let mut part = Vec::new();
        let mut t = 0u64;
        for seq in 0..8u64 {
            input.push(begin(t, seq));
            input.push(end(t + 10, seq, 10));
            kernel.push(begin(t + 10, seq));
            kernel.push(end(t + 110, seq, 100));
            part.push(begin(t + 110, seq));
            part.push(end(t + 120, seq, 10));
            t += 120;
        }
        let trace = Trace {
            lanes: vec![
                (lane(0, PipelineKind::Map, StageId::Input), input),
                (lane(0, PipelineKind::Map, StageId::Kernel), kernel),
                (lane(0, PipelineKind::Map, StageId::Partition), part),
            ],
        };
        let a = trace.analysis();
        assert_eq!(a.advice.bottleneck, Some(StageId::Kernel));
        assert_eq!(a.advice.bottleneck_nodes, (1, 1));
        let kernel_x = a.advice.doubling_speedup(StageId::Kernel);
        let input_x = a.advice.doubling_speedup(StageId::Input);
        assert!(kernel_x > input_x, "{kernel_x} vs {input_x}");
        // Deeper buffering cannot beat halving the dominant stage here.
        let m = a.advice.buffering_makespan_ns;
        assert!(m[0] >= m[1] && m[1] >= m[2]);
        assert!(a.advice.buffering_gain(2, 3) < 0.10);
        assert!(!a.advice.lines.is_empty());
    }

    #[test]
    fn schedule_replay_respects_token_groups() {
        // One stage pair, duration 10 each, 4 chunks, one group over both
        // stages. B=1 serializes chunks end-to-end; B=2 overlaps them.
        let durs: [Vec<u64>; 5] = [vec![10; 4], vec![0; 4], vec![10; 4], vec![0; 4], vec![0; 4]];
        let groups = [(0usize, 2usize)];
        let b1 = simulate(&durs, &groups, 1, [1usize; 5]);
        let b2 = simulate(&durs, &groups, 2, [1usize; 5]);
        assert_eq!(b1, 80); // 4 chunks x (10+10), fully serialized
        assert_eq!(b2, 50); // steady-state pipelining: 10*(4+1)
        assert!(simulate(&durs, &groups, 3, [1usize; 5]) <= b2);
    }

    #[test]
    fn empty_trace_analyzes_to_empty() {
        let a = Trace::default().analysis();
        assert!(a.nodes.is_empty());
        assert_eq!(a.critical_path.wall_ns, 0);
        assert!(a.stragglers.is_empty());
        assert_eq!(a.advice.bottleneck, None);
        assert_eq!(a.anomalies, Anomalies::default());
        assert!(!a.determinism_digest().is_empty());
    }

    #[test]
    fn digest_is_timing_free() {
        // Same logical stream, wildly different timings: identical digest.
        let shifted = |scale: u64| {
            let trace = Trace {
                lanes: vec![
                    (
                        lane(0, PipelineKind::Map, StageId::Input),
                        vec![begin(0, 0), end(100 * scale, 0, 100 * scale)],
                    ),
                    (
                        lane(0, PipelineKind::Map, StageId::Kernel),
                        vec![begin(scale, 0), end(150 * scale, 0, 7 * scale)],
                    ),
                ],
            };
            trace.analysis().determinism_digest()
        };
        assert_eq!(shifted(1), shifted(997));
    }
}
