//! GPMR-model baseline engine.
//!
//! Models the execution structure of GPMR (Stuart & Owens), the CUDA
//! cluster MapReduce the paper compares against on GPUs:
//!
//! * **GPU-only** — kernels always run on a discrete-device profile.
//! * **No I/O/compute overlap** — "GPMR first reads all data, then starts
//!   its computation pipeline; its total time is the sum of computation
//!   and I/O" (the property behind paper Fig. 3(e), where Glasswing's
//!   pipelined total ≈ max(I/O, compute) beats GPMR's I/O + compute by
//!   ≈1.5×).
//! * **In-core intermediate data** — "it is limited to processing data
//!   sets where intermediate data fits in host memory": the engine fails
//!   with [`GpmrError::IntermediateOverflow`] when a configurable memory
//!   budget is exceeded, rather than spilling.
//! * Reads from the **local file system** with full replication, matching
//!   the paper's GPMR experimental setup.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gw_core::collect::{for_each_record, BufferPoolCollector, Collector};
use gw_core::{Emit, EngineError, GwApp};
use gw_device::{Device, DeviceProfile, KernelFn, NdRange, WorkItemCtx};
use gw_storage::split::{FileStore, FileStoreExt, RecordBlockBuilder};
use gw_storage::{seqfile::SeqReader, NodeId};

/// GPMR job configuration.
#[derive(Debug, Clone)]
pub struct GpmrConfig {
    /// Input path.
    pub input: String,
    /// Output directory.
    pub output: String,
    /// GPU device profile (GPMR has no CPU backend).
    pub device: DeviceProfile,
    /// Real host threads backing the device pool.
    pub device_threads: usize,
    /// Map kernel work items.
    pub map_work_items: usize,
    /// In-core intermediate data budget in bytes (host memory); jobs whose
    /// intermediate data exceed it fail.
    pub intermediate_budget: usize,
    /// Output block size.
    pub output_block_size: usize,
}

impl GpmrConfig {
    /// Defaults for a GTX 480 node.
    pub fn new(input: impl Into<String>, output: impl Into<String>) -> Self {
        GpmrConfig {
            input: input.into(),
            output: output.into(),
            device: DeviceProfile::gtx480(),
            device_threads: 2,
            map_work_items: 64,
            intermediate_budget: 1 << 30,
            output_block_size: 8 << 20,
        }
    }
}

/// GPMR failure modes.
#[derive(Debug)]
pub enum GpmrError {
    /// Intermediate data exceeded the in-core budget (GPMR cannot spill).
    IntermediateOverflow {
        /// Bytes the job produced.
        produced: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Underlying engine error.
    Engine(EngineError),
}

impl std::fmt::Display for GpmrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpmrError::IntermediateOverflow { produced, budget } => write!(
                f,
                "intermediate data ({produced} bytes) exceeds GPMR's in-core budget ({budget} bytes)"
            ),
            GpmrError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GpmrError {}

impl From<EngineError> for GpmrError {
    fn from(e: EngineError) -> Self {
        GpmrError::Engine(e)
    }
}
impl From<gw_storage::StorageError> for GpmrError {
    fn from(e: gw_storage::StorageError) -> Self {
        GpmrError::Engine(EngineError::Storage(e))
    }
}

/// Phase breakdown of a GPMR job. Phases are strictly serial:
/// `elapsed ≈ io_read + map_compute + exchange + reduce_compute + io_write`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpmrReport {
    /// Time reading all input up front (wall).
    pub io_read: Duration,
    /// Modeled input read time (storage model).
    pub io_read_modeled: Duration,
    /// Map kernel time (wall).
    pub map_compute: Duration,
    /// Map kernel time transformed by the device model.
    pub map_compute_modeled: Duration,
    /// In-memory exchange + sort time.
    pub exchange: Duration,
    /// Reduce kernel time (wall).
    pub reduce_compute: Duration,
    /// Reduce kernel modeled time.
    pub reduce_compute_modeled: Duration,
    /// Output write time.
    pub io_write: Duration,
    /// Total wall time.
    pub elapsed: Duration,
    /// Peak intermediate bytes held in core.
    pub intermediate_bytes: usize,
    /// Records processed.
    pub records_in: usize,
}

impl GpmrReport {
    /// The modeled total — I/O plus compute, no overlap.
    pub fn modeled_total(&self) -> Duration {
        self.io_read_modeled
            + self.map_compute_modeled
            + self.exchange
            + self.reduce_compute_modeled
            + self.io_write
    }
}

/// The GPMR-model cluster.
pub struct GpmrCluster {
    store: Arc<dyn FileStore>,
}

impl GpmrCluster {
    /// Create over a (local-FS-style) store.
    pub fn new(store: Arc<dyn FileStore>) -> Self {
        GpmrCluster { store }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.store.cluster_size()
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn FileStore> {
        &self.store
    }

    /// Execute a job. Every phase is a global barrier: read-all, map-all,
    /// exchange-all, reduce-all, write-all.
    pub fn run(&self, app: Arc<dyn GwApp>, cfg: &GpmrConfig) -> Result<GpmrReport, GpmrError> {
        let nodes = self.nodes();
        let job_start = Instant::now();
        let mut report = GpmrReport::default();

        // ---------------- Phase 1: read ALL input ----------------
        let t0 = Instant::now();
        let splits = self.store.splits(&cfg.input)?;
        // Static striping over nodes (GPMR's layout is fully replicated).
        let mut node_blocks: Vec<Vec<Arc<[u8]>>> = vec![Vec::new(); nodes as usize];
        let mut modeled_read = Duration::ZERO;
        for (i, split) in splits.iter().enumerate() {
            let node = NodeId((i % nodes as usize) as u32);
            let (block, sample) = self.store.read_split(split, node)?;
            modeled_read += sample.modeled;
            node_blocks[node.index()].push(block);
        }
        report.io_read = t0.elapsed();
        // Nodes read in parallel: modeled read divides over nodes.
        report.io_read_modeled = modeled_read / nodes;
        report.records_in = splits.iter().map(|s| s.records).sum();

        // ---------------- Phase 2: map kernels (all nodes) ----------------
        let t1 = Instant::now();
        let intermediate_bytes = AtomicUsize::new(0);
        let mut max_kernel_wall = Duration::ZERO;
        let mut max_kernel_modeled = Duration::ZERO;
        // (key, value) pairs partitioned by owning node.
        let exchanged: Mutex<Vec<gw_storage::KvVec>> = Mutex::new(vec![Vec::new(); nodes as usize]);
        let kernel_times: Mutex<Vec<(Duration, Duration)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (n, blocks) in node_blocks.iter().enumerate() {
                let app = Arc::clone(&app);
                let exchanged = &exchanged;
                let kernel_times = &kernel_times;
                let intermediate_bytes = &intermediate_bytes;
                scope.spawn(move || {
                    let device = Device::open_with_threads(cfg.device.clone(), cfg.device_threads);
                    let mut wall = Duration::ZERO;
                    let mut modeled = Duration::ZERO;
                    let collector = BufferPoolCollector::new(64 << 20, 8);
                    for block in blocks {
                        let mut records = Vec::new();
                        let mut reader = SeqReader::open_raw(block);
                        while let Some((k, v)) = reader.next().expect("corrupt input") {
                            records.push((k, v));
                        }
                        let n_records = records.len();
                        if n_records == 0 {
                            continue;
                        }
                        let records = &records;
                        let app = &app;
                        let emit_target: &dyn Collector = &collector;
                        let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                            let emit = Emit::new(emit_target);
                            let (lo, hi) = ctx.my_items(n_records);
                            for (k, v) in &records[lo..hi] {
                                app.map(k, v, &emit);
                            }
                        });
                        let items = cfg.map_work_items.min(n_records);
                        let stats = device.launch(
                            NdRange::new(items, items.min(64)).expect("valid range"),
                            &kernel,
                        );
                        wall += stats.wall;
                        modeled += stats.modeled;
                    }
                    intermediate_bytes.fetch_add(collector.bytes(), Ordering::Relaxed);
                    // Partition into per-node buckets (in-core exchange).
                    let mut buckets: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
                        vec![Vec::new(); nodes as usize];
                    for_each_record(&collector, &mut |k, v| {
                        let p = app.partition(k, nodes);
                        buckets[p as usize].push((k.to_vec(), v.to_vec()));
                    });
                    let mut ex = exchanged.lock();
                    for (i, b) in buckets.into_iter().enumerate() {
                        ex[i].extend(b);
                    }
                    kernel_times.lock().push((wall, modeled));
                    let _ = n;
                });
            }
        });
        for (w, m) in kernel_times.into_inner() {
            max_kernel_wall = max_kernel_wall.max(w);
            max_kernel_modeled = max_kernel_modeled.max(m);
        }
        report.map_compute = max_kernel_wall;
        report.map_compute_modeled = max_kernel_modeled;
        let _ = t1;
        report.intermediate_bytes = intermediate_bytes.load(Ordering::Relaxed);
        if report.intermediate_bytes > cfg.intermediate_budget {
            return Err(GpmrError::IntermediateOverflow {
                produced: report.intermediate_bytes,
                budget: cfg.intermediate_budget,
            });
        }

        // ---------------- Phase 3: exchange + sort ----------------
        let t2 = Instant::now();
        let mut exchanged = exchanged.into_inner();
        for part in &mut exchanged {
            part.sort();
        }
        report.exchange = t2.elapsed();

        // ---------------- Phase 4: reduce kernels ----------------
        let t3 = Instant::now();
        let mut outputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(nodes as usize);
        let mut reduce_wall = Duration::ZERO;
        let mut reduce_modeled = Duration::ZERO;
        for part in &exchanged {
            let collector = BufferPoolCollector::new(16 << 20, 8);
            if app.has_reduce() && !part.is_empty() {
                // Group by key.
                let mut groups: Vec<(&[u8], Vec<&[u8]>)> = Vec::new();
                let mut i = 0usize;
                while i < part.len() {
                    let key = part[i].0.as_slice();
                    let mut vals = Vec::new();
                    while i < part.len() && part[i].0 == key {
                        vals.push(part[i].1.as_slice());
                        i += 1;
                    }
                    groups.push((key, vals));
                }
                let device = Device::open_with_threads(cfg.device.clone(), cfg.device_threads);
                let groups = &groups;
                let app_ref = &app;
                let emit_target: &dyn Collector = &collector;
                let kernel = KernelFn(move |ctx: &WorkItemCtx| {
                    let emit = Emit::new(emit_target);
                    let (lo, hi) = ctx.my_items(groups.len());
                    for (key, vals) in &groups[lo..hi] {
                        let mut state = Vec::new();
                        app_ref.reduce(key, vals, &mut state, true, &emit);
                    }
                });
                let items = cfg.map_work_items.min(groups.len()).max(1);
                let stats = device.launch(
                    NdRange::new(items, items.min(64)).expect("valid range"),
                    &kernel,
                );
                reduce_wall += stats.wall;
                reduce_modeled += stats.modeled;
                let mut out = Vec::new();
                for_each_record(&collector, &mut |k, v| out.push((k.to_vec(), v.to_vec())));
                out.sort();
                outputs.push(out);
            } else {
                outputs.push(part.clone());
            }
        }
        report.reduce_compute = reduce_wall;
        report.reduce_compute_modeled = reduce_modeled;
        let _ = t3;

        // ---------------- Phase 5: write output ----------------
        let t4 = Instant::now();
        for (p, out) in outputs.iter().enumerate() {
            let mut builder = RecordBlockBuilder::new(cfg.output_block_size);
            for (k, v) in out {
                builder.append(k, v);
            }
            self.store.write_blocks(
                &format!("{}/part-r-{p:05}", cfg.output),
                NodeId((p % nodes as usize) as u32),
                builder.finish(),
                1,
            )?;
        }
        report.io_write = t4.elapsed();
        report.elapsed = job_start.elapsed();
        Ok(report)
    }

    /// Read back job output in partition order.
    pub fn read_output(&self, cfg: &GpmrConfig) -> Result<gw_storage::KvVec, GpmrError> {
        let mut out = Vec::new();
        for p in 0..self.nodes() {
            let path = format!("{}/part-r-{p:05}", cfg.output);
            if self.store.exists(&path) {
                out.extend(self.store.read_all_records(&path, NodeId(0))?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_apps::{reference, workloads, KMeans, WordCount};
    use gw_storage::LocalFs;

    fn local_store_with(recs: &workloads::Records, nodes: u32) -> Arc<dyn FileStore> {
        let fs = LocalFs::new(nodes);
        fs.write_records(
            "/in",
            NodeId(0),
            2048,
            1,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        Arc::new(fs)
    }

    #[test]
    fn gpmr_wordcount_matches_reference() {
        let spec = workloads::CorpusSpec {
            lines: 80,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let cluster = GpmrCluster::new(local_store_with(&recs, 2));
        let cfg = GpmrConfig::new("/in", "/out");
        let report = cluster
            .run(Arc::new(WordCount::without_combiner()), &cfg)
            .unwrap();
        assert_eq!(report.records_in, 80);
        let mut out: Vec<(Vec<u8>, u64)> = cluster
            .read_output(&cfg)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, reference::wordcount(&recs));
    }

    #[test]
    fn gpmr_kmeans_matches_reference() {
        let spec = workloads::KmeansSpec {
            points: 300,
            dims: 3,
            centers: 5,
            seed: 4,
        };
        let pts = workloads::kmeans_points(&spec);
        let centers = workloads::kmeans_centers(&spec);
        let cluster = GpmrCluster::new(local_store_with(&pts, 2));
        let cfg = GpmrConfig::new("/in", "/out");
        let app = Arc::new(KMeans::new(centers.clone(), 5, 3));
        cluster
            .run(Arc::clone(&app) as Arc<dyn GwApp>, &cfg)
            .unwrap();
        let out = cluster.read_output(&cfg).unwrap();
        let expect = reference::kmeans_iteration(&pts, &app);
        assert_eq!(out.len(), expect.len());
        for (k, v) in out {
            let c = u32::from_be_bytes(k.as_slice().try_into().unwrap());
            let got = gw_apps::codec::get_f32s(&v);
            let (_, want) = expect.iter().find(|(ec, _)| *ec == c).unwrap();
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-3, "center {c}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn intermediate_overflow_is_detected() {
        let spec = workloads::CorpusSpec {
            lines: 50,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let cluster = GpmrCluster::new(local_store_with(&recs, 1));
        let mut cfg = GpmrConfig::new("/in", "/out-overflow");
        cfg.intermediate_budget = 16; // absurdly small
        let err = cluster
            .run(Arc::new(WordCount::without_combiner()), &cfg)
            .unwrap_err();
        assert!(matches!(err, GpmrError::IntermediateOverflow { .. }));
    }

    #[test]
    fn phases_are_serial() {
        let spec = workloads::CorpusSpec {
            lines: 40,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let cluster = GpmrCluster::new(local_store_with(&recs, 1));
        let cfg = GpmrConfig::new("/in", "/out-serial");
        let r = cluster
            .run(Arc::new(WordCount::without_combiner()), &cfg)
            .unwrap();
        // Total is at least the sum of the measured serial phases (within
        // a small measurement tolerance).
        let sum = r.io_read + r.map_compute + r.exchange + r.reduce_compute + r.io_write;
        assert!(
            r.elapsed + Duration::from_millis(1) >= sum,
            "phases exceed total: {r:?}"
        );
        // Modeled total = I/O + compute (the Fig. 3(e) structure).
        assert!(r.modeled_total() >= r.io_read_modeled + r.map_compute_modeled);
    }
}
