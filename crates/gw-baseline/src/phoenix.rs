//! Phoenix-model baseline engine.
//!
//! Phoenix (Ranger et al.) is the paper's representative of single-node,
//! CPU-only, in-core MapReduce: "Phoenix is an implementation of MapReduce
//! for symmetric multi-core systems. It manages task scheduling across
//! cores within a single machine. ... Both systems [Phoenix and
//! Tiled-MapReduce] use only a single node and do not exploit GPUs." Table
//! I additionally marks it as lacking out-of-core support.
//!
//! This model executes the same [`GwApp`] applications with Phoenix's
//! structure — a task queue over per-core worker threads, all input,
//! intermediate and output data resident in memory — and *enforces* the
//! constraints the paper's comparison rests on: single node only, in-core
//! only, CPU only. The constraints are checked, not assumed, so Table I
//! can be demonstrated by construction in tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gw_core::collect::{for_each_record, BufferPoolCollector};
use gw_core::{Emit, EngineError, GwApp};
use gw_storage::split::FileStore;
use gw_storage::{seqfile::SeqReader, KvVec, NodeId};

/// Phoenix job configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// Input path.
    pub input: String,
    /// Worker threads (Phoenix spawns one per core).
    pub workers: usize,
    /// In-core memory budget in bytes for input + intermediate data; jobs
    /// beyond it fail (Phoenix has no out-of-core path).
    pub memory_budget: usize,
    /// Apply the app's combiner at task end.
    pub use_combiner: bool,
}

impl PhoenixConfig {
    /// Defaults for a small in-memory job.
    pub fn new(input: impl Into<String>) -> Self {
        PhoenixConfig {
            input: input.into(),
            workers: 2,
            memory_budget: 1 << 30,
            use_combiner: true,
        }
    }
}

/// Phoenix failure modes — the Table I feature gaps, surfaced as errors.
#[derive(Debug)]
pub enum PhoenixError {
    /// Phoenix runs on a single machine only.
    ClusterUnsupported {
        /// Nodes the store was configured with.
        nodes: u32,
    },
    /// The job's data exceeds the in-core budget.
    OutOfCore {
        /// Bytes the job needs resident.
        required: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Underlying engine error.
    Engine(EngineError),
}

impl std::fmt::Display for PhoenixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhoenixError::ClusterUnsupported { nodes } => {
                write!(f, "phoenix runs on a single node, store has {nodes}")
            }
            PhoenixError::OutOfCore { required, budget } => write!(
                f,
                "phoenix is in-core only: needs {required} bytes, budget {budget}"
            ),
            PhoenixError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PhoenixError {}

impl From<gw_storage::StorageError> for PhoenixError {
    fn from(e: gw_storage::StorageError) -> Self {
        PhoenixError::Engine(EngineError::Storage(e))
    }
}

/// Phase breakdown of a Phoenix job.
#[derive(Debug, Clone, Default)]
pub struct PhoenixReport {
    /// Map phase (task queue over workers).
    pub map_phase: Duration,
    /// Merge/sort of the in-memory intermediate data.
    pub merge_phase: Duration,
    /// Reduce phase.
    pub reduce_phase: Duration,
    /// Total wall time.
    pub elapsed: Duration,
    /// Input records processed.
    pub records_in: usize,
    /// Output records (also the job output, held in memory).
    pub output: KvVec,
}

/// The Phoenix-model runtime.
pub struct PhoenixRuntime {
    store: Arc<dyn FileStore>,
}

impl PhoenixRuntime {
    /// Create over a store; the store must describe a single machine.
    pub fn new(store: Arc<dyn FileStore>) -> Self {
        PhoenixRuntime { store }
    }

    /// Execute a job entirely in memory on this machine.
    pub fn run(
        &self,
        app: Arc<dyn GwApp>,
        cfg: &PhoenixConfig,
    ) -> Result<PhoenixReport, PhoenixError> {
        // ---- Table I constraint: single node only ----
        let nodes = self.store.cluster_size();
        if nodes != 1 {
            return Err(PhoenixError::ClusterUnsupported { nodes });
        }
        let start = Instant::now();

        // ---- Load ALL input into memory (in-core model) ----
        let splits = self.store.splits(&cfg.input)?;
        let input_bytes: usize = splits.iter().map(|s| s.len).sum();
        if input_bytes > cfg.memory_budget {
            return Err(PhoenixError::OutOfCore {
                required: input_bytes,
                budget: cfg.memory_budget,
            });
        }
        let mut blocks = Vec::with_capacity(splits.len());
        for s in &splits {
            let (block, _) = self.store.read_split(s, NodeId(0))?;
            blocks.push(block);
        }

        // ---- Map phase: task queue over per-core workers ----
        let map_start = Instant::now();
        let next_task = AtomicUsize::new(0);
        let records_in = AtomicUsize::new(0);
        let intermediate_bytes = AtomicUsize::new(0);
        let task_outputs: Mutex<Vec<KvVec>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..cfg.workers.max(1) {
                let app = Arc::clone(&app);
                let blocks = &blocks;
                let next_task = &next_task;
                let records_in = &records_in;
                let intermediate_bytes = &intermediate_bytes;
                let task_outputs = &task_outputs;
                scope.spawn(move || loop {
                    let t = next_task.fetch_add(1, Ordering::Relaxed);
                    if t >= blocks.len() {
                        break;
                    }
                    let collector = BufferPoolCollector::new(8 << 20, 2);
                    let emit = Emit::new(&collector);
                    let mut reader = SeqReader::open_raw(&blocks[t]);
                    let mut count = 0usize;
                    while let Some((k, v)) = reader.next().expect("corrupt input") {
                        app.map(k, v, &emit);
                        count += 1;
                    }
                    records_in.fetch_add(count, Ordering::Relaxed);
                    let mut pairs: KvVec = Vec::new();
                    for_each_record(&collector, &mut |k, v| pairs.push((k.to_vec(), v.to_vec())));
                    if cfg.use_combiner {
                        if let Some(combiner) = app.combiner() {
                            let mut combined: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                            for (k, v) in pairs.drain(..) {
                                match combined.entry(k) {
                                    std::collections::btree_map::Entry::Occupied(mut e) => {
                                        let key = e.key().clone();
                                        combiner.combine(&key, e.get_mut(), &v);
                                    }
                                    std::collections::btree_map::Entry::Vacant(e) => {
                                        e.insert(v);
                                    }
                                }
                            }
                            pairs = combined.into_iter().collect();
                        }
                    }
                    intermediate_bytes.fetch_add(
                        pairs.iter().map(|(k, v)| k.len() + v.len()).sum::<usize>(),
                        Ordering::Relaxed,
                    );
                    task_outputs.lock().push(pairs);
                });
            }
        });
        let map_phase = map_start.elapsed();

        // ---- Table I constraint: intermediate data stays in core ----
        let required = input_bytes + intermediate_bytes.load(Ordering::Relaxed);
        if required > cfg.memory_budget {
            return Err(PhoenixError::OutOfCore {
                required,
                budget: cfg.memory_budget,
            });
        }

        // ---- Merge: sort/group the in-memory intermediate data ----
        let merge_start = Instant::now();
        let mut all: KvVec = task_outputs.into_inner().into_iter().flatten().collect();
        all.sort();
        let merge_phase = merge_start.elapsed();

        // ---- Reduce ----
        let reduce_start = Instant::now();
        let collector = BufferPoolCollector::new(8 << 20, 2);
        let emit = Emit::new(&collector);
        if app.has_reduce() {
            let mut i = 0usize;
            while i < all.len() {
                let key = all[i].0.clone();
                let mut j = i;
                while j < all.len() && all[j].0 == key {
                    j += 1;
                }
                let values: Vec<&[u8]> = all[i..j].iter().map(|(_, v)| v.as_slice()).collect();
                let mut state = Vec::new();
                app.reduce(&key, &values, &mut state, true, &emit);
                i = j;
            }
        } else {
            for (k, v) in &all {
                emit.emit(k, v);
            }
        }
        let mut output: KvVec = Vec::new();
        for_each_record(&collector, &mut |k, v| {
            output.push((k.to_vec(), v.to_vec()))
        });
        output.sort();
        let reduce_phase = reduce_start.elapsed();

        Ok(PhoenixReport {
            map_phase,
            merge_phase,
            reduce_phase,
            elapsed: start.elapsed(),
            records_in: records_in.load(Ordering::Relaxed),
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_apps::{reference, workloads, WordCount};
    use gw_storage::split::FileStoreExt;
    use gw_storage::{Dfs, DfsConfig, LocalFs};

    fn single_node_store(recs: &workloads::Records) -> Arc<dyn FileStore> {
        let fs = LocalFs::new(1);
        fs.write_records(
            "/in",
            NodeId(0),
            2048,
            1,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        Arc::new(fs)
    }

    #[test]
    fn phoenix_wordcount_matches_reference() {
        let spec = workloads::CorpusSpec {
            lines: 150,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let phoenix = PhoenixRuntime::new(single_node_store(&recs));
        let report = phoenix
            .run(Arc::new(WordCount::new()), &PhoenixConfig::new("/in"))
            .unwrap();
        assert_eq!(report.records_in, 150);
        let got: Vec<(Vec<u8>, u64)> = report
            .output
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        assert_eq!(got, reference::wordcount(&recs));
    }

    #[test]
    fn phoenix_rejects_clusters() {
        let dfs = Dfs::new(DfsConfig::new(4).free_io());
        let phoenix = PhoenixRuntime::new(Arc::new(dfs));
        let err = phoenix
            .run(Arc::new(WordCount::new()), &PhoenixConfig::new("/in"))
            .unwrap_err();
        assert!(matches!(err, PhoenixError::ClusterUnsupported { nodes: 4 }));
    }

    #[test]
    fn phoenix_rejects_out_of_core_inputs() {
        let spec = workloads::CorpusSpec {
            lines: 200,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let phoenix = PhoenixRuntime::new(single_node_store(&recs));
        let mut cfg = PhoenixConfig::new("/in");
        cfg.memory_budget = 64;
        let err = phoenix.run(Arc::new(WordCount::new()), &cfg).unwrap_err();
        assert!(matches!(err, PhoenixError::OutOfCore { .. }));
    }

    #[test]
    fn phases_are_reported() {
        let spec = workloads::CorpusSpec {
            lines: 60,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let phoenix = PhoenixRuntime::new(single_node_store(&recs));
        let report = phoenix
            .run(Arc::new(WordCount::new()), &PhoenixConfig::new("/in"))
            .unwrap();
        assert!(report.elapsed >= report.map_phase);
        assert!(!report.output.is_empty());
    }
}
