//! Baseline MapReduce engines the paper compares Glasswing against.
//!
//! Both baselines execute the *same* [`gw_core::GwApp`] applications and
//! produce identical output to the Glasswing engine, but with the
//! execution structures of the original systems — which is exactly what
//! makes them slower:
//!
//! * [`hadoop::HadoopCluster`] — Hadoop 1.x's model: slot-based task
//!   waves, **sequential** record processing within a task (coarse-grained
//!   parallelism only), per-task startup overhead (JVM), sort-spill at
//!   task end, and a **pull**-based shuffle that only starts fetching
//!   after the map phase; no pipeline overlap of I/O with computation.
//! * [`gpmr::GpmrCluster`] — GPMR's model: GPU-only kernels, **all input
//!   read before computation starts** ("GPMR first reads all data, then
//!   starts its computation pipeline; its total time is the sum of
//!   computation and I/O"), and in-core-only intermediate data (a job
//!   whose intermediate data exceeds device memory fails, as the paper
//!   notes GPMR "is limited to processing data sets where intermediate
//!   data fits in host memory").

pub mod gpmr;
pub mod hadoop;
pub mod phoenix;

pub use gpmr::{GpmrCluster, GpmrConfig, GpmrError, GpmrReport};
pub use hadoop::{HadoopCluster, HadoopConfig, HadoopReport};
pub use phoenix::{PhoenixConfig, PhoenixError, PhoenixReport, PhoenixRuntime};
