//! Hadoop-model baseline engine.
//!
//! A faithful *model* of Hadoop 1.x execution running the same application
//! kernels as Glasswing:
//!
//! * **Slot waves** — each node runs `map_slots` concurrent map tasks;
//!   tasks within a slot are strictly sequential, and each record is
//!   processed sequentially inside its task (coarse-grained parallelism
//!   only — the paper's core criticism: "existing MapReduce systems were
//!   designed primarily for coarse-grained parallelism and therefore fail
//!   to exploit current multi-core and many-core technologies").
//! * **Per-task startup** — a configurable delay standing in for JVM
//!   task-launch cost.
//! * **Sort/spill at task end** — map output is buffered, combined (when
//!   the app provides a combiner), sorted and partitioned only after the
//!   task's records are done; no overlap with input reading.
//! * **Pull shuffle** — reducers fetch map-output fragments only after
//!   the *whole* map phase completes ("Hadoop pulls its intermediate
//!   data"), whereas Glasswing pushes during map.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gw_core::collect::{for_each_record, BufferPoolCollector};
use gw_core::{Emit, EngineError, GwApp};
use gw_storage::split::{FileStore, FileStoreExt, RecordBlockBuilder};
use gw_storage::{seqfile::SeqReader, NodeId};

/// Hadoop job configuration.
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// Input path.
    pub input: String,
    /// Output directory.
    pub output: String,
    /// Concurrent map tasks per node.
    pub map_slots: usize,
    /// Reduce tasks per node (the global reduce count is `nodes × this`).
    pub reduces_per_node: u32,
    /// Modeled JVM/task startup cost, applied as a real delay per task.
    pub task_startup: Duration,
    /// Use the application's combiner at map-task end, if it has one.
    pub use_combiner: bool,
    /// Output replication factor.
    pub output_replication: usize,
    /// Output block size.
    pub output_block_size: usize,
}

impl HadoopConfig {
    /// Defaults mirroring a small tuned deployment.
    pub fn new(input: impl Into<String>, output: impl Into<String>) -> Self {
        HadoopConfig {
            input: input.into(),
            output: output.into(),
            map_slots: 2,
            reduces_per_node: 1,
            task_startup: Duration::ZERO,
            use_combiner: true,
            output_replication: 3,
            output_block_size: 8 << 20,
        }
    }
}

/// Phase timing breakdown of a Hadoop job.
#[derive(Debug, Clone, Copy, Default)]
pub struct HadoopReport {
    /// Map phase wall time (all waves).
    pub map_phase: Duration,
    /// Shuffle (pull + merge) wall time — starts after map completes.
    pub shuffle_phase: Duration,
    /// Reduce phase wall time.
    pub reduce_phase: Duration,
    /// Total job wall time.
    pub elapsed: Duration,
    /// Map tasks executed.
    pub map_tasks: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Input records processed.
    pub records_in: usize,
    /// Output records written.
    pub records_out: usize,
}

/// Map-output fragment: one map task's records for one reduce partition.
type Fragment = Vec<(Vec<u8>, Vec<u8>)>;

/// The Hadoop-model cluster.
pub struct HadoopCluster {
    store: Arc<dyn FileStore>,
}

impl HadoopCluster {
    /// Create over a file store (node count comes from the store).
    pub fn new(store: Arc<dyn FileStore>) -> Self {
        HadoopCluster { store }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.store.cluster_size()
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn FileStore> {
        &self.store
    }

    /// Execute a job; returns the phase breakdown.
    pub fn run(
        &self,
        app: Arc<dyn GwApp>,
        cfg: &HadoopConfig,
    ) -> Result<HadoopReport, EngineError> {
        let nodes = self.nodes();
        let total_reduces = cfg.reduces_per_node * nodes;
        let splits = self.store.splits(&cfg.input)?;
        let n_splits = splits.len();
        let job_start = Instant::now();

        // ---------------- Map phase: slot waves ----------------
        // map_outputs[task][partition] — persisted map output, fetched by
        // reducers in the shuffle (pull model).
        let map_outputs: Mutex<Vec<Vec<Fragment>>> = Mutex::new(Vec::new());
        let records_in = AtomicUsize::new(0);
        let task_queue = gw_core::Coordinator::new(splits);
        let map_start = Instant::now();
        std::thread::scope(|scope| {
            for n in 0..nodes {
                for _slot in 0..cfg.map_slots {
                    let node = NodeId(n);
                    let app = Arc::clone(&app);
                    let store = Arc::clone(&self.store);
                    let task_queue = &task_queue;
                    let map_outputs = &map_outputs;
                    let records_in = &records_in;
                    scope.spawn(move || {
                        while let Some(split) = task_queue.next_for(node) {
                            if !cfg.task_startup.is_zero() {
                                std::thread::sleep(cfg.task_startup);
                            }
                            let (block, _) =
                                store.read_split(&split, node).expect("split read failed");
                            // Sequential record processing into a local
                            // collector — no fine-grained parallelism.
                            let collector = BufferPoolCollector::new(1 << 20, 1);
                            let emit = Emit::new(&collector);
                            let mut reader = SeqReader::open_raw(&block);
                            let mut count = 0usize;
                            while let Some((k, v)) = reader.next().expect("corrupt input") {
                                app.map(k, v, &emit);
                                count += 1;
                            }
                            records_in.fetch_add(count, Ordering::Relaxed);
                            // Task-end sort/spill: combine, sort, partition.
                            let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                            for_each_record(&collector, &mut |k, v| {
                                pairs.push((k.to_vec(), v.to_vec()))
                            });
                            if cfg.use_combiner {
                                if let Some(combiner) = app.combiner() {
                                    let mut combined: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
                                    for (k, v) in pairs.drain(..) {
                                        match combined.entry(k) {
                                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                                let key = e.key().clone();
                                                combiner.combine(&key, e.get_mut(), &v);
                                            }
                                            std::collections::hash_map::Entry::Vacant(e) => {
                                                e.insert(v);
                                            }
                                        }
                                    }
                                    pairs = combined.into_iter().collect();
                                }
                            }
                            let mut fragments: Vec<Fragment> =
                                vec![Vec::new(); total_reduces as usize];
                            for (k, v) in pairs {
                                let p = app.partition(&k, total_reduces);
                                fragments[p as usize].push((k, v));
                            }
                            for f in &mut fragments {
                                f.sort();
                            }
                            map_outputs.lock().push(fragments);
                        }
                    });
                }
            }
        });
        let map_phase = map_start.elapsed();
        let map_outputs = map_outputs.into_inner();
        let map_tasks = map_outputs.len();
        debug_assert_eq!(map_tasks, n_splits);

        // ---------------- Shuffle: pull after map ----------------
        let shuffle_start = Instant::now();
        let mut reduce_inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
            vec![Vec::new(); total_reduces as usize];
        for task in &map_outputs {
            for (p, frag) in task.iter().enumerate() {
                reduce_inputs[p].extend(frag.iter().cloned());
            }
        }
        // Merge-sort each reduce input (Hadoop's merge step).
        for input in &mut reduce_inputs {
            input.sort();
        }
        let shuffle_phase = shuffle_start.elapsed();

        // ---------------- Reduce phase: slot waves ----------------
        let reduce_start = Instant::now();
        let records_out = AtomicUsize::new(0);
        let reduce_queue: Mutex<Vec<u32>> = Mutex::new((0..total_reduces).rev().collect());
        let reduce_inputs = &reduce_inputs;
        std::thread::scope(|scope| {
            for n in 0..nodes {
                let node = NodeId(n);
                let app = Arc::clone(&app);
                let store = Arc::clone(&self.store);
                let reduce_queue = &reduce_queue;
                let records_out = &records_out;
                scope.spawn(move || {
                    loop {
                        let Some(p) = reduce_queue.lock().pop() else {
                            break;
                        };
                        if !cfg.task_startup.is_zero() {
                            std::thread::sleep(cfg.task_startup);
                        }
                        let input = &reduce_inputs[p as usize];
                        let collector = BufferPoolCollector::new(1 << 20, 1);
                        let emit = Emit::new(&collector);
                        let mut records = 0usize;
                        if app.has_reduce() {
                            let mut i = 0usize;
                            while i < input.len() {
                                let key = &input[i].0;
                                let mut j = i;
                                while j < input.len() && &input[j].0 == key {
                                    j += 1;
                                }
                                let values: Vec<&[u8]> =
                                    input[i..j].iter().map(|(_, v)| v.as_slice()).collect();
                                let mut state = Vec::new();
                                app.reduce(key, &values, &mut state, true, &emit);
                                i = j;
                            }
                            let mut builder = RecordBlockBuilder::new(cfg.output_block_size);
                            for_each_record(&collector, &mut |k, v| {
                                builder.append(k, v);
                                records += 1;
                            });
                            store
                                .write_blocks(
                                    &format!("{}/part-r-{p:05}", cfg.output),
                                    node,
                                    builder.finish(),
                                    cfg.output_replication,
                                )
                                .expect("output write failed");
                        } else {
                            // Shuffle-only job: write the sorted partition.
                            let mut builder = RecordBlockBuilder::new(cfg.output_block_size);
                            for (k, v) in input {
                                builder.append(k, v);
                                records += 1;
                            }
                            store
                                .write_blocks(
                                    &format!("{}/part-r-{p:05}", cfg.output),
                                    node,
                                    builder.finish(),
                                    cfg.output_replication,
                                )
                                .expect("output write failed");
                        }
                        records_out.fetch_add(records, Ordering::Relaxed);
                    }
                });
            }
        });
        let reduce_phase = reduce_start.elapsed();

        Ok(HadoopReport {
            map_phase,
            shuffle_phase,
            reduce_phase,
            elapsed: job_start.elapsed(),
            map_tasks,
            reduce_tasks: total_reduces as usize,
            records_in: records_in.load(Ordering::Relaxed),
            records_out: records_out.load(Ordering::Relaxed),
        })
    }

    /// Read back the job output sorted by partition (tests/examples).
    pub fn read_output(&self, cfg: &HadoopConfig) -> Result<gw_storage::KvVec, EngineError> {
        let mut paths = Vec::new();
        let nodes = self.nodes();
        for p in 0..cfg.reduces_per_node * nodes {
            let path = format!("{}/part-r-{p:05}", cfg.output);
            if self.store.exists(&path) {
                paths.push(path);
            }
        }
        paths.sort();
        let mut out = Vec::new();
        for p in paths {
            out.extend(self.store.read_all_records(&p, NodeId(0))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gw_apps::{reference, workloads, WordCount};
    use gw_storage::{Dfs, DfsConfig};

    fn store_with_corpus(nodes: u32) -> (Arc<dyn FileStore>, workloads::Records) {
        let spec = workloads::CorpusSpec {
            lines: 120,
            ..Default::default()
        };
        let recs = workloads::text_corpus(&spec);
        let dfs = Dfs::new(DfsConfig::new(nodes).free_io());
        dfs.write_records(
            "/in",
            NodeId(0),
            2048,
            3,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
        (Arc::new(dfs), recs)
    }

    #[test]
    fn hadoop_wordcount_matches_reference() {
        let (store, recs) = store_with_corpus(3);
        let cluster = HadoopCluster::new(store);
        let cfg = HadoopConfig::new("/in", "/out");
        let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
        assert_eq!(report.records_in, 120);
        assert!(report.map_tasks > 1);
        let mut out: Vec<(Vec<u8>, u64)> = cluster
            .read_output(&cfg)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, reference::wordcount(&recs));
    }

    #[test]
    fn hadoop_without_combiner_matches_too() {
        let (store, recs) = store_with_corpus(2);
        let cluster = HadoopCluster::new(store);
        let mut cfg = HadoopConfig::new("/in", "/out-nc");
        cfg.use_combiner = false;
        cluster
            .run(Arc::new(WordCount::without_combiner()), &cfg)
            .unwrap();
        let mut out: Vec<(Vec<u8>, u64)> = cluster
            .read_output(&cfg)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, reference::wordcount(&recs));
    }

    #[test]
    fn task_startup_inflates_map_phase() {
        let (store, _) = store_with_corpus(1);
        let cluster = HadoopCluster::new(store);
        let mut cfg = HadoopConfig::new("/in", "/out-slow");
        cfg.map_slots = 1;
        cfg.task_startup = Duration::from_millis(5);
        let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
        // Every task pays the startup cost sequentially in its slot.
        assert!(
            report.map_phase >= Duration::from_millis(5) * report.map_tasks as u32,
            "startup not charged: {report:?}"
        );
    }

    #[test]
    fn shuffle_happens_after_map_not_during() {
        // Structural property: the report's phases are disjoint and sum to
        // roughly the elapsed time (pull model = no overlap).
        let (store, _) = store_with_corpus(2);
        let cluster = HadoopCluster::new(store);
        let cfg = HadoopConfig::new("/in", "/out-p");
        let r = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
        let sum = r.map_phase + r.shuffle_phase + r.reduce_phase;
        assert!(r.elapsed >= sum, "phases must be serial: {r:?}");
    }
}
