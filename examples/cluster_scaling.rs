//! Horizontal-scalability study with the discrete-event cluster
//! simulator: WordCount under Glasswing vs Hadoop from 1 to 64 nodes
//! (the paper's Fig. 2(b) experiment), plus the GPU K-Means comparison
//! against GPMR (Fig. 3(e)).
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use glasswing::sim::sweep::{paper_node_counts, speedups, sweep};
use glasswing::sim::{AppParams, ClusterParams, FrameworkKind};

fn main() {
    let counts = paper_node_counts();

    println!("== WordCount, 27 GB Wikipedia-like corpus, CPU nodes over HDFS ==\n");
    let app = AppParams::wc();
    let cluster = ClusterParams::das4_cpu_hdfs();
    let gw = sweep(FrameworkKind::Glasswing, &app, &cluster, &counts);
    let hd = sweep(FrameworkKind::Hadoop, &app, &cluster, &counts);
    let gw_speedup = speedups(&gw);
    let hd_speedup = speedups(&hd);

    println!(
        "{:>6} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "nodes", "glasswing (s)", "hadoop (s)", "ratio", "gw spdup", "hd spdup"
    );
    for i in 0..counts.len() {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>7.2}x {:>10.1} {:>10.1}",
            counts[i],
            gw[i].total,
            hd[i].total,
            hd[i].total / gw[i].total,
            gw_speedup[i],
            hd_speedup[i],
        );
    }
    let eff = |s: &[f64]| s.last().unwrap() / *counts.last().unwrap() as f64 * 100.0;
    println!(
        "\nparallel efficiency at 64 nodes: glasswing {:.0}%, hadoop {:.0}%",
        eff(&gw_speedup),
        eff(&hd_speedup)
    );
    println!("(paper: 61% vs 37%, with the gap growing from ~2.6x to ~4x)\n");

    println!("== K-Means (64 centers) on GPU nodes, local FS: Glasswing vs GPMR ==\n");
    let km = AppParams::km_few_centers();
    let gpu = ClusterParams::das4_gpu_local();
    let gpu_counts = [1usize, 2, 4, 8, 16];
    let gw = sweep(FrameworkKind::Glasswing, &km, &gpu, &gpu_counts);
    let gpmr = sweep(FrameworkKind::GPMR, &km, &gpu, &gpu_counts);
    println!(
        "{:>6} {:>14} {:>16} {:>16} {:>8}",
        "nodes", "glasswing (s)", "gpmr compute (s)", "gpmr total (s)", "ratio"
    );
    for i in 0..gpu_counts.len() {
        println!(
            "{:>6} {:>14.2} {:>16.2} {:>16.2} {:>7.2}x",
            gpu_counts[i],
            gw[i].total,
            gpmr[i].compute_only.unwrap(),
            gpmr[i].total,
            gpmr[i].total / gw[i].total,
        );
    }
    println!("\n(paper: GPMR's total = I/O + compute; Glasswing overlaps them, so");
    println!(" GPMR's total is ≈1.5x Glasswing's for all cluster sizes — Fig. 3(e))");
}
