//! Fault tolerance in action (paper §III-E): a map task that fails
//! transiently is discarded and re-executed; its partial output never
//! reaches the intermediate data, so the job's result is exact.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use glasswing::apps::codec::{dec_u64, enc_u64};
use glasswing::prelude::*;

/// WordCount whose map panics the first two times it meets the marker.
struct FlakyWordCount {
    remaining_failures: AtomicUsize,
}

impl GwApp for FlakyWordCount {
    fn name(&self) -> &'static str {
        "flaky-wordcount"
    }
    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            if word == b"unstable" && self.remaining_failures.load(Ordering::SeqCst) > 0 {
                self.remaining_failures.fetch_sub(1, Ordering::SeqCst);
                panic!("transient device fault (injected)");
            }
            emit.emit(word, &enc_u64(1));
        }
    }
    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
        }
        let mut acc = dec_u64(state);
        for v in values {
            acc += dec_u64(v);
        }
        state.copy_from_slice(&enc_u64(acc));
        if last {
            emit.emit(key, &enc_u64(acc));
        }
    }
}

fn main() {
    let lines = [
        "the pipeline keeps flowing",
        "one unstable task hits a fault",
        "the task is discarded and re executed",
        "the output stays exact",
    ];
    let dfs = Arc::new(Dfs::new(DfsConfig::new(2).free_io()));
    let records: Vec<(Vec<u8>, Vec<u8>)> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("{i:02}").into_bytes(), l.as_bytes().to_vec()))
        .collect();
    dfs.write_records(
        "/ft/in",
        NodeId(0),
        48,
        2,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/ft/in", "/ft/out");
    cfg.max_task_retries = 3;

    let app = Arc::new(FlakyWordCount {
        remaining_failures: AtomicUsize::new(2),
    });
    let report = cluster.run(app, &cfg).expect("job must survive the fault");

    let retried: usize = report.nodes.iter().map(|n| n.map.tasks_retried).sum();
    println!("== fault recovery ==");
    println!("injected transient faults: 2");
    println!("tasks re-executed:         {retried}");
    let mut counts: Vec<(String, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (String::from_utf8_lossy(&k).into_owned(), dec_u64(&v)))
        .collect();
    counts.sort();
    let the = counts.iter().find(|(w, _)| w == "the").unwrap();
    let task = counts.iter().find(|(w, _)| w == "task").unwrap();
    println!("count('the')  = {} (expected 3)", the.1);
    println!("count('task') = {} (expected 2)", task.1);
    assert_eq!(the.1, 3);
    assert_eq!(task.1, 2);
    println!("\nfailed attempts' partial output was discarded — no double counting.");
    println!("(paper §III-E: \"if a task fails, its partial output is discarded");
    println!(" and its input is rescheduled for processing\")");
}
