//! Run a job and print its trace-driven performance analysis.
//!
//! Word count on a 2-node in-process cluster with *paced* local-FS-style
//! reads (so the Input stage carries real time and the §III-D pipeline
//! has something to overlap), then the full post-hoc analysis: per-stage
//! breakdown with the overlap matrix and efficiency score (the paper's
//! Table II/III shape), critical-path attribution, straggler ranking and
//! the bottleneck advisor.
//!
//! ```sh
//! cargo run --release --example analyze_job [report.txt [report.json]]
//! ```
//!
//! The plain-text report goes to stdout and to the first path; the JSON
//! form (`gw-perf-analysis-v1`) to the second. EXPERIMENTS.md's
//! per-stage breakdown block is regenerated from this output.

use std::sync::Arc;

use glasswing::apps::workloads::{text_corpus, CorpusSpec};
use glasswing::prelude::*;
use glasswing::storage::IoModel;

fn main() {
    let txt_out = std::env::args().nth(1).unwrap_or("report.txt".to_string());
    let json_out = std::env::args().nth(2).unwrap_or("report.json".to_string());

    let spec = CorpusSpec {
        lines: 4000,
        words_per_line: 12,
        vocabulary: 2000,
        zipf_s: 1.05,
        seed: 17,
    };
    let corpus = text_corpus(&spec);
    let nodes = 2;
    // Paced reads: the scaled local-FS model from the bench harness, so
    // Input time is the same order as kernel time (the paper's local-FS
    // runs) and double buffering has real work to overlap.
    let model = IoModel {
        per_call_overhead: std::time::Duration::from_micros(100),
        local_bandwidth: 60.0e6,
        remote_bandwidth: 200.0e6,
        copy_amplification: 1.0,
    };
    let make_cluster = || {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).paced_io(model.clone())));
        dfs.write_records(
            "/analyze/in",
            NodeId(0),
            16 << 10,
            2,
            corpus.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .expect("write input corpus");
        Cluster::new(dfs, NetProfile::gigabit_ethernet())
    };

    let cluster = make_cluster();
    let cfg = JobConfig::new("/analyze/in", "/analyze/out");
    let report = cluster
        .run(Arc::new(WordCount::new()), &cfg)
        .expect("word count job");

    let analysis = &report.analysis;
    let text = analysis.to_report();
    print!("{text}");
    println!("\njob finished in {:?}", report.elapsed);

    std::fs::write(&txt_out, &text).expect("write text report");
    std::fs::write(&json_out, analysis.to_json()).expect("write JSON report");
    println!("wrote {txt_out} and {json_out}");

    // Close the advisor loop (DESIGN.md §3.9): rerun the same job with
    // the lane plan the advice implies and put the prediction next to
    // the measurement. Map makespan is the quantity the lane-scaling
    // model predicts, so that is what gets compared.
    let plan = report.plan_lanes();
    if plan.is_single() {
        println!("\nadvisor proposes no lane widening; plan stays single-lane");
        return;
    }
    let map_makespan = |r: &JobReport| {
        r.nodes
            .iter()
            .map(|n| n.map.elapsed)
            .max()
            .expect("no node reports")
    };
    let widened = glasswing::core::StageId::ALL
        .into_iter()
        .find(|s| plan.lanes_for(*s) > 1)
        .expect("non-single plan names a stage");
    let predicted = analysis.advice.doubling_speedup(widened);
    let lanes_cfg = JobConfig::new("/analyze/in", "/analyze/out").with_auto_lanes(&analysis.advice);
    let lanes_report = make_cluster()
        .run(Arc::new(WordCount::new()), &lanes_cfg)
        .expect("word count job with lane plan");
    let measured = map_makespan(&report).as_secs_f64() / map_makespan(&lanes_report).as_secs_f64();
    println!(
        "\nauto lane plan: {} lanes on {} — map speedup predicted {predicted:.3}x, measured {measured:.3}x",
        plan.lanes_for(widened),
        widened.name(),
    );
}
