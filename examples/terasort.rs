//! TeraSort: totally-ordered distributed sort with a sampled range
//! partitioner and no reduce function — the output is fully processed by
//! the end of the intermediate-data shuffle (paper §IV-A1). Demonstrates
//! out-of-core intermediate handling: a small cache threshold forces
//! spill + compression + background compaction.
//!
//! ```sh
//! cargo run --release --example terasort
//! ```

use std::sync::Arc;

use glasswing::apps::workloads::{sample_keys, teragen};
use glasswing::apps::TeraSort;
use glasswing::prelude::*;

fn main() {
    let n_records = 50_000;
    let nodes = 4u32;
    let records = teragen(n_records, 4242);
    println!(
        "== TeraSort: {n_records} records ({} MB), {nodes} nodes ==\n",
        n_records * 100 / (1 << 20)
    );

    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes)));
    dfs.write_records(
        "/ts/in",
        NodeId(0),
        256 << 10,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load input");

    let mut cfg = JobConfig::new("/ts/in", "/ts/out");
    cfg.partitions_per_node = 2;
    cfg.output_replication = 1; // the paper's TS output setting
    cfg.cache_threshold = 1 << 20; // force out-of-core intermediate data
    cfg.max_spill_files = 4;
    cfg.merger_threads = 2;

    // Sample the input to estimate the key spread, as TeraSort does.
    let total_partitions = cfg.partitions_per_node * nodes;
    let samples = sample_keys(&records, 1000, 7);
    let app = Arc::new(TeraSort::new(samples, total_partitions));

    let cluster = Cluster::new(dfs, NetProfile::ipoib_qdr());
    let report = cluster.run(app, &cfg).expect("job");

    // Validate the total order across partition files.
    let out = read_job_output(cluster.store(), &report).expect("read output");
    assert_eq!(out.len(), records.len());
    assert!(
        out.windows(2).all(|w| w[0].0 <= w[1].0),
        "total order violated"
    );

    println!("output files (globally ordered):");
    for f in report.output_files() {
        println!("  {f}");
    }
    println!("\nintermediate data handling:");
    for n in &report.nodes {
        println!(
            "  node {}: {} runs cached, {} flushes, {} compactions, {} -> {} bytes spilled (compressed), merge delay {:?}",
            n.node.index(),
            n.intermediate.runs_added,
            n.intermediate.flushes,
            n.intermediate.compactions,
            n.intermediate.spilled_raw,
            n.intermediate.spilled_disk,
            n.merge_delay,
        );
    }
    println!("\nelapsed: {:?}", report.elapsed);
    println!(
        "total order across {} partitions: verified ✓",
        total_partitions
    );
}
