//! K-Means on heterogeneous devices: the same clustering job executed on
//! the CPU device and on a simulated GTX 480, Xeon Phi and K20m —
//! vertical scalability through the OpenCL-style device abstraction, with
//! identical results and modeled device timings (paper §IV-A2 / Fig. 3).
//!
//! ```sh
//! cargo run --release --example kmeans_accelerator
//! ```

use std::sync::Arc;

use glasswing::apps::codec;
use glasswing::apps::workloads::{kmeans_centers, kmeans_points, KmeansSpec};
use glasswing::apps::KMeans;
use glasswing::core::StageId;
use glasswing::prelude::*;

fn main() {
    let spec = KmeansSpec {
        points: 30_000,
        dims: 8,
        centers: 64,
        seed: 99,
    };
    let points = kmeans_points(&spec);
    let centers = kmeans_centers(&spec);
    println!(
        "== K-Means: {} points, {} dims, {} centers, one iteration ==\n",
        spec.points, spec.dims, spec.centers
    );

    let devices = [
        DeviceProfile::host(),
        DeviceProfile::gtx480(),
        DeviceProfile::k20m(),
        DeviceProfile::xeon_phi(),
    ];

    let mut reference_output: Option<Vec<(u32, Vec<f32>)>> = None;
    for device in devices {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
        dfs.write_records(
            "/km/in",
            NodeId(0),
            256 << 10,
            1,
            points.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .expect("load points");
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let mut cfg = JobConfig::new("/km/in", "/km/out");
        cfg.device = device.clone();
        cfg.timing = TimingMode::Modeled;
        cfg.map_work_items = 256;
        let app = Arc::new(KMeans::new(centers.clone(), spec.centers, spec.dims));
        let report = cluster.run(app, &cfg).expect("job");
        let timers = report.map_timers_total();

        let mut out: Vec<(u32, Vec<f32>)> = read_job_output(cluster.store(), &report)
            .expect("read output")
            .into_iter()
            .map(|(k, v)| (codec::dec_key_u32(&k), codec::get_f32s(&v)))
            .collect();
        out.sort_by_key(|(c, _)| *c);

        println!("device: {}", device.name);
        println!("  unified memory: {}", device.unified_memory);
        println!("  kernel (wall):    {:?}", timers.wall(StageId::Kernel));
        println!("  kernel (modeled): {:?}", timers.modeled(StageId::Kernel));
        if !device.unified_memory {
            println!("  stage (modeled):    {:?}", timers.modeled(StageId::Stage));
            println!(
                "  retrieve (modeled): {:?}",
                timers.modeled(StageId::Retrieve)
            );
        }
        println!("  centers updated: {}", out.len());

        // All devices must compute the same clustering.
        match &reference_output {
            None => reference_output = Some(out),
            Some(reference) => {
                assert_eq!(reference.len(), out.len());
                for ((c1, v1), (c2, v2)) in reference.iter().zip(&out) {
                    assert_eq!(c1, c2);
                    for (a, b) in v1.iter().zip(v2) {
                        assert!((a - b).abs() < 1e-2, "device results diverge");
                    }
                }
                println!("  output: identical to host CPU ✓");
            }
        }
        println!();
    }
    println!("(one job, four devices, same MapReduce abstraction — paper §I)");
}
