//! Dump a job's event trace as Chrome `trace_event` JSON.
//!
//! Runs word count on a 2-node in-process cluster, prints the
//! trace-derived metrics rollup, and writes the timeline to `trace.json`
//! (or the path given as the first argument). Open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>: nodes render as
//! processes, lanes (pipeline stages, storage, net-tx/net-rx) as threads.
//!
//! ```sh
//! cargo run --release --example dump_trace [out.json]
//! ```

use std::sync::Arc;

use glasswing::apps::workloads::{text_corpus, CorpusSpec};
use glasswing::core::{CounterId, StageId};
use glasswing::prelude::*;

fn main() {
    let out = std::env::args().nth(1).unwrap_or("trace.json".to_string());

    let spec = CorpusSpec {
        lines: 1500,
        words_per_line: 10,
        vocabulary: 1000,
        zipf_s: 1.05,
        seed: 11,
    };
    let corpus = text_corpus(&spec);
    let nodes = 2;
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes)));
    dfs.write_records(
        "/trace/in",
        NodeId(0),
        16 << 10,
        3,
        corpus.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("write input corpus");

    let cluster = Cluster::new(dfs, NetProfile::gigabit_ethernet());
    let cfg = JobConfig::new("/trace/in", "/trace/out");
    let report = cluster
        .run(Arc::new(WordCount::new()), &cfg)
        .expect("word count job");

    let m = &report.metrics;
    println!("job finished in {:?}", report.elapsed);
    println!(
        "map kernel chunks:   {}",
        m.chunks_total(glasswing::core::PipelineKind::Map, StageId::Kernel)
    );
    println!("token-wait total:    {:?}", m.token_wait_total());
    println!(
        "dfs reads:           {} local / {} remote ({} B)",
        m.counter_total(CounterId::DfsReadLocal),
        m.counter_total(CounterId::DfsReadRemote),
        m.counter_total(CounterId::DfsReadBytes),
    );
    println!(
        "shuffle:             {} msgs / {} B sent, {} received",
        m.counter_total(CounterId::ShuffleSendMsgs),
        m.counter_total(CounterId::ShuffleSendBytes),
        m.counter_total(CounterId::ShuffleRecvMsgs),
    );

    let json = report.trace.chrome_json();
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "wrote {out} ({} events, {} bytes) — open in chrome://tracing or ui.perfetto.dev",
        report.trace.event_count(),
        json.len()
    );
}
