//! Quickstart: word-count a small corpus on a 2-node in-process Glasswing
//! cluster and print the most frequent words plus the per-stage pipeline
//! breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use glasswing::apps::codec;
use glasswing::apps::workloads::{text_corpus, CorpusSpec};
use glasswing::core::StageId;
use glasswing::prelude::*;

fn main() {
    // 1. Generate a Zipf-distributed corpus and load it into the
    //    HDFS-like store (replication 3, cut into record-aligned blocks).
    let spec = CorpusSpec {
        lines: 2000,
        words_per_line: 12,
        vocabulary: 2000,
        zipf_s: 1.05,
        seed: 7,
    };
    let corpus = text_corpus(&spec);
    let nodes = 2;
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes)));
    dfs.write_records(
        "/quickstart/in",
        NodeId(0),
        64 << 10,
        3,
        corpus.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load input");

    // 2. Configure the job: hash-table collection with the WordCount
    //    combiner, double buffering — the paper's preferred configuration.
    let mut cfg = JobConfig::new("/quickstart/in", "/quickstart/out");
    cfg.buffering = Buffering::Double;
    cfg.collector = CollectorKind::HashTable;
    cfg.partitions_per_node = 2;

    // 3. Run on the in-process cluster.
    let cluster = Cluster::new(dfs, NetProfile::ipoib_qdr());
    let report = cluster
        .run(Arc::new(WordCount::new()), &cfg)
        .expect("job failed");

    // 4. Inspect the output.
    let mut counts: Vec<(String, u64)> = read_job_output(cluster.store(), &report)
        .expect("read output")
        .into_iter()
        .map(|(k, v)| (String::from_utf8_lossy(&k).into_owned(), codec::dec_u64(&v)))
        .collect();
    counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));

    println!("== WordCount on {} lines, {} nodes ==", spec.lines, nodes);
    println!("total distinct words: {}", counts.len());
    println!("top 10:");
    for (word, count) in counts.iter().take(10) {
        println!("  {word:<12} {count}");
    }

    println!("\n== job report ==");
    println!("elapsed:      {:?}", report.elapsed);
    println!("merge delay:  {:?}", report.merge_delay());
    println!("records in:   {}", report.records_mapped());
    println!("records out:  {}", report.records_out());
    let timers = report.map_timers_total();
    println!("map pipeline stage totals (all nodes):");
    for stage in StageId::ALL {
        println!("  {:<10} {:?}", stage.name(), timers.wall(stage));
    }
}
