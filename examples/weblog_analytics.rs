//! Web-log analytics: the paper's Pageview Count workload — count URL hits
//! in WikiBench-style server logs — executed on both the Glasswing engine
//! and the Hadoop-model baseline over the *same* DFS, comparing wall time
//! and verifying identical results. Illustrates the I/O-bound regime where
//! Glasswing's pipeline overlap and push shuffle pay off.
//!
//! ```sh
//! cargo run --release --example weblog_analytics
//! ```

use std::sync::Arc;
use std::time::Instant;

use glasswing::apps::codec;
use glasswing::apps::workloads::{web_logs, LogSpec};
use glasswing::baseline::{HadoopCluster, HadoopConfig};
use glasswing::prelude::*;

fn main() {
    let spec = LogSpec {
        entries: 20_000,
        hot_urls: 100,
        hot_fraction: 0.12,
        seed: 2026,
    };
    let logs = web_logs(&spec);
    let nodes = 4;

    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes)));
    dfs.write_records(
        "/logs/in",
        NodeId(0),
        128 << 10,
        3,
        logs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load logs");

    println!(
        "== Pageview Count: {} log entries, {} nodes ==\n",
        spec.entries, nodes
    );

    // --- Glasswing ---
    let cluster = Cluster::new(
        Arc::clone(&dfs) as Arc<dyn FileStore>,
        NetProfile::ipoib_qdr(),
    );
    let mut cfg = JobConfig::new("/logs/in", "/logs/gw-out");
    cfg.partitions_per_node = 2;
    cfg.partition_threads = 4; // PVC's sparse keys stress partitioning
    let t0 = Instant::now();
    let report = cluster
        .run(Arc::new(PageviewCount::new()), &cfg)
        .expect("glasswing job");
    let gw_time = t0.elapsed();
    let gw_out = read_job_output(cluster.store(), &report).expect("read output");

    // --- Hadoop baseline on the same input ---
    let hadoop = HadoopCluster::new(Arc::clone(&dfs) as Arc<dyn FileStore>);
    let mut hcfg = HadoopConfig::new("/logs/in", "/logs/hadoop-out");
    hcfg.task_startup = std::time::Duration::from_millis(20); // scaled JVM cost
    let t1 = Instant::now();
    let h_report = hadoop
        .run(Arc::new(PageviewCount::new()), &hcfg)
        .expect("hadoop job");
    let hadoop_time = t1.elapsed();
    let h_out = hadoop.read_output(&hcfg).expect("read hadoop output");

    // --- Compare ---
    let mut gw_sorted: Vec<_> = gw_out.clone();
    gw_sorted.sort();
    let mut h_sorted = h_out;
    h_sorted.sort();
    assert_eq!(gw_sorted, h_sorted, "engines must agree");

    let mut top: Vec<(String, u64)> = gw_out
        .into_iter()
        .map(|(k, v)| (String::from_utf8_lossy(&k).into_owned(), codec::dec_u64(&v)))
        .collect();
    top.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("hottest URLs:");
    for (url, hits) in top.iter().take(5) {
        println!("  {hits:>6}  {url}");
    }
    println!("\ndistinct URLs: {}", top.len());
    println!("\nwall time:");
    println!(
        "  glasswing      {gw_time:?}  (map {:?}, merge delay {:?})",
        report.nodes.iter().map(|n| n.map.elapsed).max().unwrap(),
        report.merge_delay()
    );
    println!(
        "  hadoop-model   {hadoop_time:?}  (map {:?}, shuffle {:?}, reduce {:?})",
        h_report.map_phase, h_report.shuffle_phase, h_report.reduce_phase
    );
    println!(
        "  speedup        {:.2}x",
        hadoop_time.as_secs_f64() / gw_time.as_secs_f64()
    );
    println!("\n(outputs verified identical)");
}
