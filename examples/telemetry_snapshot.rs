//! Dump a live telemetry snapshot from the resident service.
//!
//! Starts a 4-node service with the telemetry plane on, pushes a small
//! stream of pageview jobs through two tenants (the second submission of
//! a hot dataset exercises the result cache), pumps a few snapshot
//! windows, then writes the two stable export formats:
//!
//! * Prometheus text exposition (validated by the in-repo linter) to
//!   `telemetry.prom` (or the first argument);
//! * the latest `gw-telemetry-v1` snapshot JSON to `telemetry.json` (or
//!   the second argument).
//!
//! ```sh
//! cargo run --release --example telemetry_snapshot [out.prom] [out.json]
//! ```

use std::sync::Arc;
use std::time::Duration;

use glasswing::apps::workloads::{web_logs, LogSpec};
use glasswing::apps::PageviewCount;
use glasswing::prelude::*;
use glasswing::service::{JobSpec, ServiceConfig, TenantSpec};
use glasswing::telemetry::validate_exposition;

const NODES: u32 = 4;

fn main() {
    let mut args = std::env::args().skip(1);
    let prom_path = args.next().unwrap_or("telemetry.prom".into());
    let json_path = args.next().unwrap_or("telemetry.json".into());

    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    for seed in [1u64, 2, 3] {
        let records = web_logs(&LogSpec {
            entries: 800,
            hot_urls: 24,
            hot_fraction: 0.2,
            seed,
        });
        dfs.write_records(
            &format!("/tele/in-{seed}"),
            NodeId(0),
            200,
            3,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .expect("write input");
    }

    let cfg = ServiceConfig {
        cache_capacity: 16,
        tenants: vec![TenantSpec::new("alpha", 2), TenantSpec::new("beta", 1)],
        ..ServiceConfig::default()
    };
    let mut service = Service::start(Arc::new(Cluster::new(dfs, NetProfile::unlimited())), cfg);

    // Two fresh datasets, then a repeat of the hot one: a cache hit.
    for (tenant, seed) in [("alpha", 1u64), ("beta", 2), ("alpha", 3), ("alpha", 1)] {
        let mut jcfg = JobConfig::new(format!("/tele/in-{seed}"), "/ignored");
        jcfg.partitions_per_node = 2;
        jcfg.job_deadline = Some(Duration::from_secs(60));
        let ticket = service
            .submit(JobSpec {
                tenant: tenant.into(),
                app: Arc::new(PageviewCount::new()),
                cfg: jcfg,
                workload_seed: seed,
                slots: NODES,
                fault_plan: None,
            })
            .expect("submit");
        let report = ticket.wait().expect("job");
        println!(
            "{tenant}/seed-{seed}: {:?}{}",
            report.turnaround,
            if report.report.served_from_cache {
                " (cache hit)"
            } else {
                ""
            }
        );
        service.pump_telemetry_now();
    }
    service.pump_telemetry_now();

    let tele = service.telemetry().expect("telemetry on by default");
    println!("\nsnapshots captured: {}", tele.snapshots().len());
    println!("determinism digest: {}", tele.determinism_digest());
    for f in tele.findings() {
        println!("health finding: {}", f.describe());
    }

    let prom = tele.prometheus();
    validate_exposition(&prom).expect("exposition lints clean");
    std::fs::write(&prom_path, &prom).expect("write exposition");
    println!("wrote {prom_path} ({} samples)", prom.lines().count());

    let json = tele.snapshot_json().expect("pumped at least once");
    glasswing::trace::validate_json(&json).expect("snapshot JSON valid");
    std::fs::write(&json_path, &json).expect("write snapshot");
    println!("wrote {json_path} ({} bytes)", json.len());

    service.shutdown();
}
