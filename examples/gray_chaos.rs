//! Gray-failure chaos in action (DESIGN.md §3.8): seeded slowdowns,
//! transient stalls and flaky links degrade nodes without killing them,
//! and the speculation controller clones stragglers so a slow node stops
//! dictating the makespan.
//!
//! ```sh
//! cargo run --release --example gray_chaos [report.txt]
//! ```
//!
//! Runs a pinned-seed gray-fault sweep (override with
//! `GW_GRAY_SEEDS="a b c"`), verifying byte-identical output for every
//! seed, then a 4× single-node slowdown with speculation off and on. The
//! summary — including the speculation ledger — is printed and, when a
//! path is given, written there (CI uploads it as an artifact).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use glasswing::core::CounterId;
use glasswing::prelude::*;

const CORPUS: &str = "gray failures slow nodes down without killing them \
                      speculation clones the stragglers queued work";

fn make_cluster(nodes: u32) -> Cluster {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    // One record per DFS block: each map task is one map() call, so the
    // sleepy app's per-record cost is exactly the per-split service time.
    let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..24)
        .map(|i| {
            (
                format!("line{i:03}").into_bytes(),
                CORPUS.as_bytes().to_vec(),
            )
        })
        .collect();
    dfs.write_records(
        "/gray/in",
        NodeId(0),
        120,
        3,
        lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    Cluster::new(dfs, NetProfile::unlimited())
}

fn cfg(speculation: bool) -> JobConfig {
    let mut cfg = JobConfig::new("/gray/in", "/gray/out");
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.heartbeat_interval = Duration::from_millis(10);
    cfg.node_timeout = Duration::from_millis(500);
    cfg.job_deadline = Some(Duration::from_secs(60));
    cfg.speculation = SpeculationConfig {
        enabled: speculation,
        threshold_pct: 100,
        min_runtime: Duration::from_millis(5),
        budget: 8,
        backoff: Duration::from_millis(1),
    };
    cfg
}

/// Wordcount with a 10ms per-record map cost, so the slowdown (and the
/// speculative rescue) dominate scheduler noise.
struct SleepyCount(WordCount);

impl GwApp for SleepyCount {
    fn name(&self) -> &'static str {
        "sleepy-count"
    }
    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        std::thread::sleep(Duration::from_millis(10));
        self.0.map(key, value, emit)
    }
    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.0.combiner()
    }
    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        self.0.reduce(key, values, state, last, emit)
    }
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        self.0.merge_states(acc, other)
    }
}

fn main() {
    let nodes = 4u32;
    let mut out = String::new();

    // Fault-free reference bytes.
    let reference = {
        let cluster = make_cluster(nodes);
        let report = cluster
            .run(Arc::new(WordCount::new()), &cfg(false))
            .unwrap();
        read_job_output(cluster.store(), &report).unwrap()
    };

    // 1. Pinned-seed gray sweep: every seed must finish with zero nodes
    //    lost and byte-identical output.
    let seeds: Vec<u64> = std::env::var("GW_GRAY_SEEDS")
        .ok()
        .map(|s| s.split_whitespace().map(|t| t.parse().unwrap()).collect())
        .unwrap_or_else(|| (0..8).collect());
    writeln!(out, "gray-fault sweep ({} nodes)", nodes).unwrap();
    for &seed in &seeds {
        let plan = FaultPlan::gray_from_seed(seed, nodes);
        let schedule = plan.describe();
        let cluster = make_cluster(nodes).with_fault_plan(plan);
        let start = Instant::now();
        let report = cluster
            .run(Arc::new(WordCount::new()), &cfg(false))
            .unwrap_or_else(|e| panic!("seed {seed} ({schedule}): {e}"));
        let output = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(output, reference, "seed {seed} ({schedule}): diverged");
        assert_eq!(report.nodes_lost, 0, "seed {seed} ({schedule})");
        writeln!(
            out,
            "  seed {seed:2}  {:6.1}ms  slowdown-throttles={:3}  ok  [{schedule}]",
            start.elapsed().as_secs_f64() * 1e3,
            report.metrics.counter_total(CounterId::GraySlowdowns),
        )
        .unwrap();
    }

    // 2. Speculation vs baseline under a 4× single-node slowdown.
    let sleepy_reference = {
        let cluster = make_cluster(nodes);
        let report = cluster
            .run(Arc::new(SleepyCount(WordCount::new())), &cfg(false))
            .unwrap();
        read_job_output(cluster.store(), &report).unwrap()
    };
    writeln!(out, "\n4x slowdown on node 1 (sleepy wordcount)").unwrap();
    let mut timings = Vec::new();
    for speculation in [false, true] {
        let cluster = make_cluster(nodes).with_fault_plan(FaultPlan::empty().with_slowdown(1, 400));
        let start = Instant::now();
        let report = cluster
            .run(Arc::new(SleepyCount(WordCount::new())), &cfg(speculation))
            .unwrap();
        let elapsed = start.elapsed();
        let output = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(output, sleepy_reference, "slowdown run diverged");
        assert_eq!(report.nodes_lost, 0);
        let s = report.speculation;
        assert!(s.balanced(), "ledger out of balance: {s:?}");
        writeln!(
            out,
            "  speculation={:5}  {:6.1}ms  launched={} won={} cancelled={} failed={}",
            speculation,
            elapsed.as_secs_f64() * 1e3,
            s.launched,
            s.won,
            s.cancelled,
            s.failed,
        )
        .unwrap();
        timings.push(elapsed);
    }
    writeln!(
        out,
        "  makespan ratio (off/on): {:.2}x",
        timings[0].as_secs_f64() / timings[1].as_secs_f64()
    )
    .unwrap();

    print!("{out}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &out).unwrap();
        println!("\nreport written to {path}");
    }
}
