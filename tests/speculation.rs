//! Speculative re-execution of stragglers (DESIGN.md §3.8).
//!
//! The acceptance property: under an injected single-node gray slowdown,
//! a speculation-enabled run finishes faster than the identical
//! speculation-disabled run, while both produce output byte-identical to
//! the fault-free reference and the speculation ledger balances
//! (`launched == won + cancelled + failed`). Plus the two guard rails:
//! disabled planes must leave zero trace, and first-finisher-wins de-dup
//! must be idempotent under arbitrary attempt-arrival orders.

use std::sync::Arc;
use std::time::{Duration, Instant};

use glasswing::core::{Combiner, CounterId, LogicalKind, MarkId, Realm};
use glasswing::intermediate::kv::run_from_pairs;
use glasswing::intermediate::{IntermediateConfig, IntermediateStore};
use glasswing::net::{Fabric, RunTag, ShuffleMsg, ShuffleReceiver};
use glasswing::prelude::*;
use proptest::prelude::*;

const NODES: u32 = 4;
const NUM_LINES: usize = 24;
const CORPUS: &str = "speculation hides stragglers by cloning their queued work";

/// One record per DFS block: every map task is one `map()` call, so the
/// per-record sleep below is exactly the per-split service time.
fn write_input(dfs: &Dfs) {
    let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..NUM_LINES)
        .map(|i| {
            (
                format!("line{i:03}").into_bytes(),
                CORPUS.as_bytes().to_vec(),
            )
        })
        .collect();
    dfs.write_records(
        "/spec/in",
        NodeId(0),
        80,
        3,
        lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
}

fn make_cluster() -> Cluster {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    write_input(&dfs);
    Cluster::new(dfs, NetProfile::unlimited())
}

/// Wordcount with a fixed per-record map cost, so task durations are
/// dominated by a knob the test controls rather than by scheduler noise.
struct SleepyCount {
    inner: WordCount,
    ms: u64,
}

impl SleepyCount {
    fn new(ms: u64) -> Self {
        SleepyCount {
            inner: WordCount::new(),
            ms,
        }
    }
}

impl GwApp for SleepyCount {
    fn name(&self) -> &'static str {
        "sleepy-count"
    }
    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        std::thread::sleep(Duration::from_millis(self.ms));
        self.inner.map(key, value, emit)
    }
    fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        self.inner.combiner()
    }
    fn has_reduce(&self) -> bool {
        self.inner.has_reduce()
    }
    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        self.inner.reduce(key, values, state, last, emit)
    }
    fn partition(&self, key: &[u8], num_partitions: u32) -> u32 {
        self.inner.partition(key, num_partitions)
    }
    fn merge_states(&self, acc: &mut Vec<u8>, other: &[u8]) -> bool {
        self.inner.merge_states(acc, other)
    }
}

fn spec_cfg(speculation: bool) -> JobConfig {
    let mut cfg = JobConfig::new("/spec/in", "/spec/out");
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.max_task_retries = 1;
    cfg.heartbeat_interval = Duration::from_millis(10);
    cfg.node_timeout = Duration::from_millis(500);
    cfg.job_deadline = Some(Duration::from_secs(60));
    cfg.speculation = SpeculationConfig {
        enabled: speculation,
        // Recorded durations are claim→complete ages (queue wait
        // included), so the threshold sits at the median itself: waiting
        // for 1.5× would let the straggler reach its queued split before
        // any clone finishes.
        threshold_pct: 100,
        min_runtime: Duration::from_millis(5),
        budget: 8,
        backoff: Duration::from_millis(1),
    };
    cfg
}

#[test]
fn speculation_beats_the_straggler_with_identical_bytes() {
    // Fault-free reference bytes (no plan, no speculation).
    let app = || Arc::new(SleepyCount::new(10));
    let reference = {
        let cluster = make_cluster();
        let report = cluster.run(app(), &spec_cfg(false)).unwrap();
        read_job_output(cluster.store(), &report).unwrap()
    };

    // A 4× slowdown on node 1: every one of its pipeline passages takes
    // 4× the wall time, so each of its ~40ms map tasks leaves queued
    // claims behind that healthy nodes can clone.
    let run = |speculation: bool| {
        let cluster = make_cluster().with_fault_plan(FaultPlan::empty().with_slowdown(1, 400));
        let start = Instant::now();
        let report = cluster.run(app(), &spec_cfg(speculation)).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(report.nodes_lost, 0, "a slow node must never be lost");
        let out = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(
            out, reference,
            "output under slowdown (speculation={speculation}) diverged"
        );
        (elapsed, report)
    };

    // Wall-clock comparison: retry a few times before declaring failure
    // so one unlucky scheduling interleave cannot flake the suite; the
    // correctness assertions above hold on every attempt.
    let mut last = None;
    for _ in 0..3 {
        let (off_elapsed, off_report) = run(false);
        let (on_elapsed, on_report) = run(true);
        assert_eq!(off_report.speculation, SpeculationReport::default());
        let s = on_report.speculation;
        assert!(
            s.balanced(),
            "speculation ledger must balance: {s:?} (launched != won + cancelled + failed)"
        );
        if s.launched >= 1 && on_elapsed < off_elapsed {
            return;
        }
        last = Some((off_elapsed, on_elapsed, s));
    }
    panic!("speculation never beat the straggler: {last:?}");
}

#[test]
fn disabled_planes_leave_zero_trace() {
    // Zero-cost guard: with chaos unarmed and speculation disabled, the
    // gray hooks and the speculation controller must be pure pass-through
    // — no chaos/coordinator lanes, no gray or speculation events, no
    // counters, an all-zero speculation ledger.
    let cluster = make_cluster();
    let report = cluster
        .run(Arc::new(WordCount::new()), &spec_cfg(false))
        .unwrap();

    for (lane, _) in &report.trace.lanes {
        assert!(
            !matches!(lane.realm, Realm::Chaos | Realm::Coordinator),
            "unarmed run created lane {lane:?}"
        );
    }
    for (lane, kind) in report.trace.logical_events() {
        match kind {
            LogicalKind::Instant { mark } => assert!(
                !matches!(
                    mark,
                    MarkId::FaultArmed { .. }
                        | MarkId::CrashFired { .. }
                        | MarkId::ReadFaultFired { .. }
                        | MarkId::NetFaultFired { .. }
                        | MarkId::TaskFaultFired
                        | MarkId::StallFired { .. }
                        | MarkId::SpecLaunched { .. }
                        | MarkId::SpecResolved { .. }
                ),
                "unarmed run emitted {mark:?} on {lane:?}"
            ),
            LogicalKind::Count { counter, .. } => assert!(
                !matches!(
                    counter,
                    CounterId::GraySlowdowns | CounterId::SpecSuperseded
                ),
                "unarmed run bumped {counter:?} on {lane:?}"
            ),
            _ => {}
        }
    }
    assert_eq!(report.metrics.counter_total(CounterId::GraySlowdowns), 0);
    assert_eq!(report.metrics.counter_total(CounterId::SpecSuperseded), 0);
    assert_eq!(report.speculation, SpeculationReport::default());
}

/// The run a given identity always carries, whoever produces it — clones
/// re-execute the same deterministic task, so their bytes are identical.
fn identity_run(block: u32, partition: u32) -> glasswing::intermediate::kv::Run {
    let key = format!("block{block:02}");
    let val = format!("p{partition}");
    run_from_pairs([(key.as_bytes(), val.as_bytes())])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// First-finisher-wins de-dup is idempotent: however many duplicate
    /// attempts each run identity gets, and in whatever order they
    /// arrive, the receiver admits each identity exactly once and the
    /// reduce input is byte-identical.
    #[test]
    fn dedup_is_idempotent_under_arbitrary_arrival_orders(
        dups in proptest::collection::vec(1..=3usize, 8),
        order_keys in proptest::collection::vec(any::<u64>(), 24),
    ) {
        const PARTS: u32 = 2;
        // 8 identities × 1..=3 attempts each, every attempt from a
        // distinct "producer" (as when a clone races its primary).
        let mut msgs: Vec<(RunTag, glasswing::intermediate::kv::Run)> = Vec::new();
        for (i, &d) in dups.iter().enumerate() {
            let (block, partition) = (i as u32 / PARTS, i as u32 % PARTS);
            for attempt in 0..d {
                let tag = RunTag {
                    producer: 1 + attempt as u32,
                    partition,
                    block,
                    lane: 0,
                };
                msgs.push((tag, identity_run(block, partition)));
            }
        }
        // Arbitrary arrival order: argsort by the generated keys.
        let mut perm: Vec<usize> = (0..msgs.len()).collect();
        perm.sort_by_key(|&i| (order_keys[i % order_keys.len()], i));

        let mut fabric: Fabric<ShuffleMsg> = Fabric::new(2, NetProfile::unlimited());
        let store = Arc::new(
            IntermediateStore::new(IntermediateConfig {
                num_partitions: PARTS,
                ..Default::default()
            })
            .unwrap(),
        );
        let receiver = ShuffleReceiver::spawn(
            Arc::new(fabric.endpoint(NodeId(0))),
            Arc::clone(&store),
            1,
        );
        // One sender delivers the permuted attempt stream in order.
        let ep = fabric.endpoint(NodeId(1));
        for &i in &perm {
            let (tag, run) = &msgs[i];
            let records = run.records();
            let msg = ShuffleMsg::Partition {
                partition: tag.partition,
                bytes: run.clone().into_shared(),
                records,
                tag: Some(*tag),
            };
            let wire = msg.wire_bytes();
            ep.send(NodeId(0), msg, wire);
        }
        ep.send(NodeId(0), ShuffleMsg::MapDone, 8);
        let summary = receiver.join();
        prop_assert_eq!(summary.done_markers, 1);
        prop_assert_eq!(summary.runs, 8); // one admission per identity

        store.finish_map().expect("finish_map");
        // The reduce input is the k-way merge over the partition's runs;
        // compare it as the sorted record multiset, which the merge
        // reproduces bit-for-bit.
        for p in 0..PARTS {
            let mut got: Vec<(Vec<u8>, Vec<u8>)> = store
                .partition_runs(p)
                .expect("partition_runs")
                .iter()
                .flat_map(|r| {
                    r.iter()
                        .map(|(k, v)| (k.to_vec(), v.to_vec()))
                        .collect::<Vec<_>>()
                })
                .collect();
            got.sort();
            let mut want: Vec<(Vec<u8>, Vec<u8>)> = (0..4u32)
                .flat_map(|block| {
                    identity_run(block, p)
                        .iter()
                        .map(|(k, v)| (k.to_vec(), v.to_vec()))
                        .collect::<Vec<_>>()
                })
                .collect();
            want.sort();
            prop_assert_eq!(got, want); // reduce input for partition p diverged
        }
    }
}
