//! End-to-end integration tests: every paper application executed on the
//! real Glasswing engine (multi-node, push shuffle, background merging,
//! pipelined reduce) and validated bit-for-bit (or within float tolerance)
//! against its sequential reference implementation.

use std::sync::Arc;

use glasswing::apps::workloads::{self, CorpusSpec, KmeansSpec, LogSpec, MatmulSpec};
use glasswing::apps::{codec, reference, KMeans, MatMul, PageviewCount, TeraSort, WordCount};
use glasswing::prelude::*;

fn dfs_with(records: &workloads::Records, nodes: u32, block: usize) -> Arc<Dfs> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/job/in",
        NodeId(0),
        block,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    dfs
}

fn small_cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/job/in", "/job/out");
    cfg.device_threads = 2;
    cfg.partition_threads = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 18;
    cfg
}

fn run_job(cluster: &Cluster, app: Arc<dyn GwApp>, cfg: &JobConfig) -> Vec<(Vec<u8>, Vec<u8>)> {
    let report = cluster.run(app, cfg).unwrap();
    read_job_output(cluster.store(), &report).unwrap()
}

// ---------------------------------------------------------------------------
// WordCount
// ---------------------------------------------------------------------------

fn check_wordcount(nodes: u32, collector: CollectorKind, combiner: bool) {
    let spec = CorpusSpec {
        lines: 300,
        words_per_line: 10,
        vocabulary: 400,
        zipf_s: 1.05,
        seed: 99,
    };
    let recs = workloads::text_corpus(&spec);
    let cluster = Cluster::new(dfs_with(&recs, nodes, 4096), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.collector = collector;
    cfg.partitions_per_node = 2;
    let app: Arc<dyn GwApp> = if combiner {
        Arc::new(WordCount::new())
    } else {
        Arc::new(WordCount::without_combiner())
    };
    let mut out: Vec<(Vec<u8>, u64)> = run_job(&cluster, app, &cfg)
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

#[test]
fn wordcount_hash_table_with_combiner_4_nodes() {
    check_wordcount(4, CollectorKind::HashTable, true);
}

#[test]
fn wordcount_hash_table_without_combiner_2_nodes() {
    check_wordcount(2, CollectorKind::HashTable, false);
}

#[test]
fn wordcount_buffer_pool_3_nodes() {
    check_wordcount(3, CollectorKind::BufferPool, false);
}

// ---------------------------------------------------------------------------
// Pageview Count
// ---------------------------------------------------------------------------

#[test]
fn pageview_count_matches_reference() {
    let spec = LogSpec {
        entries: 600,
        hot_urls: 20,
        hot_fraction: 0.15,
        seed: 5,
    };
    let logs = workloads::web_logs(&spec);
    let cluster = Cluster::new(dfs_with(&logs, 3, 8192), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.partitions_per_node = 2;
    let mut out: Vec<(Vec<u8>, u64)> = run_job(&cluster, Arc::new(PageviewCount::new()), &cfg)
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::pageviews(&logs));
    // Sparse URL space: most keys unique.
    let total: u64 = out.iter().map(|(_, c)| c).sum();
    assert_eq!(total as usize, spec.entries);
}

// ---------------------------------------------------------------------------
// TeraSort
// ---------------------------------------------------------------------------

#[test]
fn terasort_produces_total_order_across_partitions() {
    let recs = workloads::teragen(1500, 77);
    let nodes = 4u32;
    let cluster = Cluster::new(dfs_with(&recs, nodes, 16 << 10), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.partitions_per_node = 2;
    cfg.output_replication = 1; // the paper's TS output configuration
    let total_partitions = cfg.partitions_per_node * nodes;
    let samples = workloads::sample_keys(&recs, 200, 3);
    let app = Arc::new(TeraSort::new(samples, total_partitions));
    let out = run_job(&cluster, app, &cfg);
    // Exactly the input multiset, globally sorted.
    assert_eq!(out.len(), recs.len());
    assert!(
        out.windows(2).all(|w| w[0] <= w[1]),
        "output must be totally ordered across partition files"
    );
    assert_eq!(out, reference::terasort(&recs));
}

#[test]
fn terasort_single_node_degenerates_gracefully() {
    let recs = workloads::teragen(200, 8);
    let cluster = Cluster::new(dfs_with(&recs, 1, 4 << 10), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.output_replication = 1;
    let app = Arc::new(TeraSort::new(workloads::sample_keys(&recs, 50, 1), 1));
    let out = run_job(&cluster, app, &cfg);
    assert_eq!(out, reference::terasort(&recs));
}

// ---------------------------------------------------------------------------
// K-Means
// ---------------------------------------------------------------------------

fn check_kmeans(nodes: u32, combiner: bool) {
    let spec = KmeansSpec {
        points: 2000,
        dims: 4,
        centers: 12,
        seed: 31,
    };
    let pts = workloads::kmeans_points(&spec);
    let centers = workloads::kmeans_centers(&spec);
    let cluster = Cluster::new(dfs_with(&pts, nodes, 8 << 10), NetProfile::unlimited());
    let cfg = small_cfg();
    let app = KMeans::new(centers.clone(), spec.centers, spec.dims);
    let app = if combiner {
        app
    } else {
        app.without_combiner()
    };
    let app = Arc::new(app);
    let reference_app = KMeans::new(centers, spec.centers, spec.dims);
    let expect = reference::kmeans_iteration(&pts, &reference_app);

    let out = run_job(&cluster, app, &cfg);
    assert_eq!(out.len(), expect.len(), "one record per non-empty center");
    for (k, v) in out {
        let c = codec::dec_key_u32(&k);
        let got = codec::get_f32s(&v);
        let (_, want) = expect
            .iter()
            .find(|(ec, _)| *ec == c)
            .unwrap_or_else(|| panic!("unexpected center {c}"));
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g - w).abs() < 0.01 + w.abs() * 1e-4,
                "center {c}: {g} vs {w} (f32 summation tolerance exceeded)"
            );
        }
    }
}

#[test]
fn kmeans_with_combiner_matches_reference() {
    check_kmeans(3, true);
}

#[test]
fn kmeans_without_combiner_matches_reference() {
    check_kmeans(2, false);
}

// ---------------------------------------------------------------------------
// Matrix Multiply
// ---------------------------------------------------------------------------

fn check_matmul(nodes: u32, combiner: bool) {
    let spec = MatmulSpec {
        n: 32,
        tile: 8,
        seed: 17,
    };
    let w = workloads::matmul_workload(&spec);
    let cluster = Cluster::new(
        dfs_with(&w.records, nodes, 8 << 10),
        NetProfile::unlimited(),
    );
    let cfg = small_cfg();
    let app = MatMul::new(spec.tile);
    let app = if combiner {
        app
    } else {
        app.without_combiner()
    };
    let out = run_job(&cluster, Arc::new(app), &cfg);
    assert_eq!(
        out.len(),
        w.tiles * w.tiles,
        "one output record per result tile"
    );
    let got = reference::assemble_tiles(&out, spec.n, spec.tile);
    let expect = reference::matmul(&w.a, &w.b);
    let diff = reference::max_abs_diff(&got, &expect);
    assert!(diff < 1e-3, "max elementwise error {diff}");
}

#[test]
fn matmul_with_combiner_matches_reference() {
    check_matmul(2, true);
}

#[test]
fn matmul_without_combiner_matches_reference() {
    check_matmul(3, false);
}

// ---------------------------------------------------------------------------
// Cross-cutting engine behaviour on real apps
// ---------------------------------------------------------------------------

#[test]
fn throttled_network_does_not_change_results() {
    let spec = CorpusSpec {
        lines: 120,
        vocabulary: 100,
        ..Default::default()
    };
    let recs = workloads::text_corpus(&spec);
    // A slow (but not glacial) fabric: results must be identical.
    let cluster = Cluster::new(dfs_with(&recs, 2, 4096), NetProfile::slow_test(20.0e6));
    let mut out: Vec<(Vec<u8>, u64)> = run_job(&cluster, Arc::new(WordCount::new()), &small_cfg())
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

#[test]
fn simulated_gpu_cluster_matches_reference() {
    let spec = KmeansSpec {
        points: 800,
        dims: 3,
        centers: 6,
        seed: 13,
    };
    let pts = workloads::kmeans_points(&spec);
    let centers = workloads::kmeans_centers(&spec);
    let cluster = Cluster::new(dfs_with(&pts, 2, 8 << 10), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.device = DeviceProfile::gtx480();
    cfg.timing = TimingMode::Modeled;
    let app = Arc::new(KMeans::new(centers.clone(), spec.centers, spec.dims));
    let report = cluster.run(app, &cfg).unwrap();
    let out = read_job_output(cluster.store(), &report).unwrap();
    let expect = reference::kmeans_iteration(&pts, &KMeans::new(centers, spec.centers, spec.dims));
    assert_eq!(out.len(), expect.len());
    // GPU pipeline exercises Stage/Retrieve.
    let timers = report.map_timers_total();
    assert!(timers.modeled(glasswing::core::StageId::Stage) > std::time::Duration::ZERO);
}

#[test]
fn many_partitions_per_node_preserve_results() {
    let spec = CorpusSpec {
        lines: 150,
        vocabulary: 200,
        ..Default::default()
    };
    let recs = workloads::text_corpus(&spec);
    let cluster = Cluster::new(dfs_with(&recs, 2, 2048), NetProfile::unlimited());
    let mut cfg = small_cfg();
    cfg.partitions_per_node = 4;
    cfg.merger_threads = 4;
    let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
    assert_eq!(report.output_files().len(), 8);
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}
