//! Property-based tests of the whole stack.
//!
//! The strongest invariant: a shuffle-only (TeraSort-style) job over an
//! arbitrary record set must output exactly the sorted input multiset —
//! exercising input splitting, the map pipeline, partitioning, the push
//! shuffle, compression, spilling, k-way merging and output writing in one
//! property.

use std::sync::Arc;

use proptest::prelude::*;

use glasswing::apps::workloads::sample_keys;
use glasswing::apps::{codec, TeraSort, WordCount};
use glasswing::prelude::*;

fn write_input(records: &[(Vec<u8>, Vec<u8>)], nodes: u32, block: usize) -> Arc<Dfs> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/p/in",
        NodeId(0),
        block,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    dfs
}

fn tiny_cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/p/in", "/p/out");
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.collector_capacity = 1 << 16;
    cfg.cache_threshold = 1 << 12;
    cfg.output_replication = 1;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Shuffle-only jobs are a sorting identity over any record multiset.
    #[test]
    fn terasort_is_a_sorting_identity(
        records in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..12),
             proptest::collection::vec(any::<u8>(), 0..24)),
            1..120),
        nodes in 1u32..4,
        block in 64usize..1024,
    ) {
        let dfs = write_input(&records, nodes, block);
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let mut cfg = tiny_cfg();
        cfg.partitions_per_node = 2;
        let samples = sample_keys(&records, 16.min(records.len()), 1);
        let app = Arc::new(TeraSort::new(samples, nodes * 2));
        let report = cluster.run(app, &cfg).unwrap();
        let out = read_job_output(cluster.store(), &report).unwrap();
        let mut expect = records.clone();
        expect.sort();
        prop_assert_eq!(out, expect);
    }

    /// Word counting over arbitrary ASCII lines matches a straightforward
    /// recount, for any cluster size and buffering level.
    #[test]
    fn wordcount_totals_are_exact(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b' '), 97u8..=102], 0..40),
            1..60),
        nodes in 1u32..4,
        buffering in 0usize..3,
    ) {
        let records: Vec<(Vec<u8>, Vec<u8>)> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| (format!("{i:04}").into_bytes(), l.clone()))
            .collect();
        let dfs = write_input(&records, nodes, 256);
        let cluster = Cluster::new(dfs, NetProfile::unlimited());
        let mut cfg = tiny_cfg();
        cfg.buffering = [Buffering::Single, Buffering::Double, Buffering::Triple][buffering];
        let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
        let mut got: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, codec::dec_u64(&v)))
            .collect();
        got.sort();
        let expect = glasswing::apps::reference::wordcount(&records);
        prop_assert_eq!(got, expect);
    }
}
