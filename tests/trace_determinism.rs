//! The observability plane's determinism contract (ISSUE: satellite 1).
//!
//! Events carry logical identity (chunk sequence numbers, typed marks,
//! counter deltas) separately from wall timing; `Trace::logical_events`
//! strips the timing. For a fixed `(seed, JobConfig)` the projected
//! stream must be identical
//!
//! * across repeated runs (scheduling noise, token contention and
//!   allocator behaviour must not leak into event identity), and
//! * across buffering levels B ∈ {1, 2, 3} — deeper buffering changes
//!   *when* stages wait, never *what* the pipeline does, because the
//!   executor brackets every token acquire in a wait span whether or not
//!   it blocks.
//!
//! The contract is per-lane ordering only: cross-lane interleaving is
//! undefined, which is why the projection walks lanes in canonical
//! `LaneId` order rather than by timestamp.

use std::sync::Arc;

use proptest::prelude::*;

use glasswing::apps::WordCount;
use glasswing::core::{LaneId, LogicalKind};
use glasswing::prelude::*;

/// Deterministic pseudo-text: the seed fully determines every line, so
/// two runs over `input(seed, lines)` read byte-identical corpora.
fn input_lines(seed: u64, lines: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    const WORDS: [&str; 8] = [
        "glasswing",
        "scales",
        "mapreduce",
        "vertically",
        "horizontally",
        "pipeline",
        "shuffle",
        "kernel",
    ];
    (0..lines)
        .map(|i| {
            let n = 1 + (next() % 6) as usize;
            let line = (0..n)
                .map(|_| WORDS[(next() % WORDS.len() as u64) as usize])
                .collect::<Vec<_>>()
                .join(" ");
            (format!("{i:04}").into_bytes(), line.into_bytes())
        })
        .collect()
}

fn job_config(buffering: Buffering) -> JobConfig {
    let mut cfg = JobConfig::new("/det/in", "/det/out");
    // Single node, one thread per pool: every lane keeps exactly one
    // writer, so per-lane emission order is program order.
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.buffering = buffering;
    cfg.collector_capacity = 1 << 16;
    cfg.cache_threshold = 1 << 12;
    cfg.output_replication = 1;
    cfg
}

/// Run the job and project the trace down to its logical event stream.
fn logical_run(records: &[(Vec<u8>, Vec<u8>)], buffering: Buffering) -> Vec<(LaneId, LogicalKind)> {
    logical_run_lanes(records, buffering, 1)
}

/// As [`logical_run`], with the map kernel slot widened to `kernel_lanes`
/// (DESIGN.md §3.9). The kernel slot is the one whose widening keeps the
/// full logical stream deterministic out of the box: every sub-lane is a
/// single-writer trace lane and chunk→lane assignment is round-robin by
/// sequence number. (Widened *input* lanes overlap DFS reads, which
/// interleaves `DfsRead` marks on the shared per-node storage lane in
/// wall order; widened *partition* lanes race run-pool reuse. Output
/// bytes and per-stage-lane chunk streams stay deterministic either way.)
fn logical_run_lanes(
    records: &[(Vec<u8>, Vec<u8>)],
    buffering: Buffering,
    kernel_lanes: usize,
) -> Vec<(LaneId, LogicalKind)> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/det/in",
        NodeId(0),
        256,
        1,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = job_config(buffering);
    cfg.lane_plan.kernel = kernel_lanes;
    let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
    assert!(report.trace.event_count() > 0, "armed tracer saw no events");
    report.trace.logical_events()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Three runs of the same `(seed, JobConfig)` produce identical
    /// logical event sequences, at every buffering level.
    #[test]
    fn repeated_runs_replay_the_same_logical_stream(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let first = logical_run(&records, buffering);
            for _ in 0..2 {
                prop_assert_eq!(&logical_run(&records, buffering), &first);
            }
        }
    }

    /// The buffering level is invisible to event identity: B ∈ {1,2,3}
    /// replay the exact same logical stream (only wait *durations* move).
    #[test]
    fn buffering_level_does_not_change_the_logical_stream(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        let single = logical_run(&records, Buffering::Single);
        prop_assert_eq!(&logical_run(&records, Buffering::Double), &single);
        prop_assert_eq!(&logical_run(&records, Buffering::Triple), &single);
    }

    /// Multi-lane stages keep the contract (DESIGN.md §3.9): with the map
    /// kernel slot widened to 2 lanes, repeated runs of the same
    /// `(seed, JobConfig)` replay the same logical stream at every
    /// buffering level — the round-robin seq→lane assignment and the
    /// seq-ordered claim/admission turns leave nothing for the scheduler
    /// to reorder within any single-writer lane.
    #[test]
    fn multi_lane_kernel_replays_the_same_logical_stream(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let first = logical_run_lanes(&records, buffering, 2);
            prop_assert_eq!(&logical_run_lanes(&records, buffering, 2), &first);
        }
    }
}

/// The widened kernel slot is visible in the trace exactly as specified:
/// a `StageLanes` mark on kernel sub-lane 0 announces the width, both
/// sub-lanes carry chunk spans, and even seqs land on lane 0 / odd seqs
/// on lane 1 (round-robin by sequence number).
#[test]
fn widened_kernel_slot_traces_sub_lanes_and_round_robin_assignment() {
    use glasswing::core::StageId;
    let records = input_lines(7, 24);
    let events = logical_run_lanes(&records, Buffering::Double, 2);
    let kernel_lane = |l: u32, id: &LaneId| match id.realm {
        glasswing::core::Realm::Pipeline { stage, lane, .. } => {
            stage == StageId::Kernel && lane == l
        }
        _ => false,
    };
    assert!(
        events.iter().any(|(id, kind)| kernel_lane(0, id)
            && matches!(
                kind,
                LogicalKind::Instant {
                    mark: glasswing::core::MarkId::StageLanes { lanes: 2, .. }
                }
            )),
        "missing StageLanes mark on kernel sub-lane 0"
    );
    for (id, kind) in &events {
        for lane in [0u32, 1] {
            if kernel_lane(lane, id) {
                if let LogicalKind::Begin {
                    span: glasswing::core::SpanId::Chunk { seq },
                } = kind
                {
                    assert_eq!(
                        (*seq % 2) as u32,
                        lane,
                        "chunk {seq} on kernel sub-lane {lane}"
                    );
                }
            }
        }
    }
    assert!(
        events.iter().any(|(id, kind)| kernel_lane(1, id)
            && matches!(
                kind,
                LogicalKind::Begin {
                    span: glasswing::core::SpanId::Chunk { .. }
                }
            )),
        "kernel sub-lane 1 carried no chunks"
    );
}
