//! The observability plane's determinism contract (ISSUE: satellite 1).
//!
//! Events carry logical identity (chunk sequence numbers, typed marks,
//! counter deltas) separately from wall timing; `Trace::logical_events`
//! strips the timing. For a fixed `(seed, JobConfig)` the projected
//! stream must be identical
//!
//! * across repeated runs (scheduling noise, token contention and
//!   allocator behaviour must not leak into event identity), and
//! * across buffering levels B ∈ {1, 2, 3} — deeper buffering changes
//!   *when* stages wait, never *what* the pipeline does, because the
//!   executor brackets every token acquire in a wait span whether or not
//!   it blocks.
//!
//! The contract is per-lane ordering only: cross-lane interleaving is
//! undefined, which is why the projection walks lanes in canonical
//! `LaneId` order rather than by timestamp.

use std::sync::Arc;

use proptest::prelude::*;

use glasswing::apps::WordCount;
use glasswing::core::{LaneId, LogicalKind};
use glasswing::prelude::*;

/// Deterministic pseudo-text: the seed fully determines every line, so
/// two runs over `input(seed, lines)` read byte-identical corpora.
fn input_lines(seed: u64, lines: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    const WORDS: [&str; 8] = [
        "glasswing",
        "scales",
        "mapreduce",
        "vertically",
        "horizontally",
        "pipeline",
        "shuffle",
        "kernel",
    ];
    (0..lines)
        .map(|i| {
            let n = 1 + (next() % 6) as usize;
            let line = (0..n)
                .map(|_| WORDS[(next() % WORDS.len() as u64) as usize])
                .collect::<Vec<_>>()
                .join(" ");
            (format!("{i:04}").into_bytes(), line.into_bytes())
        })
        .collect()
}

fn job_config(buffering: Buffering) -> JobConfig {
    let mut cfg = JobConfig::new("/det/in", "/det/out");
    // Single node, one thread per pool: every lane keeps exactly one
    // writer, so per-lane emission order is program order.
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.buffering = buffering;
    cfg.collector_capacity = 1 << 16;
    cfg.cache_threshold = 1 << 12;
    cfg.output_replication = 1;
    cfg
}

/// Run the job and project the trace down to its logical event stream.
fn logical_run(records: &[(Vec<u8>, Vec<u8>)], buffering: Buffering) -> Vec<(LaneId, LogicalKind)> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/det/in",
        NodeId(0),
        256,
        1,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let report = cluster
        .run(Arc::new(WordCount::new()), &job_config(buffering))
        .unwrap();
    assert!(report.trace.event_count() > 0, "armed tracer saw no events");
    report.trace.logical_events()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Three runs of the same `(seed, JobConfig)` produce identical
    /// logical event sequences, at every buffering level.
    #[test]
    fn repeated_runs_replay_the_same_logical_stream(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let first = logical_run(&records, buffering);
            for _ in 0..2 {
                prop_assert_eq!(&logical_run(&records, buffering), &first);
            }
        }
    }

    /// The buffering level is invisible to event identity: B ∈ {1,2,3}
    /// replay the exact same logical stream (only wait *durations* move).
    #[test]
    fn buffering_level_does_not_change_the_logical_stream(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        let single = logical_run(&records, Buffering::Single);
        prop_assert_eq!(&logical_run(&records, Buffering::Double), &single);
        prop_assert_eq!(&logical_run(&records, Buffering::Triple), &single);
    }
}
