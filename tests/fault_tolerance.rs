//! Task-failure handling (paper §III-E).
//!
//! The original Glasswing "currently does not handle task failure", noting
//! that "the standard approach ... is re-execution: if a task fails, its
//! partial output is discarded and its input is rescheduled for
//! processing. Addition of this functionality would consist of bookkeeping
//! only". This reproduction implements that bookkeeping: map chunks whose
//! kernel fails are discarded (collector reset) and re-executed up to
//! `max_task_retries` times; exhausted budgets fail the job cleanly — on a
//! multi-node cluster a dying node must not hang its peers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use glasswing::apps::codec::{dec_u64, enc_u64};
use glasswing::core::{EngineError, PipelineKind, StageId};
use glasswing::prelude::*;

/// Word count whose map panics the first `failures` times it sees the
/// poison marker, then behaves normally — a transient task fault.
struct FlakyWordCount {
    remaining_failures: AtomicUsize,
    poison: &'static [u8],
}

impl FlakyWordCount {
    fn new(failures: usize, poison: &'static [u8]) -> Self {
        FlakyWordCount {
            remaining_failures: AtomicUsize::new(failures),
            poison,
        }
    }
}

impl GwApp for FlakyWordCount {
    fn name(&self) -> &'static str {
        "flaky-wordcount"
    }

    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            if word == self.poison {
                let left = self.remaining_failures.load(Ordering::SeqCst);
                if left > 0
                    && self
                        .remaining_failures
                        .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    panic!("injected transient map fault");
                }
            }
            emit.emit(word, &enc_u64(1));
        }
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
        }
        let mut acc = dec_u64(state);
        for v in values {
            acc += dec_u64(v);
        }
        state.copy_from_slice(&enc_u64(acc));
        if last {
            emit.emit(key, &enc_u64(acc));
        }
    }
}

/// Reducer that always panics — a deterministic reduce-side fault.
struct PoisonReduce;
impl GwApp for PoisonReduce {
    fn name(&self) -> &'static str {
        "poison-reduce"
    }
    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        emit.emit(key, value);
    }
    fn reduce(&self, _: &[u8], _: &[&[u8]], _: &mut Vec<u8>, _: bool, _: &Emit<'_>) {
        panic!("injected reduce fault");
    }
}

/// Word count whose reduce panics the first `failures` calls, then behaves
/// normally — a transient reduce-side fault.
struct FlakyReduce {
    remaining_failures: AtomicUsize,
}

impl FlakyReduce {
    fn new(failures: usize) -> Self {
        FlakyReduce {
            remaining_failures: AtomicUsize::new(failures),
        }
    }
}

impl GwApp for FlakyReduce {
    fn name(&self) -> &'static str {
        "flaky-reduce"
    }
    fn map(&self, _key: &[u8], value: &[u8], emit: &Emit<'_>) {
        for word in value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            emit.emit(word, &enc_u64(1));
        }
    }
    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        let left = self.remaining_failures.load(Ordering::SeqCst);
        if left > 0
            && self
                .remaining_failures
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            panic!("injected transient reduce fault");
        }
        if state.is_empty() {
            state.extend_from_slice(&enc_u64(0));
        }
        let mut acc = dec_u64(state);
        for v in values {
            acc += dec_u64(v);
        }
        state.copy_from_slice(&enc_u64(acc));
        if last {
            emit.emit(key, &enc_u64(acc));
        }
    }
}

fn cluster_with_lines(nodes: u32, lines: &[&str]) -> Cluster {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    let records: Vec<(Vec<u8>, Vec<u8>)> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("{i:04}").into_bytes(), l.as_bytes().to_vec()))
        .collect();
    dfs.write_records(
        "/ft/in",
        NodeId(0),
        64,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    Cluster::new(dfs, NetProfile::unlimited())
}

fn cfg(retries: usize) -> JobConfig {
    let mut cfg = JobConfig::new("/ft/in", "/ft/out");
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.max_task_retries = retries;
    cfg
}

const LINES: &[&str] = &[
    "alpha beta gamma",
    "beta POISON beta",
    "gamma alpha alpha",
    "delta beta gamma",
];

#[test]
fn transient_map_fault_is_reexecuted_and_output_is_correct() {
    let cluster = cluster_with_lines(2, LINES);
    let app = Arc::new(FlakyWordCount::new(2, b"POISON"));
    let report = cluster.run(app, &cfg(3)).unwrap();
    let retried: usize = report.nodes.iter().map(|n| n.map.tasks_retried).sum();
    assert!(retried >= 1, "the fault must have triggered a re-execution");
    let mut out: Vec<(Vec<u8>, u64)> =
        glasswing::core::cluster::read_job_output(cluster.store(), &report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, dec_u64(&v)))
            .collect();
    out.sort();
    // Discard-and-reexecute must not duplicate the poisoned chunk's output.
    let beta = out.iter().find(|(k, _)| k == b"beta").unwrap().1;
    assert_eq!(
        beta, 4,
        "partial output of failed attempts must be discarded"
    );
    let alpha = out.iter().find(|(k, _)| k == b"alpha").unwrap().1;
    assert_eq!(alpha, 3);
    assert_eq!(out.iter().find(|(k, _)| k == b"POISON").unwrap().1, 1);
}

#[test]
fn exhausted_retry_budget_fails_the_job_cleanly() {
    let cluster = cluster_with_lines(1, LINES);
    // More injected failures than the retry budget allows.
    let app = Arc::new(FlakyWordCount::new(10, b"POISON"));
    let err = cluster.run(app, &cfg(1)).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed(_)), "got: {err}");
}

#[test]
fn map_fault_on_one_node_does_not_hang_the_cluster() {
    // 3 nodes; the fault fires on whichever node claims the poisoned
    // split. Without the failure-path MapDone broadcast the other two
    // nodes would wait forever in their merge phase.
    let cluster = cluster_with_lines(3, LINES);
    let app = Arc::new(FlakyWordCount::new(10, b"POISON"));
    let start = std::time::Instant::now();
    let err = cluster.run(app, &cfg(0)).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed(_)), "got: {err}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "failure must propagate promptly, not deadlock"
    );
}

#[test]
fn zero_retries_matches_paper_behaviour() {
    // With the budget at 0 (the paper's unmodified system) a single
    // transient fault already kills the job.
    let cluster = cluster_with_lines(1, LINES);
    let app = Arc::new(FlakyWordCount::new(1, b"POISON"));
    let err = cluster.run(app, &cfg(0)).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed(_)));
}

#[test]
fn reduce_fault_fails_cleanly_with_zero_budget() {
    // The paper's unmodified behaviour: no reduce re-execution.
    let cluster = cluster_with_lines(2, LINES);
    let err = cluster.run(Arc::new(PoisonReduce), &cfg(0)).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed(_)), "got: {err}");
}

#[test]
fn deterministic_reduce_fault_exhausts_its_budget() {
    // A reducer that fails every attempt burns the whole budget, then
    // fails the job cleanly (no hang, no partial success).
    let cluster = cluster_with_lines(2, LINES);
    let err = cluster.run(Arc::new(PoisonReduce), &cfg(3)).unwrap_err();
    match err {
        EngineError::TaskFailed(msg) => {
            assert!(msg.contains("attempt"), "got: {msg}");
        }
        other => panic!("expected TaskFailed, got: {other}"),
    }
}

#[test]
fn transient_reduce_fault_is_reexecuted_and_output_is_correct() {
    let cluster = cluster_with_lines(2, LINES);
    let app = Arc::new(FlakyReduce::new(2));
    let mut job_cfg = cfg(3);
    // Force multi-chunk keys so retries must also restore cross-launch
    // scratch state, not just discard emitted records.
    job_cfg.reduce_max_values_per_chunk = 2;
    let report = cluster.run(app, &job_cfg).unwrap();
    let retried: usize = report.nodes.iter().map(|n| n.reduce.tasks_retried).sum();
    assert!(retried >= 1, "the fault must have triggered a re-execution");
    let mut out: Vec<(Vec<u8>, u64)> =
        glasswing::core::cluster::read_job_output(cluster.store(), &report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, dec_u64(&v)))
            .collect();
    out.sort();
    let count = |word: &[u8]| out.iter().find(|(k, _)| k == word).unwrap().1;
    assert_eq!(
        count(b"alpha"),
        3,
        "retried reduce must not lose or duplicate"
    );
    assert_eq!(count(b"beta"), 4);
    assert_eq!(count(b"gamma"), 3);
    assert_eq!(count(b"delta"), 1);
    assert_eq!(count(b"POISON"), 1);
}

#[test]
fn exhausted_budget_surfaces_task_failure_before_any_deadline() {
    // A deterministic fault burns the whole re-execution budget on a
    // multi-node cluster. The job must surface `TaskFailed` on its own —
    // the watchdog deadline is armed purely as a hang detector and must
    // never be the thing that fires.
    let cluster = cluster_with_lines(2, LINES);
    let app = Arc::new(FlakyWordCount::new(100, b"POISON"));
    let mut job_cfg = cfg(2);
    job_cfg.job_deadline = Some(std::time::Duration::from_secs(30));
    let start = std::time::Instant::now();
    let err = cluster.run(app, &job_cfg).unwrap_err();
    match err {
        EngineError::TaskFailed(msg) => {
            assert!(
                msg.contains("attempt"),
                "the error must account for the exhausted budget, got: {msg}"
            );
        }
        EngineError::JobTimeout(_) => {
            panic!("retry exhaustion hung until the watchdog killed the job")
        }
        other => panic!("expected TaskFailed, got: {other}"),
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "exhaustion must fail fast, not crawl toward the deadline"
    );
}

#[test]
fn retried_tasks_keep_job_report_fault_accounting_consistent() {
    // A job that survives transient faults must report them — and only
    // them: the discarded attempts may not inflate the trace-derived
    // chunk accounting, since a retried chunk completes its stage once.
    let cluster = cluster_with_lines(2, LINES);
    let app = Arc::new(FlakyWordCount::new(2, b"POISON"));
    let report = cluster.run(app, &cfg(3)).unwrap();
    let retried: usize = report.nodes.iter().map(|n| n.map.tasks_retried).sum();
    assert!(retried >= 1, "the fault must be visible in the report");
    let splits: usize = report.nodes.iter().map(|n| n.map.splits).sum();
    assert_eq!(
        report
            .metrics
            .chunks_total(PipelineKind::Map, StageId::Kernel),
        splits as u64,
        "each split's chunk must be accounted exactly once despite retries"
    );
    assert_eq!(
        report
            .metrics
            .chunks_total(PipelineKind::Map, StageId::Stage),
        report
            .metrics
            .chunks_total(PipelineKind::Map, StageId::Kernel),
        "fused-stage accounting must survive the retry path"
    );
}

#[test]
fn retries_do_not_perturb_healthy_jobs() {
    let cluster = cluster_with_lines(2, LINES);
    let app = Arc::new(FlakyWordCount::new(0, b"POISON"));
    let report = cluster.run(app, &cfg(3)).unwrap();
    assert_eq!(
        report
            .nodes
            .iter()
            .map(|n| n.map.tasks_retried)
            .sum::<usize>(),
        0
    );
}
