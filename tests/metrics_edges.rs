//! `MetricsSummary` edge cases (ISSUE 5: satellite 3): the rollup's
//! accessors must answer **zero** — never panic, never "absent" — for
//! anything the trace did not record. Three shapes exercise that:
//!
//! * an empty trace (no lanes at all),
//! * a zero-chunk job (valid input path, no records → no splits), and
//! * a single-node unified-memory run, where Stage/Retrieve are fused
//!   out of the graph: their chunk counts must equal the kernel's (via
//!   fused passages) while everything the fused stages never did —
//!   token waits, counters — still reads back as zero.

use std::sync::Arc;

use glasswing::apps::WordCount;
use glasswing::core::{CounterId, MetricsSummary, PipelineKind, StageId, Trace};
use glasswing::prelude::*;

#[test]
fn empty_trace_rolls_up_to_zeros() {
    let m = MetricsSummary::from_trace(&Trace::default());
    for kind in [PipelineKind::Map, PipelineKind::Reduce] {
        for stage in StageId::ALL {
            assert_eq!(m.chunks(0, kind, stage), 0);
            assert_eq!(m.chunks_total(kind, stage), 0);
        }
    }
    assert_eq!(m.counter(0, CounterId::DfsReadBytes), 0);
    assert_eq!(m.counter_total(CounterId::ShuffleSendMsgs), 0);
    assert_eq!(m.token_wait_total(), std::time::Duration::ZERO);
}

fn run_job(records: &[(Vec<u8>, Vec<u8>)]) -> JobReport {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/edge/in",
        NodeId(0),
        256,
        1,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/edge/in", "/edge/out");
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.output_replication = 1;
    cluster.run(Arc::new(WordCount::new()), &cfg).unwrap()
}

#[test]
fn zero_chunk_job_reports_zero_chunks_not_absence() {
    let report = run_job(&[]);
    let m = &report.metrics;
    // No input records → the map pipeline saw no chunks, but every
    // accessor still answers (with zero) for every stage.
    for stage in StageId::ALL {
        assert_eq!(m.chunks(0, PipelineKind::Map, stage), 0, "{stage:?}");
    }
    assert_eq!(m.counter(0, CounterId::ShuffleRetransmit), 0);
    // The analysis layer folds the same trace without panicking: the
    // pipelines still ran (end-of-input probes, finish hooks), but no
    // stage accounted a single chunk, so the advisor has no model.
    let a = &report.analysis;
    if let Some(p) = a.pipeline(0, PipelineKind::Map) {
        for s in &p.stages {
            assert_eq!(s.chunks, 0, "{:?}", s.stage);
            assert_eq!(s.service.count, 0, "{:?}", s.stage);
        }
    }
    assert_eq!(a.advice.bottleneck, None);
    assert!(a.to_report().contains("glasswing perf analysis"));
}

#[test]
fn fused_single_node_run_counts_fused_stages_as_zero_not_absent() {
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..32)
        .map(|i| {
            (
                format!("{i:04}").into_bytes(),
                format!("alpha beta gamma delta{}", i % 7).into_bytes(),
            )
        })
        .collect();
    let report = run_job(&records);
    let m = &report.metrics;

    // The host profile is unified memory: Stage and Retrieve were fused
    // out (no thread, no spans), yet their chunk counts match the
    // kernel's in both pipelines via fused-passage marks.
    for kind in [PipelineKind::Map, PipelineKind::Reduce] {
        let kernel = m.chunks(0, kind, StageId::Kernel);
        assert!(kernel > 0, "{kind:?} kernel saw no chunks");
        assert_eq!(m.chunks(0, kind, StageId::Stage), kernel);
        assert_eq!(m.chunks(0, kind, StageId::Retrieve), kernel);
    }

    // What the fused stages never did still reads back as zero.
    let a = &report.analysis;
    for kind in [PipelineKind::Map, PipelineKind::Reduce] {
        let p = a.pipeline(0, kind).expect("pipeline present");
        for stage in [StageId::Stage, StageId::Retrieve] {
            let sp = p.stage(stage).expect("fused stage entry present");
            assert!(sp.fused, "{kind:?}/{stage:?} should be fused");
            assert_eq!(sp.busy_ns, 0);
            assert_eq!(sp.token_waits, 0);
            assert_eq!(sp.token_wait_ns, 0);
            assert_eq!(sp.service.count, 0);
        }
    }

    // Single node: nothing shuffled over the wire, counters answer zero.
    assert_eq!(m.counter(0, CounterId::ShuffleRetransmit), 0);
    // The new arena counters are present (the job really built runs).
    assert!(m.counter(0, CounterId::RunPoolHit) + m.counter(0, CounterId::RunPoolMiss) > 0);
}
