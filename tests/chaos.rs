//! Whole-node fault tolerance under seeded, deterministic fault injection.
//!
//! Every test runs a real multi-node wordcount twice: once fault-free for
//! a byte-identical reference, once under an armed [`FaultPlan`]. The
//! invariant: an armed job either produces output **byte-identical** to
//! the fault-free run, or fails with a clean typed error within the
//! watchdog deadline — it never hangs, never duplicates records, never
//! writes partial output that is reported as success.

use std::sync::Arc;
use std::time::Duration;

use glasswing::core::{CounterId, EngineError, LogicalKind, MarkId};
use glasswing::prelude::*;

const CORPUS: &str = "the quick brown fox jumps over the lazy dog \
                      the dog barks and the fox runs away over the hill \
                      pack my box with five dozen liquor jugs";
const NUM_LINES: usize = 48;
const NODES: u32 = 4;

/// Input small enough to stay fast but split into enough DFS blocks
/// (block size 300) that every node maps several splits — so a node that
/// crashes mid-map always leaves claimed work behind to reschedule.
fn write_input(dfs: &Dfs) {
    let lines: Vec<(Vec<u8>, Vec<u8>)> = (0..NUM_LINES)
        .map(|i| {
            (
                format!("line{i:03}").into_bytes(),
                CORPUS.as_bytes().to_vec(),
            )
        })
        .collect();
    dfs.write_records(
        "/chaos/in",
        NodeId(0),
        300,
        3,
        lines.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
}

fn make_cluster(nodes: u32) -> Cluster {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    write_input(&dfs);
    Cluster::new(dfs, NetProfile::unlimited())
}

fn chaos_cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/chaos/in", "/chaos/out");
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 16;
    cfg.max_task_retries = 1;
    cfg.heartbeat_interval = Duration::from_millis(10);
    cfg.node_timeout = Duration::from_millis(200);
    // Backstop only: recovery must resolve every fault long before this.
    cfg.job_deadline = Some(Duration::from_secs(60));
    // CI re-runs the whole chaos plane with a widened kernel slot
    // (GW_CHAOS_LANES=2) to prove recovery and de-dup are lane-agnostic.
    if let Ok(lanes) = std::env::var("GW_CHAOS_LANES") {
        cfg.lane_plan.kernel = lanes
            .trim()
            .parse()
            .expect("GW_CHAOS_LANES must be a lane count");
    }
    cfg
}

/// The fault-free reference output (fresh cluster, unarmed, same input).
fn reference_output(nodes: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    let cluster = make_cluster(nodes);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    read_job_output(cluster.store(), &report).unwrap()
}

#[test]
fn fault_plans_are_deterministic_per_seed() {
    for seed in 0..32u64 {
        let a = FaultPlan::from_seed(seed, NODES);
        let b = FaultPlan::from_seed(seed, NODES);
        assert_eq!(a.seed(), seed);
        assert_eq!(a.describe(), b.describe(), "seed {seed} not reproducible");
    }
    // Different seeds must not all collapse onto one schedule.
    let schedules: std::collections::HashSet<String> = (0..32u64)
        .map(|s| FaultPlan::from_seed(s, NODES).describe())
        .collect();
    assert!(
        schedules.len() > 8,
        "only {} distinct schedules",
        schedules.len()
    );
}

#[test]
fn node_crash_mid_map_recovers_byte_identical_output() {
    let reference = reference_output(NODES);

    let plan = FaultPlan::crash(2, CrashSite::Kernel, 0);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();

    assert_eq!(report.nodes_lost, 1, "node 2 must be declared dead");
    assert!(
        report.splits_rescheduled >= 1,
        "its claimed splits must be requeued"
    );
    assert_eq!(report.nodes.len(), (NODES - 1) as usize, "survivors report");
    // All 8 global partitions still written (adoption covered node 2's).
    assert_eq!(report.output_files().len(), (NODES * 2) as usize);

    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference, "recovered output must be byte-identical");
}

#[test]
fn crashes_at_every_pipeline_stage_recover() {
    let reference = reference_output(NODES);
    for site in [
        CrashSite::Read,
        CrashSite::Stage,
        CrashSite::Kernel,
        CrashSite::Retrieve,
        CrashSite::Shuffle,
    ] {
        let plan = FaultPlan::crash(1, site, 1);
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        let report = cluster
            .run(Arc::new(WordCount::new()), &chaos_cfg())
            .unwrap_or_else(|e| panic!("crash at {} not recovered: {e}", site.name()));
        assert_eq!(report.nodes_lost, 1, "site {}", site.name());
        let out = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(
            out,
            reference,
            "output differs after crash at {}",
            site.name()
        );
    }
}

#[test]
fn seeded_sweep_is_correct_or_fails_cleanly() {
    // The acceptance sweep: ~20 random fault schedules. Each run either
    // matches the fault-free reference byte-for-byte or returns a typed
    // error well inside the watchdog deadline. Nothing may hang, panic,
    // or silently drop/duplicate records.
    let reference = reference_output(NODES);
    let mut recovered = 0usize;
    for seed in 0..20u64 {
        let plan = FaultPlan::from_seed(seed, NODES);
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        match cluster.run(Arc::new(WordCount::new()), &chaos_cfg()) {
            Ok(report) => {
                let out = read_job_output(cluster.store(), &report).unwrap();
                assert_eq!(out, reference, "seed {seed} ({schedule}): output diverged");
                recovered += 1;
            }
            Err(EngineError::JobTimeout(_)) => {
                panic!("seed {seed} ({schedule}): recovery hung until the watchdog")
            }
            Err(
                EngineError::NodeLost(_) | EngineError::TaskFailed(_) | EngineError::Storage(_),
            ) => {
                // A clean typed failure is acceptable; silence is not.
            }
            Err(other) => panic!("seed {seed} ({schedule}): unexpected error {other}"),
        }
    }
    assert!(
        recovered >= 10,
        "only {recovered}/20 seeds recovered — plane too lossy"
    );
}

#[test]
fn ci_pinned_seeds_recover_byte_identical() {
    // CI pins a few seeds (override with GW_CHAOS_SEEDS="a b c") whose
    // schedules are known-recoverable, so any regression here is a real
    // recovery bug, not an accepted clean failure.
    let seeds: Vec<u64> = std::env::var("GW_CHAOS_SEEDS")
        .ok()
        .map(|s| s.split_whitespace().map(|t| t.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![3, 7, 11]);
    let reference = reference_output(NODES);
    for seed in seeds {
        let plan = FaultPlan::from_seed(seed, NODES);
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        match cluster.run(Arc::new(WordCount::new()), &chaos_cfg()) {
            Ok(report) => {
                let out = read_job_output(cluster.store(), &report).unwrap();
                assert_eq!(out, reference, "seed {seed} ({schedule}): output diverged");
            }
            Err(e) => {
                assert!(
                    !matches!(e, EngineError::JobTimeout(_)),
                    "seed {seed} ({schedule}): hung until the watchdog"
                );
            }
        }
    }
}

#[test]
fn same_seed_reproduces_the_same_outcome() {
    let seed = 3u64;
    let run = || {
        let plan = FaultPlan::from_seed(seed, NODES);
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        let outcome = cluster.run(Arc::new(WordCount::new()), &chaos_cfg());
        match outcome {
            Ok(report) => (
                schedule,
                true,
                report.nodes_lost,
                read_job_output(cluster.store(), &report).unwrap(),
            ),
            Err(_) => (schedule, false, 0, Vec::new()),
        }
    };
    let (sched_a, ok_a, lost_a, out_a) = run();
    let (sched_b, ok_b, lost_b, out_b) = run();
    assert_eq!(
        sched_a, sched_b,
        "fault schedule must be seed-deterministic"
    );
    assert_eq!(ok_a, ok_b);
    assert_eq!(lost_a, lost_b);
    assert_eq!(out_a, out_b);
}

#[test]
fn storage_read_fault_fails_over_to_another_replica() {
    let reference = reference_output(NODES);
    let plan = FaultPlan::empty().with_read_fault(0);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    assert!(
        report.blocks_read_remote_due_to_fault >= 1,
        "the injected read fault must be visible in the accounting"
    );
    assert_eq!(report.nodes_lost, 0);
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);
}

#[test]
fn dropped_shuffle_message_is_rerequested() {
    let reference = reference_output(NODES);
    let plan = FaultPlan::empty().with_net_drop(0, 1, 1);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    assert_eq!(report.nodes_lost, 0);
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(
        out, reference,
        "the dropped run must be re-served, exactly once"
    );
}

#[test]
fn delayed_shuffle_message_is_tolerated() {
    let reference = reference_output(NODES);
    let plan = FaultPlan::empty().with_net_delay(0, 1, 1, Duration::from_millis(40));
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    assert_eq!(report.nodes_lost, 0);
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);
}

#[test]
fn reduce_site_fault_is_recovered_by_the_retry_budget() {
    let reference = reference_output(NODES);

    // Budget 1: the injected reduce-kernel fault is re-executed.
    let plan = FaultPlan::crash(1, CrashSite::Reduce, 0);
    assert!(
        !plan.schedules_node_crash(),
        "reduce site is a task fault, not a node death"
    );
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    let retried: usize = report.nodes.iter().map(|n| n.reduce.tasks_retried).sum();
    assert!(
        retried >= 1,
        "the reduce fault must show up as a retried task"
    );
    assert_eq!(report.nodes_lost, 0);
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);

    // Budget 0: the same fault fails the job cleanly.
    let plan = FaultPlan::crash(1, CrashSite::Reduce, 0);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let mut cfg = chaos_cfg();
    cfg.max_task_retries = 0;
    let err = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed(_)), "got: {err}");
}

#[test]
fn gray_fault_sweep_recovers_byte_identical() {
    // The gray-failure sweep: 20 seeded schedules of slowdowns, transient
    // stalls and flaky links. Gray faults degrade nodes but never kill
    // them, and every dropped message is a recoverable data message (the
    // control path is reliable) — so unlike the crash sweep, *every* seed
    // must finish with zero nodes lost and byte-identical output.
    let reference = reference_output(NODES);
    for seed in 0..20u64 {
        let plan = FaultPlan::gray_from_seed(seed, NODES);
        let schedule = plan.describe();
        assert!(plan.schedules_gray_fault(), "seed {seed}: {schedule}");
        assert!(
            !plan.schedules_node_crash(),
            "gray plans must not kill nodes: seed {seed}: {schedule}"
        );
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        let report = cluster
            .run(Arc::new(WordCount::new()), &chaos_cfg())
            .unwrap_or_else(|e| panic!("seed {seed} ({schedule}): gray run failed: {e}"));
        assert_eq!(report.nodes_lost, 0, "seed {seed} ({schedule})");
        let out = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(out, reference, "seed {seed} ({schedule}): output diverged");
    }
}

#[test]
fn multi_lane_kernel_survives_pinned_chaos_and_gray_seeds() {
    // Acceptance for the lane work: output bytes are identical across
    // lane counts even under faults. The reference is computed with the
    // default single-lane plan; every armed run widens the map kernel
    // slot to 2 lanes. Crash seeds are the CI-pinned recoverable trio;
    // gray seeds may never fail at all.
    let reference = reference_output(NODES);
    let mut lanes_cfg = chaos_cfg();
    lanes_cfg.lane_plan.kernel = 2;
    for (gray, seed) in [(false, 3u64), (false, 7), (false, 11), (true, 0), (true, 5)] {
        let plan = if gray {
            FaultPlan::gray_from_seed(seed, NODES)
        } else {
            FaultPlan::from_seed(seed, NODES)
        };
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        match cluster.run(Arc::new(WordCount::new()), &lanes_cfg) {
            Ok(report) => {
                let out = read_job_output(cluster.store(), &report).unwrap();
                assert_eq!(
                    out, reference,
                    "seed {seed} gray={gray} ({schedule}): lanes=2 output diverged"
                );
            }
            Err(e) => {
                assert!(!gray, "seed {seed} ({schedule}): gray run failed: {e}");
                assert!(
                    !matches!(e, EngineError::JobTimeout(_)),
                    "seed {seed} ({schedule}): hung until the watchdog"
                );
            }
        }
    }
}

#[test]
fn lane_pinned_stall_fires_on_its_lane_and_output_is_unchanged() {
    // A stall pinned to kernel sub-lane 1 must leave lane 0 untouched,
    // fire exactly once (one-shot), and never perturb the output bytes.
    let reference = reference_output(NODES);
    let mut cfg = chaos_cfg();
    cfg.lane_plan.kernel = 2;
    let plan = FaultPlan::empty()
        .with_stall(2, CrashSite::Kernel, 0, 300)
        .with_stall_lane(1);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
    assert_eq!(report.nodes_lost, 0);
    let stalls = report
        .trace
        .logical_events()
        .iter()
        .filter(|(_, k)| {
            matches!(
                k,
                LogicalKind::Instant {
                    mark: MarkId::StallFired { .. }
                }
            )
        })
        .count();
    assert_eq!(
        stalls, 1,
        "lane-pinned one-shot stall must fire exactly once"
    );
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);
}

#[test]
fn slow_but_alive_node_is_not_declared_lost() {
    // Heartbeat watchdog audit: a 500ms kernel stall is 2.5× the 200ms
    // node timeout, but the heartbeat thread beats independently of the
    // stalled pipeline, re-arming the liveness deadline on every beat.
    // The slow-but-alive node must neither be declared NodeLost nor have
    // its claimed work rescheduled out from under it.
    let reference = reference_output(NODES);
    let plan = FaultPlan::empty().with_stall(2, CrashSite::Kernel, 0, 500);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    assert_eq!(
        report.nodes_lost, 0,
        "a stalled (slow-but-alive) node was declared dead"
    );
    assert_eq!(report.splits_rescheduled, 0);
    // The stall itself must be visible in the trace exactly once.
    let stalls = report
        .trace
        .logical_events()
        .iter()
        .filter(|(_, k)| {
            matches!(
                k,
                LogicalKind::Instant {
                    mark: MarkId::StallFired { .. }
                }
            )
        })
        .count();
    assert_eq!(stalls, 1, "one-shot stall must fire exactly once");
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);
}

#[test]
fn persistent_slowdown_degrades_but_never_kills() {
    // A 4× single-node slowdown is the canonical gray failure: the node
    // stays correct and alive, only slow. The run must complete with the
    // reference bytes, no liveness action, and the throttles accounted.
    let reference = reference_output(NODES);
    let plan = FaultPlan::empty().with_slowdown(1, 400);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let report = cluster
        .run(Arc::new(WordCount::new()), &chaos_cfg())
        .unwrap();
    assert_eq!(report.nodes_lost, 0);
    assert!(
        report.metrics.counter(1, CounterId::GraySlowdowns) > 0,
        "throttled passages must be counted on the slow node"
    );
    assert_eq!(report.metrics.counter_total(CounterId::GraySlowdowns), {
        report.metrics.counter(1, CounterId::GraySlowdowns)
    });
    let out = read_job_output(cluster.store(), &report).unwrap();
    assert_eq!(out, reference);
}

/// Chaos config with a one-byte run cache: every added run spills to a
/// framed file immediately and compaction churns throughout the job, so
/// the reduce input is served almost entirely from streaming spill
/// cursors (the out-of-core path).
fn spill_heavy_cfg() -> JobConfig {
    let mut cfg = chaos_cfg();
    cfg.cache_threshold = 1;
    cfg
}

#[test]
fn spill_heavy_chaos_sweep_recovers_byte_identical() {
    // The crash sweep re-run with spilling forced on: recovery must
    // compose with the out-of-core intermediate path, and the output
    // bytes must match the *in-core* reference — the determinism
    // contract says the spill strategy is invisible in the output.
    let reference = reference_output(NODES);
    let mut recovered = 0usize;
    for seed in 0..20u64 {
        let plan = FaultPlan::from_seed(seed, NODES);
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        match cluster.run(Arc::new(WordCount::new()), &spill_heavy_cfg()) {
            Ok(report) => {
                let spilled: usize = report
                    .nodes
                    .iter()
                    .map(|n| n.intermediate.spilled_disk)
                    .sum();
                assert!(spilled > 0, "seed {seed} ({schedule}): nothing spilled");
                let out = read_job_output(cluster.store(), &report).unwrap();
                assert_eq!(
                    out, reference,
                    "seed {seed} ({schedule}): spill-heavy output diverged"
                );
                recovered += 1;
            }
            Err(EngineError::JobTimeout(_)) => {
                panic!("seed {seed} ({schedule}): recovery hung until the watchdog")
            }
            Err(
                EngineError::NodeLost(_) | EngineError::TaskFailed(_) | EngineError::Storage(_),
            ) => {}
            Err(other) => panic!("seed {seed} ({schedule}): unexpected error {other}"),
        }
    }
    assert!(
        recovered >= 10,
        "only {recovered}/20 spill-heavy seeds recovered"
    );
}

#[test]
fn spill_heavy_gray_sweep_recovers_byte_identical() {
    // Gray faults never kill nodes, so with spilling forced on every
    // seed must still finish, spill, and reproduce the in-core bytes.
    let reference = reference_output(NODES);
    for seed in 0..20u64 {
        let plan = FaultPlan::gray_from_seed(seed, NODES);
        let schedule = plan.describe();
        let cluster = make_cluster(NODES).with_fault_plan(plan);
        let report = cluster
            .run(Arc::new(WordCount::new()), &spill_heavy_cfg())
            .unwrap_or_else(|e| panic!("seed {seed} ({schedule}): gray run failed: {e}"));
        assert_eq!(report.nodes_lost, 0, "seed {seed} ({schedule})");
        let spilled: usize = report
            .nodes
            .iter()
            .map(|n| n.intermediate.spilled_disk)
            .sum();
        assert!(spilled > 0, "seed {seed} ({schedule}): nothing spilled");
        let out = read_job_output(cluster.store(), &report).unwrap();
        assert_eq!(out, reference, "seed {seed} ({schedule}): output diverged");
    }
}

#[test]
fn spill_write_fault_fails_the_job_cleanly() {
    // An injected I/O error on the first spill-frame write poisons that
    // node's store; the job must surface it as a typed I/O error from
    // the node runtime — never a panic on a merger thread, never a hang.
    let plan = FaultPlan::empty().with_spill_fault(SpillOp::Write, 0);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let err = cluster
        .run(Arc::new(WordCount::new()), &spill_heavy_cfg())
        .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)), "got: {err}");
    assert!(
        err.to_string().contains("injected"),
        "error must carry the fault provenance: {err}"
    );
}

#[test]
fn spill_read_fault_fails_the_job_cleanly() {
    // Same site, read side: the fault fires when a compaction or reduce
    // cursor loads a frame, and surfaces through `partition_cursors` /
    // `finish_map` instead of killing the process.
    let plan = FaultPlan::empty().with_spill_fault(SpillOp::Read, 0);
    let cluster = make_cluster(NODES).with_fault_plan(plan);
    let err = cluster
        .run(Arc::new(WordCount::new()), &spill_heavy_cfg())
        .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)), "got: {err}");
    assert!(
        err.to_string().contains("injected"),
        "error must carry the fault provenance: {err}"
    );
}

#[test]
fn job_deadline_times_out_cleanly() {
    /// A map that sleeps long enough that the job cannot finish in time.
    struct SlowMap;
    impl GwApp for SlowMap {
        fn name(&self) -> &'static str {
            "slow-map"
        }
        fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
            std::thread::sleep(Duration::from_millis(25));
            let _ = value;
            emit.emit(key, b"1");
        }
        fn reduce(&self, key: &[u8], _: &[&[u8]], _: &mut Vec<u8>, last: bool, emit: &Emit<'_>) {
            if last {
                emit.emit(key, b"1");
            }
        }
    }

    let cluster = make_cluster(1);
    let mut cfg = chaos_cfg();
    cfg.job_deadline = Some(Duration::from_millis(80));
    let start = std::time::Instant::now();
    let err = cluster.run(Arc::new(SlowMap), &cfg).unwrap_err();
    assert!(matches!(err, EngineError::JobTimeout(_)), "got: {err}");
    // The watchdog must fire near the deadline, not wait for the job.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "watchdog returned after {:?}",
        start.elapsed()
    );
}
