//! Cross-engine validation: the Glasswing engine, the Hadoop-model
//! baseline, and the GPMR-model baseline must produce identical results
//! from the same input — the paper "verified the output of Glasswing and
//! Hadoop applications to be identical and correct".

use std::sync::Arc;

use glasswing::apps::workloads::{self, CorpusSpec, KmeansSpec};
use glasswing::apps::{codec, reference, KMeans, WordCount};
use glasswing::baseline::{GpmrCluster, GpmrConfig, HadoopCluster, HadoopConfig};
use glasswing::prelude::*;

fn counts(records: Vec<(Vec<u8>, Vec<u8>)>) -> Vec<(Vec<u8>, u64)> {
    let mut out: Vec<(Vec<u8>, u64)> = records
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    out
}

#[test]
fn three_engines_agree_on_wordcount() {
    let spec = CorpusSpec {
        lines: 200,
        vocabulary: 150,
        ..Default::default()
    };
    let recs = workloads::text_corpus(&spec);
    let expect = reference::wordcount(&recs);
    let nodes = 2u32;

    // Glasswing engine on DFS.
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/in",
        NodeId(0),
        4096,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let gw = Cluster::new(
        Arc::clone(&dfs) as Arc<dyn FileStore>,
        NetProfile::unlimited(),
    );
    let mut cfg = JobConfig::new("/in", "/gw-out");
    cfg.device_threads = 2;
    let report = gw.run(Arc::new(WordCount::new()), &cfg).unwrap();
    let gw_out = counts(read_job_output(gw.store(), &report).unwrap());
    assert_eq!(gw_out, expect);

    // Hadoop-model engine on the same DFS.
    let hadoop = HadoopCluster::new(Arc::clone(&dfs) as Arc<dyn FileStore>);
    let hcfg = HadoopConfig::new("/in", "/hadoop-out");
    hadoop.run(Arc::new(WordCount::new()), &hcfg).unwrap();
    let h_out = counts(hadoop.read_output(&hcfg).unwrap());
    assert_eq!(h_out, expect);

    // GPMR-model engine on a local FS copy.
    let local = Arc::new(LocalFs::new(nodes));
    local
        .write_records(
            "/in",
            NodeId(0),
            4096,
            1,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    let gpmr = GpmrCluster::new(local as Arc<dyn FileStore>);
    let gcfg = GpmrConfig::new("/in", "/gpmr-out");
    gpmr.run(Arc::new(WordCount::without_combiner()), &gcfg)
        .unwrap();
    let g_out = counts(gpmr.read_output(&gcfg).unwrap());
    assert_eq!(g_out, expect);
}

#[test]
fn glasswing_and_hadoop_agree_on_kmeans() {
    let spec = KmeansSpec {
        points: 600,
        dims: 3,
        centers: 8,
        seed: 21,
    };
    let pts = workloads::kmeans_points(&spec);
    let centers = workloads::kmeans_centers(&spec);
    let nodes = 2u32;
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/in",
        NodeId(0),
        8192,
        3,
        pts.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();

    let gw = Cluster::new(
        Arc::clone(&dfs) as Arc<dyn FileStore>,
        NetProfile::unlimited(),
    );
    let mut cfg = JobConfig::new("/in", "/gw-out");
    cfg.device_threads = 2;
    let app = Arc::new(KMeans::new(centers.clone(), spec.centers, spec.dims));
    let report = gw.run(Arc::clone(&app) as Arc<dyn GwApp>, &cfg).unwrap();
    let gw_out = read_job_output(gw.store(), &report).unwrap();

    let hadoop = HadoopCluster::new(Arc::clone(&dfs) as Arc<dyn FileStore>);
    let hcfg = HadoopConfig::new("/in", "/hadoop-out");
    hadoop.run(app, &hcfg).unwrap();
    let h_out = hadoop.read_output(&hcfg).unwrap();

    assert_eq!(gw_out.len(), h_out.len());
    let lookup: std::collections::HashMap<Vec<u8>, Vec<u8>> = h_out.into_iter().collect();
    for (k, v) in gw_out {
        let hv = lookup.get(&k).expect("center present in both");
        let a = codec::get_f32s(&v);
        let b = codec::get_f32s(hv);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.01, "center mismatch: {x} vs {y}");
        }
    }
}

#[test]
fn hadoop_terasort_equals_glasswing_terasort() {
    use glasswing::apps::TeraSort;
    let recs = workloads::teragen(500, 19);
    let nodes = 2u32;
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/in",
        NodeId(0),
        8 << 10,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let samples = workloads::sample_keys(&recs, 100, 2);

    let gw = Cluster::new(
        Arc::clone(&dfs) as Arc<dyn FileStore>,
        NetProfile::unlimited(),
    );
    let mut cfg = JobConfig::new("/in", "/gw-out");
    cfg.device_threads = 2;
    cfg.output_replication = 1;
    let app = Arc::new(TeraSort::new(samples.clone(), nodes));
    let report = gw.run(Arc::clone(&app) as Arc<dyn GwApp>, &cfg).unwrap();
    let gw_out = read_job_output(gw.store(), &report).unwrap();

    let hadoop = HadoopCluster::new(Arc::clone(&dfs) as Arc<dyn FileStore>);
    let mut hcfg = HadoopConfig::new("/in", "/hadoop-out");
    hcfg.output_replication = 1;
    hadoop.run(app, &hcfg).unwrap();
    let h_out = hadoop.read_output(&hcfg).unwrap();

    assert_eq!(gw_out, h_out);
    assert_eq!(gw_out, reference::terasort(&recs));
}
