//! Regression test (ISSUE: satellite 3): fused pass-through stages must
//! not vanish from the books.
//!
//! On unified-memory devices the builder fuses the Stage (H2D) and
//! Retrieve (D2H) stages out of the graph. Before the observability
//! plane landed, `StageTimers` only ever heard from live stage threads,
//! so a fused graph reported **zero** chunks and zero time for Stage and
//! Retrieve while the identical workload with the stages live reported
//! real chunk counts — the two graphs disagreed about what the pipeline
//! did. Now the executor emits a `FusedPassage` event per chunk on the
//! fused stage's behalf and both `StageTimers` and the metrics rollup
//! fold it in, so fused and unfused graphs report the same chunk counts
//! and the same modeled totals (transfers model to zero on unified
//! memory either way). `JobConfig::disable_stage_fusion` exists to pin
//! exactly this equivalence.

use std::sync::Arc;

use glasswing::apps::{codec, WordCount};
use glasswing::core::{PipelineKind, StageId};
use glasswing::prelude::*;

const LINES: usize = 24;

fn run(disable_stage_fusion: bool) -> (JobReport, Vec<(Vec<u8>, u64)>) {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/fuse/in",
        NodeId(0),
        256,
        1,
        (0..LINES)
            .map(|i| {
                (
                    format!("{i:04}").into_bytes(),
                    format!("alpha beta gamma line{}", i % 5).into_bytes(),
                )
            })
            .collect::<Vec<_>>()
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/fuse/in", "/fuse/out");
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.output_replication = 1;
    cfg.timing = TimingMode::Modeled;
    cfg.disable_stage_fusion = disable_stage_fusion;
    let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    (report, out)
}

#[test]
fn fused_stages_report_the_same_chunk_counts_as_live_ones() {
    let (fused, _) = run(false);
    // The host profile is unified memory, so the default graph fuses
    // Stage and Retrieve: 3 map stage threads, not 5.
    assert_eq!(fused.nodes[0].map.stage_threads, 3);

    // The regression: fused stages must report every chunk that
    // notionally passed them, in both derived views.
    for kind in [PipelineKind::Map, PipelineKind::Reduce] {
        let kernel = fused.metrics.chunks(0, kind, StageId::Kernel);
        assert!(kernel > 0, "{kind:?} kernel saw no chunks");
        assert_eq!(
            fused.metrics.chunks(0, kind, StageId::Stage),
            kernel,
            "{kind:?} fused Stage lost chunks in the metrics rollup"
        );
        assert_eq!(
            fused.metrics.chunks(0, kind, StageId::Retrieve),
            kernel,
            "{kind:?} fused Retrieve lost chunks in the metrics rollup"
        );
    }
}

#[test]
fn fused_and_unfused_graphs_report_the_same_modeled_totals() {
    let (fused, out_fused) = run(false);
    let (unfused, out_unfused) = run(true);

    // Disabling fusion really ran the full 5-thread graph…
    assert_eq!(unfused.nodes[0].map.stage_threads, 5);
    // …and produced the identical job output.
    assert_eq!(out_fused, out_unfused);

    // Same chunk accounting either way.
    for kind in [PipelineKind::Map, PipelineKind::Reduce] {
        for stage in [StageId::Stage, StageId::Kernel, StageId::Retrieve] {
            assert_eq!(
                fused.metrics.chunks(0, kind, stage),
                unfused.metrics.chunks(0, kind, stage),
                "{kind:?}/{stage:?} chunk counts diverge between graphs"
            );
        }
    }

    // On unified memory a transfer models to zero whether the stage is
    // fused out or live, so the modeled Stage/Retrieve totals agree (and
    // are zero) in both graphs — the paper's "the input stager is
    // disabled" is free, not merely hidden.
    for stage in [StageId::Stage, StageId::Retrieve] {
        let f =
            fused.map_timers_total().modeled(stage) + fused.reduce_timers_total().modeled(stage);
        let u = unfused.map_timers_total().modeled(stage)
            + unfused.reduce_timers_total().modeled(stage);
        assert_eq!(f, u, "{stage:?} modeled totals diverge between graphs");
        assert_eq!(f, std::time::Duration::ZERO);
    }
}
