//! Out-of-core acceptance: jobs whose intermediate data is several times
//! the configured `memory_budget` must complete with bounded resident
//! memory and produce output byte-identical to the same job run fully
//! in-core.
//!
//! The contract (DESIGN.md §3.10): with `memory_budget = B`, peak
//! resident intermediate bytes — cached runs + spill-writer staging +
//! open cursor frames, the high-water mark reported in
//! `StoreMetrics::peak_resident_bytes` — stays ≤ 1.5×B, while the spill
//! volume proves the partition never fit in memory. The spill strategy
//! must be invisible in the output bytes.

use std::sync::Arc;

use glasswing::apps::{workloads, WordCount};
use glasswing::prelude::*;

type Output = Vec<(Vec<u8>, Vec<u8>)>;

/// Per-node memory budget for the forced-spill runs.
const BUDGET: usize = 128 << 10;

fn dfs_with(records: &workloads::Records, nodes: u32, block: usize) -> Arc<Dfs> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/ooc/in",
        NodeId(0),
        block,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    dfs
}

fn base_cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/ooc/in", "/ooc/out");
    // Byte-level output identity is only defined for deterministic kernel
    // scheduling: concurrent kernel threads race the collector's shard
    // round-robin, which permutes record order within a chunk (the chaos
    // suite pins this the same way).
    cfg.device_threads = 1;
    cfg.partition_threads = 2;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg
}

fn run(records: &workloads::Records, app: Arc<dyn GwApp>, cfg: &JobConfig) -> (JobReport, Output) {
    let cluster = Cluster::new(dfs_with(records, 2, 16 << 10), NetProfile::unlimited());
    let report = cluster.run(app, cfg).unwrap();
    let out = read_job_output(cluster.store(), &report).unwrap();
    (report, out)
}

/// Assert the out-of-core contract on every node of a budgeted run.
fn assert_budget_held(report: &JobReport) {
    for n in &report.nodes {
        assert!(
            n.intermediate.spilled_raw >= 4 * BUDGET,
            "node {}: only {} raw bytes spilled — the run never left core \
             (intermediate data must be ≥ 4× the {}B budget)",
            n.node,
            n.intermediate.spilled_raw,
            BUDGET
        );
        assert!(
            n.intermediate.spilled_disk > 0,
            "node {}: no framed spill bytes on disk",
            n.node
        );
        assert!(
            n.intermediate.frames_written > 0 && n.intermediate.frames_read > 0,
            "node {}: the framed path must be exercised in both directions",
            n.node
        );
        assert!(
            n.intermediate.peak_resident_bytes <= BUDGET + BUDGET / 2,
            "node {}: peak resident {}B exceeds 1.5× the {}B budget",
            n.node,
            n.intermediate.peak_resident_bytes,
            BUDGET
        );
    }
}

#[test]
fn terasort_under_budget_matches_incore_byte_for_byte() {
    // Shuffle-only path: the reduce input is the passthrough CursorMerge
    // over streaming spill cursors. ~2 MiB of 100-byte records per job,
    // ~1 MiB per node — 8× the per-node budget.
    let recs = workloads::teragen(20_000, 42);
    let samples = workloads::sample_keys(&recs, 64, 1);
    let app: Arc<dyn GwApp> = Arc::new(glasswing::apps::TeraSort::new(samples, 4));

    // Reference: default config caches the whole partition in memory and
    // writes it once in the final merge phase — no pressure-driven
    // compaction churn ever fires.
    let incore_cfg = base_cfg();
    let (incore_report, incore_out) = run(&recs, Arc::clone(&app), &incore_cfg);
    let incore_compactions: usize = incore_report
        .nodes
        .iter()
        .map(|n| n.intermediate.compactions)
        .sum();
    assert_eq!(incore_compactions, 0, "reference run must stay in-core");

    let mut budget_cfg = base_cfg();
    budget_cfg.memory_budget = Some(BUDGET);
    let (budget_report, budget_out) = run(&recs, app, &budget_cfg);
    assert_budget_held(&budget_report);
    assert_eq!(
        budget_out, incore_out,
        "out-of-core terasort output diverged from the in-core run"
    );
}

#[test]
fn wordcount_reduce_under_budget_matches_incore_byte_for_byte() {
    // Grouped path: the 5-stage reduce pipeline fed by GroupedCursorMerge
    // slices. No combiner, so every word instance crosses the
    // intermediate layer.
    let spec = workloads::CorpusSpec {
        lines: 6_000,
        words_per_line: 12,
        vocabulary: 5_000,
        zipf_s: 1.05,
        seed: 7,
    };
    let recs = workloads::text_corpus(&spec);
    let app: Arc<dyn GwApp> = Arc::new(WordCount::without_combiner());

    let incore_cfg = base_cfg();
    let (_, incore_out) = run(&recs, Arc::clone(&app), &incore_cfg);

    let mut budget_cfg = base_cfg();
    budget_cfg.memory_budget = Some(BUDGET);
    let (budget_report, budget_out) = run(&recs, app, &budget_cfg);
    assert_budget_held(&budget_report);
    assert_eq!(
        budget_out, incore_out,
        "out-of-core wordcount output diverged from the in-core run"
    );
}

#[test]
fn budget_determinism_across_buffer_depths_and_lanes() {
    // The §III-D/§3.9 determinism matrix, restated with spilling forced
    // on: output bytes are invariant across B ∈ {1,2,3} and map-kernel
    // lane counts {1,2,4} even when every partition goes out of core.
    let recs = workloads::teragen(6_000, 9);
    let samples = workloads::sample_keys(&recs, 64, 1);
    let app: Arc<dyn GwApp> = Arc::new(glasswing::apps::TeraSort::new(samples, 4));
    let mut reference: Option<Output> = None;
    for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
        for lanes in [1usize, 2, 4] {
            let mut cfg = base_cfg();
            cfg.memory_budget = Some(32 << 10);
            cfg.buffering = buffering;
            cfg.lane_plan.kernel = lanes;
            let (report, out) = run(&recs, Arc::clone(&app), &cfg);
            let spilled: usize = report
                .nodes
                .iter()
                .map(|n| n.intermediate.spilled_disk)
                .sum();
            assert!(
                spilled > 0,
                "B={buffering:?} lanes={lanes}: nothing spilled"
            );
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    &out, r,
                    "B={buffering:?} lanes={lanes}: output depends on schedule"
                ),
            }
        }
    }
}
