//! The resident-service determinism battery.
//!
//! The service's core promise: multi-tenancy is *invisible in the bytes*.
//! A job submitted to a shared, loaded cluster must produce output
//! byte-identical to the same job run solo on a dedicated cluster of the
//! same size, no matter how many co-tenants run concurrently, in what
//! order the jobs were submitted, or whether the result came from the
//! cache.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use glasswing::apps::workloads::{web_logs, LogSpec};
use glasswing::apps::PageviewCount;
use glasswing::prelude::*;
use glasswing::service::JobTicket;

/// Distinct pageview datasets in play, keyed by workload seed.
const CATALOG: u64 = 4;

fn log_spec(seed: u64) -> LogSpec {
    LogSpec {
        entries: 300,
        hot_urls: 20,
        hot_fraction: 0.2,
        seed,
    }
}

fn input_path(seed: u64) -> String {
    format!("/svc/in-{seed}")
}

/// A DFS preloaded with every catalog dataset.
fn make_store(nodes: u32) -> Arc<Dfs> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    for seed in 0..CATALOG {
        let records = web_logs(&log_spec(seed));
        dfs.write_records(
            &input_path(seed),
            NodeId(0),
            600,
            2,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    }
    dfs
}

fn job_cfg(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::new(input_path(seed), "/ignored");
    // Byte-level identity is only defined for device_threads = 1
    // (DESIGN §3.10): concurrent kernel threads permute record order.
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 16;
    cfg
}

fn service_config() -> ServiceConfig {
    let mut cfg = ServiceConfig {
        max_queued: 64,
        tenants: vec![TenantSpec::new("alpha", 2), TenantSpec::new("beta", 1)],
        ..ServiceConfig::default()
    };
    for t in &mut cfg.tenants {
        t.max_queued = 32;
    }
    cfg
}

fn submit(service: &Service, tenant: &str, seed: u64, slots: u32) -> JobTicket {
    service
        .submit(JobSpec {
            tenant: tenant.into(),
            app: Arc::new(PageviewCount::new()),
            cfg: job_cfg(seed),
            workload_seed: seed,
            slots,
            fault_plan: None,
        })
        .expect("within admission bounds")
}

/// Output bytes of one job: the solo-reference comparison currency.
type Bytes = Vec<(Vec<u8>, Vec<u8>)>;

/// The solo reference: the same (seed, slots) job on a *dedicated*
/// fresh cluster of exactly `slots` nodes.
fn solo_reference(seed: u64, slots: u32) -> Bytes {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(slots).free_io()));
    let records = web_logs(&log_spec(seed));
    dfs.write_records(
        &input_path(seed),
        NodeId(0),
        600,
        2,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = job_cfg(seed);
    cfg.output = format!("/solo/out-{seed}-{slots}");
    let report = cluster.run(Arc::new(PageviewCount::new()), &cfg).unwrap();
    read_job_output(cluster.store(), &report).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// N concurrent jobs in an arbitrary submission order, with arbitrary
    /// seeds, slot counts and tenants, all return bytes identical to
    /// their solo one-shot references — the jobs × arrival-order matrix.
    #[test]
    fn any_interleaving_matches_solo_references(
        draws in proptest::collection::vec((0u64..CATALOG, 1u32..3, any::<bool>()), 2..7),
        order_seed in any::<u64>(),
    ) {
        // Deterministic permutation of the submission order.
        let mut order: Vec<usize> = (0..draws.len()).collect();
        let mut state = order_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let service = Service::start(
            Arc::new(Cluster::new(make_store(4), NetProfile::unlimited())),
            service_config(),
        );
        let mut tickets = Vec::new();
        for &i in &order {
            let (seed, slots, alpha) = draws[i];
            let tenant = if alpha { "alpha" } else { "beta" };
            tickets.push((i, submit(&service, tenant, seed, slots)));
        }
        let mut solo: HashMap<(u64, u32), Bytes> = HashMap::new();
        for (i, ticket) in tickets {
            let (seed, slots, _) = draws[i];
            let report = ticket.wait().expect("service job runs");
            let reference = solo
                .entry((seed, slots))
                .or_insert_with(|| solo_reference(seed, slots));
            prop_assert!(
                report.output.as_slice() == reference.as_slice(),
                "job {} (seed {}, {} slots) diverged from its solo reference",
                i, seed, slots
            );
        }
    }
}

#[test]
fn repeat_submissions_hit_the_cache_byte_identically_with_no_new_runs() {
    let service = Service::start(
        Arc::new(Cluster::new(make_store(4), NetProfile::unlimited())),
        service_config(),
    );
    let first = submit(&service, "alpha", 1, 2).wait().unwrap();
    assert!(!first.report.served_from_cache);
    let runs_before = service.counters().engine_runs;
    let mapped_before: usize = first.report.records_mapped();
    assert!(mapped_before > 0, "the priming run mapped records");

    // Same seed+slots from the *other* tenant: a cache hit.
    let second = submit(&service, "beta", 1, 2).wait().unwrap();
    assert!(
        second.report.served_from_cache,
        "repeat must be served from cache"
    );
    assert_eq!(second.output, first.output, "cache hits are byte-identical");
    assert_eq!(
        service.counters().engine_runs,
        runs_before,
        "a cache hit launches zero new engine runs (and so zero new map tasks)"
    );
    assert_eq!(service.counters().cache_hits, 1);

    // A different slot count is different work: miss, new engine run.
    let third = submit(&service, "beta", 1, 1).wait().unwrap();
    assert!(!third.report.served_from_cache);
    assert_eq!(service.counters().engine_runs, runs_before + 1);
}

#[test]
fn service_bytes_match_solo_even_under_concurrent_load() {
    let service = Service::start(
        Arc::new(Cluster::new(make_store(4), NetProfile::unlimited())),
        service_config(),
    );
    // Two 2-slot jobs resident at once on the 4-node cluster.
    let a = submit(&service, "alpha", 2, 2);
    let b = submit(&service, "beta", 3, 2);
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();
    assert_eq!(*ra.output, solo_reference(2, 2));
    assert_eq!(*rb.output, solo_reference(3, 2));
    // Both ran (different seeds: no cache crosstalk).
    assert_eq!(service.counters().engine_runs, 2);
    assert!(ra.turnaround >= ra.queue_wait);
    assert!(rb.turnaround >= rb.queue_wait);
}

#[test]
fn queue_wait_is_reported_for_jobs_that_had_to_wait() {
    // One-node cluster: the second job must queue behind the first.
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    let records = web_logs(&log_spec(0));
    dfs.write_records(
        &input_path(0),
        NodeId(0),
        600,
        2,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let service = Service::start(
        Arc::new(Cluster::new(dfs, NetProfile::unlimited())),
        service_config(),
    );
    let a = submit(&service, "alpha", 0, 1);
    let b = submit(&service, "beta", 0, 1);
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();
    // Whichever dispatched second either waited or was served from the
    // first one's cached result.
    assert!(
        rb.report.served_from_cache
            || rb.queue_wait > Duration::ZERO
            || ra.queue_wait > Duration::ZERO,
        "a 1-node cluster cannot run two jobs at once"
    );
}
