//! Structural properties of the pipeline and its analytical model.
//!
//! The schedule model (`gw_core::schedule`) encodes the paper's §III-D
//! interlock semantics; these tests check it against the *real* engine's
//! measured per-chunk samples, and check the engine-level behaviours the
//! paper's instrumentation sections rely on.

use std::sync::Arc;
use std::time::Duration;

use glasswing::apps::workloads::{self, CorpusSpec};
use glasswing::apps::WordCount;
use glasswing::core::schedule::{pipeline_makespan, ChunkTimes};
use glasswing::core::StageId;
use glasswing::prelude::*;

fn corpus_cluster(lines: usize, nodes: u32, block: usize) -> Cluster {
    let spec = CorpusSpec {
        lines,
        vocabulary: 500,
        ..Default::default()
    };
    let recs = workloads::text_corpus(&spec);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/in",
        NodeId(0),
        block,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    Cluster::new(dfs, NetProfile::unlimited())
}

fn cfg() -> JobConfig {
    let mut cfg = JobConfig::new("/in", "/out");
    cfg.device_threads = 2;
    cfg.partition_threads = 2;
    cfg
}

/// §III-D on the real engine: every buffering level yields byte-identical
/// job output, and the executor's high-water mark of in-flight chunks per
/// token group never exceeds the buffering depth `B` — observed by the
/// interlock's own atomic gauge, not inferred from timing.
#[test]
fn buffering_levels_agree_byte_for_byte_and_respect_the_interlock() {
    let mut reference: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
    for (buffering, b) in [
        (Buffering::Single, 1),
        (Buffering::Double, 2),
        (Buffering::Triple, 3),
    ] {
        let cluster = corpus_cluster(600, 2, 2048);
        let mut c = cfg();
        c.buffering = buffering;
        // One device thread per node: concurrent work items emit into the
        // sharded arena in race order, which is real nondeterminism but
        // not the variable under test here.
        c.device_threads = 1;
        let report = cluster.run(Arc::new(WordCount::new()), &c).unwrap();
        for n in &report.nodes {
            assert!(
                n.map.max_in_flight >= 1,
                "{buffering:?}: gauge never engaged"
            );
            assert!(
                n.map.max_in_flight <= b,
                "{buffering:?}: {} chunks in flight, interlock allows {b}",
                n.map.max_in_flight
            );
        }
        let out = read_job_output(cluster.store(), &report).unwrap();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "{buffering:?} output diverged from Single"),
        }
    }
}

/// The multi-lane determinism contract (DESIGN.md §3.9) on the real
/// engine: for every lane count × buffering level, job output is
/// byte-identical to the single-lane run — the sequence-ordered claim
/// turn plus the reorder at each slot exit make lane count invisible in
/// the bytes — and the §III-D interlock still bounds in-flight chunks by
/// `B` even when a widened slot has more lanes than tokens.
#[test]
fn lane_counts_agree_byte_for_byte_at_every_buffering_level() {
    let mut reference: Option<Vec<(Vec<u8>, Vec<u8>)>> = None;
    for lanes in [1usize, 2, 4] {
        for (buffering, b) in [
            (Buffering::Single, 1),
            (Buffering::Double, 2),
            (Buffering::Triple, 3),
        ] {
            let cluster = corpus_cluster(400, 2, 2048);
            let mut c = cfg();
            c.buffering = buffering;
            c.device_threads = 1; // see buffering_levels_agree_*
            c.lane_plan = LanePlan {
                input: lanes,
                kernel: lanes,
                partition: lanes,
            };
            let report = cluster.run(Arc::new(WordCount::new()), &c).unwrap();
            for n in &report.nodes {
                assert!(
                    n.map.max_in_flight <= b,
                    "lanes={lanes} {buffering:?}: {} chunks in flight, interlock allows {b}",
                    n.map.max_in_flight
                );
                // Host profile fuses Stage/Retrieve: the three live slots
                // each run `lanes` lanes.
                assert_eq!(n.map.stage_threads, 3 * lanes, "lanes={lanes}");
            }
            let out = read_job_output(cluster.store(), &report).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    &out, r,
                    "lanes={lanes} {buffering:?} output diverged from single-lane"
                ),
            }
        }
    }
}

/// On a unified-memory device (the host CPU profile) the Stage and
/// Retrieve stages fuse out of the pipeline graph at build time: the map
/// pipeline runs on exactly 3 stage threads, not 5.
#[test]
fn unified_memory_fuses_stage_and_retrieve_out_of_the_graph() {
    let cluster = corpus_cluster(300, 1, 2048);
    let report = cluster.run(Arc::new(WordCount::new()), &cfg()).unwrap();
    assert_eq!(
        report.nodes[0].map.stage_threads, 3,
        "host profile must fuse Stage and Retrieve"
    );

    // A discrete-memory profile keeps all five stages live.
    let cluster = corpus_cluster(300, 1, 2048);
    let mut c = cfg();
    c.device = DeviceProfile::gtx480();
    let report = cluster.run(Arc::new(WordCount::new()), &c).unwrap();
    assert_eq!(
        report.nodes[0].map.stage_threads, 5,
        "discrete profile must keep Stage and Retrieve live"
    );
}

/// The measured map-phase elapsed time must be consistent with replaying
/// the measured per-chunk stage durations through the schedule model: the
/// model's makespan is a lower bound (the real pipeline adds queueing and
/// thread-wakeup latency) and should not be wildly below it.
#[test]
fn schedule_model_replays_measured_chunks() {
    let cluster = corpus_cluster(600, 1, 2048);
    let mut c = cfg();
    c.buffering = Buffering::Double;
    let report = cluster.run(Arc::new(WordCount::new()), &c).unwrap();
    let node = &report.nodes[0];
    assert!(
        node.map_samples.len() >= 8,
        "need several chunks, got {}",
        node.map_samples.len()
    );
    let chunks: Vec<ChunkTimes> = node
        .map_samples
        .iter()
        .map(|s| [s[0].wall, s[1].wall, s[2].wall, s[3].wall, s[4].wall])
        .collect();
    let modeled = pipeline_makespan(&chunks, Buffering::Double);
    let measured = node.map.elapsed;
    assert!(
        measured >= modeled.mul_f64(0.8),
        "measured {measured:?} below modeled lower bound {modeled:?}"
    );
    // The model must also not be trivially small: it accounts for the
    // dominant stage at least.
    let kernel_total: Duration = chunks.iter().map(|c| c[2]).sum();
    assert!(modeled >= kernel_total);
}

/// Single buffering serialises the input group: the modeled makespan from
/// the same per-chunk durations is larger under Single than under Triple.
#[test]
fn buffering_ordering_holds_on_real_samples() {
    let cluster = corpus_cluster(600, 1, 2048);
    let report = cluster.run(Arc::new(WordCount::new()), &cfg()).unwrap();
    let chunks: Vec<ChunkTimes> = report.nodes[0]
        .map_samples
        .iter()
        .map(|s| [s[0].wall, s[1].wall, s[2].wall, s[3].wall, s[4].wall])
        .collect();
    let single = pipeline_makespan(&chunks, Buffering::Single);
    let double = pipeline_makespan(&chunks, Buffering::Double);
    let triple = pipeline_makespan(&chunks, Buffering::Triple);
    assert!(single >= double);
    assert!(double >= triple);
}

/// The collector choice changes where time is spent, as in Table II: the
/// simple buffer pool yields a faster kernel stage but (much) more
/// partitioning work than hash-table-with-combiner.
#[test]
fn collector_choice_shifts_stage_balance() {
    let run = |collector: CollectorKind, combiner: bool| {
        let cluster = corpus_cluster(800, 1, 2048);
        let mut c = cfg();
        c.collector = collector;
        let app: Arc<dyn GwApp> = if combiner {
            Arc::new(WordCount::new())
        } else {
            Arc::new(WordCount::without_combiner())
        };
        let report = cluster.run(app, &c).unwrap();
        let n = &report.nodes[0];
        (n.map_timers.wall(StageId::Partition), n.map.records_out)
    };
    let (_, records_combined) = run(CollectorKind::HashTable, true);
    let (_, records_simple) = run(CollectorKind::BufferPool, false);
    // The combiner must shrink intermediate volume dramatically on a
    // repetitive Zipf corpus.
    assert!(
        records_combined * 2 < records_simple,
        "combiner should cut intermediate records: {records_combined} vs {records_simple}"
    );
}

/// Merge delay is measured and bounded; spill counts follow the cache
/// threshold (paper §III-B / Fig. 4(b) machinery).
#[test]
fn intermediate_machinery_reports_metrics() {
    let cluster = corpus_cluster(500, 2, 2048);
    let mut c = cfg();
    c.cache_threshold = 1 << 12; // force spills
    c.partitions_per_node = 2;
    c.merger_threads = 2;
    let report = cluster
        .run(Arc::new(WordCount::without_combiner()), &c)
        .unwrap();
    let spills: usize = report.nodes.iter().map(|n| n.intermediate.flushes).sum();
    assert!(spills > 0, "tiny cache threshold must force flushes");
    for n in &report.nodes {
        assert!(
            n.intermediate.spilled_disk <= n.intermediate.spilled_raw,
            "compression must not inflate spills"
        );
    }
    assert!(report.merge_delay() < Duration::from_secs(10));
}

/// Locality-aware scheduling: with replication 3 on a small cluster,
/// virtually all splits are read locally.
#[test]
fn locality_aware_scheduling_reads_locally() {
    let cluster = corpus_cluster(400, 3, 2048);
    let report = cluster.run(Arc::new(WordCount::new()), &cfg()).unwrap();
    let local: usize = report.nodes.iter().map(|n| n.map.local_splits).sum();
    let total: usize = report.nodes.iter().map(|n| n.map.splits).sum();
    assert!(
        local * 10 >= total * 9,
        "expected ≥90% local reads, got {local}/{total}"
    );
}

/// The push shuffle delivers runs while the map phase is still active:
/// peers receive runs strictly before the sender's MapDone, which the
/// engine expresses as nonzero received-run counts plus bounded merge
/// delay even under a throttled network.
#[test]
fn push_shuffle_moves_data_during_map() {
    let cluster = corpus_cluster(400, 4, 1024);
    let mut c = cfg();
    c.partitions_per_node = 1;
    let report = cluster.run(Arc::new(WordCount::new()), &c).unwrap();
    let received: usize = report.nodes.iter().map(|n| n.shuffle_runs_received).sum();
    let pushed: usize = report.nodes.iter().map(|n| n.map.runs_remote).sum();
    assert_eq!(received, pushed, "every pushed run must arrive");
    assert!(pushed > 0);
}

/// Reduce-side knobs: concurrent keys and keys-per-thread change launch
/// counts exactly as Fig. 5's x-axis describes.
#[test]
fn reduce_launch_count_follows_concurrency_knobs() {
    let run = |concurrent_keys: usize, keys_per_thread: usize| {
        let cluster = corpus_cluster(300, 1, 4096);
        let mut c = cfg();
        c.reduce_concurrent_keys = concurrent_keys;
        c.reduce_keys_per_thread = keys_per_thread;
        let report = cluster
            .run(Arc::new(WordCount::without_combiner()), &c)
            .unwrap();
        (report.nodes[0].reduce.launches, report.nodes[0].reduce.keys)
    };
    let (launches_small, keys) = run(8, 1);
    let (launches_large, keys2) = run(256, 1);
    assert_eq!(keys, keys2);
    assert!(
        launches_small > launches_large,
        "fewer concurrent keys ⇒ more kernel launches ({launches_small} vs {launches_large})"
    );
    // Expected launch count ≈ ceil(keys / concurrent) per partition.
    assert!(launches_small >= keys / 8);
}

/// Network accounting closes: the fabric's per-node byte counters match
/// the runs the engine actually pushed, and the shuffle volume is the
/// expected (n-1)/n share of the intermediate data.
#[test]
fn shuffle_volume_accounting_closes() {
    let spec = workloads::CorpusSpec {
        lines: 400,
        vocabulary: 500,
        ..Default::default()
    };
    let recs = workloads::text_corpus(&spec);
    let nodes = 4u32;
    let dfs = std::sync::Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/in",
        NodeId(0),
        2048,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut c = cfg();
    c.collector = CollectorKind::BufferPool; // no combining: volume is exact
    let report = cluster
        .run(std::sync::Arc::new(WordCount::without_combiner()), &c)
        .unwrap();
    let pushed_remote: usize = report.nodes.iter().map(|n| n.map.runs_remote).sum();
    let received: usize = report.nodes.iter().map(|n| n.shuffle_runs_received).sum();
    assert_eq!(pushed_remote, received, "run conservation");
    // Every record lands in exactly one partition; totals must close.
    let produced: usize = report.nodes.iter().map(|n| n.map.records_out).sum();
    let stored: usize = report
        .nodes
        .iter()
        .map(|n| n.intermediate.records_added)
        .sum();
    assert_eq!(produced, stored, "record conservation through the shuffle");
    // With a uniform hash partitioner, the remote share approaches
    // (n-1)/n of all runs.
    let local: usize = report.nodes.iter().map(|n| n.map.runs_local).sum();
    let remote_share = pushed_remote as f64 / (pushed_remote + local) as f64;
    assert!(
        (remote_share - 0.75).abs() < 0.2,
        "remote share {remote_share:.2} far from (n-1)/n = 0.75"
    );
}
