//! Table I, demonstrated by construction.
//!
//! The paper's Table I compares frameworks along three axes: out-of-core
//! support, compute-device flexibility, and cluster support. Rather than
//! asserting the table, these tests *run* the same WordCount job against
//! each runtime and show where each one works and where it refuses —
//! Phoenix (single-node, CPU, in-core), GPMR (cluster, GPU-only, in-core
//! intermediate data), Glasswing (cluster, any device, out-of-core).

use std::sync::Arc;

use glasswing::apps::workloads::{self, CorpusSpec};
use glasswing::apps::{reference, WordCount};
use glasswing::baseline::{
    GpmrCluster, GpmrConfig, GpmrError, PhoenixConfig, PhoenixError, PhoenixRuntime,
};
use glasswing::prelude::*;

fn corpus(lines: usize) -> workloads::Records {
    workloads::text_corpus(&CorpusSpec {
        lines,
        ..Default::default()
    })
}

fn load<S: FileStore + 'static>(store: S, recs: &workloads::Records) -> Arc<dyn FileStore> {
    store
        .write_records(
            "/in",
            NodeId(0),
            2048,
            3,
            recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    Arc::new(store)
}

/// Column "Cluster": Phoenix refuses, GPMR and Glasswing run.
#[test]
fn cluster_support_column() {
    let recs = corpus(120);

    let phoenix = PhoenixRuntime::new(load(Dfs::new(DfsConfig::new(3).free_io()), &recs));
    assert!(matches!(
        phoenix
            .run(Arc::new(WordCount::new()), &PhoenixConfig::new("/in"))
            .unwrap_err(),
        PhoenixError::ClusterUnsupported { nodes: 3 }
    ));

    let gpmr = GpmrCluster::new(load(LocalFs::new(3), &recs));
    gpmr.run(
        Arc::new(WordCount::without_combiner()),
        &GpmrConfig::new("/in", "/gpmr-out"),
    )
    .expect("GPMR supports clusters");

    let gw = Cluster::new(
        load(Dfs::new(DfsConfig::new(3).free_io()), &recs),
        NetProfile::unlimited(),
    );
    let mut cfg = JobConfig::new("/in", "/gw-out");
    cfg.device_threads = 1;
    gw.run(Arc::new(WordCount::new()), &cfg)
        .expect("Glasswing supports clusters");
}

/// Column "Out of Core": GPMR's intermediate data must fit in memory;
/// Glasswing spills the same job to disk and completes.
#[test]
fn out_of_core_column() {
    let recs = corpus(400);

    let gpmr = GpmrCluster::new(load(LocalFs::new(1), &recs));
    let mut gcfg = GpmrConfig::new("/in", "/gpmr-out");
    gcfg.intermediate_budget = 4 << 10; // tiny in-core budget
    assert!(matches!(
        gpmr.run(Arc::new(WordCount::without_combiner()), &gcfg)
            .unwrap_err(),
        GpmrError::IntermediateOverflow { .. }
    ));

    // Same pressure on Glasswing: a tiny cache threshold just means
    // spilling; the job completes and the output is exact.
    let gw = Cluster::new(
        load(Dfs::new(DfsConfig::new(1).free_io()), &recs),
        NetProfile::unlimited(),
    );
    let mut cfg = JobConfig::new("/in", "/gw-out");
    cfg.device_threads = 1;
    cfg.cache_threshold = 4 << 10;
    cfg.max_spill_files = 3;
    let report = gw
        .run(Arc::new(WordCount::without_combiner()), &cfg)
        .expect("Glasswing handles out-of-core intermediate data");
    assert!(
        report.nodes[0].intermediate.flushes > 0,
        "the job must actually have spilled"
    );
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(gw.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

/// Column "Compute Device": one Glasswing job definition runs on CPU,
/// GPU and Xeon Phi profiles with identical output; Phoenix's runtime has
/// no device notion (CPU threads only) and GPMR's is GPU-only by
/// construction (its config carries only GPU profiles).
#[test]
fn compute_device_column() {
    let recs = corpus(100);
    let expect = reference::wordcount(&recs);
    for device in [
        DeviceProfile::host(),
        DeviceProfile::gtx480(),
        DeviceProfile::xeon_phi(),
    ] {
        let gw = Cluster::new(
            load(Dfs::new(DfsConfig::new(2).free_io()), &recs),
            NetProfile::unlimited(),
        );
        let mut cfg = JobConfig::new("/in", "/gw-out");
        cfg.device_threads = 1;
        cfg.device = device.clone();
        let report = gw.run(Arc::new(WordCount::new()), &cfg).unwrap();
        let mut out: Vec<(Vec<u8>, u64)> = read_job_output(gw.store(), &report)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, u64::from_le_bytes(v.as_slice().try_into().unwrap())))
            .collect();
        out.sort();
        assert_eq!(out, expect, "device {} diverged", device.name);
    }
}
