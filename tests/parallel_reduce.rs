//! The paper's *first* form of reduce parallelism (§III-C): "applications
//! can choose to process each single key with multiple threads. This is
//! advantageous to compute-intensive applications that can benefit from
//! parallel reduction."
//!
//! These tests run jobs with `reduce_threads_per_key > 1`, verify that
//! cooperative splits actually happened, and that results stay identical
//! to the sequential reduction.

use std::sync::Arc;

use glasswing::apps::workloads::{self, CorpusSpec, KmeansSpec};
use glasswing::apps::{codec, reference, KMeans, WordCount};
use glasswing::prelude::*;

fn wc_cluster(lines: usize, nodes: u32) -> (Cluster, workloads::Records) {
    let spec = CorpusSpec {
        lines,
        words_per_line: 10,
        vocabulary: 40, // few keys ⇒ long value lists ⇒ splits trigger
        zipf_s: 0.9,
        seed: 321,
    };
    let recs = workloads::text_corpus(&spec);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes).free_io()));
    dfs.write_records(
        "/pr/in",
        NodeId(0),
        4096,
        3,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    (Cluster::new(dfs, NetProfile::unlimited()), recs)
}

fn cfg(threads_per_key: usize) -> JobConfig {
    let mut cfg = JobConfig::new("/pr/in", "/pr/out");
    cfg.device_threads = 2;
    // Disable the combiner path so keys really carry many values.
    cfg.collector = CollectorKind::BufferPool;
    cfg.reduce_threads_per_key = threads_per_key;
    cfg.reduce_max_values_per_chunk = 64;
    cfg
}

#[test]
fn parallel_single_key_reduction_matches_sequential() {
    let (cluster, recs) = wc_cluster(400, 2);
    let app = Arc::new(WordCount::without_combiner());
    let report = cluster.run(app, &cfg(4)).unwrap();
    let splits: usize = report
        .nodes
        .iter()
        .map(|n| n.reduce.parallel_key_splits)
        .sum();
    assert!(
        splits > 0,
        "long value lists must trigger cooperative splits"
    );
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

#[test]
fn threads_per_key_one_never_splits() {
    let (cluster, recs) = wc_cluster(200, 1);
    let report = cluster
        .run(Arc::new(WordCount::without_combiner()), &cfg(1))
        .unwrap();
    assert_eq!(report.nodes[0].reduce.parallel_key_splits, 0);
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

#[test]
fn unsupported_apps_fall_back_to_sequential() {
    // TeraSort has no reduce; use an app whose merge_states is the default
    // `false`: results must still be exact, with zero splits.
    struct NoMergeWc(WordCount);
    impl GwApp for NoMergeWc {
        fn name(&self) -> &'static str {
            "wc-no-merge"
        }
        fn map(&self, k: &[u8], v: &[u8], e: &Emit<'_>) {
            self.0.map(k, v, e);
        }
        fn reduce(&self, k: &[u8], vs: &[&[u8]], s: &mut Vec<u8>, l: bool, e: &Emit<'_>) {
            self.0.reduce(k, vs, s, l, e);
        }
        // merge_states: default (unsupported)
    }
    let (cluster, recs) = wc_cluster(200, 1);
    let report = cluster
        .run(Arc::new(NoMergeWc(WordCount::without_combiner())), &cfg(8))
        .unwrap();
    assert_eq!(report.nodes[0].reduce.parallel_key_splits, 0);
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    assert_eq!(out, reference::wordcount(&recs));
}

#[test]
fn kmeans_parallel_reduction_matches_reference() {
    // KM is the paper's poster child for parallel reduction: few keys
    // (centers), many values (points).
    let spec = KmeansSpec {
        points: 2000,
        dims: 4,
        centers: 3,
        seed: 88,
    };
    let pts = workloads::kmeans_points(&spec);
    let centers = workloads::kmeans_centers(&spec);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(2).free_io()));
    dfs.write_records(
        "/pr/in",
        NodeId(0),
        8 << 10,
        3,
        pts.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut c = cfg(4);
    c.collector = CollectorKind::BufferPool; // no combiner: long value lists
    let app = Arc::new(KMeans::new(centers.clone(), spec.centers, spec.dims));
    let report = cluster.run(app, &c).unwrap();
    let splits: usize = report
        .nodes
        .iter()
        .map(|n| n.reduce.parallel_key_splits)
        .sum();
    assert!(splits > 0);
    let out = read_job_output(cluster.store(), &report).unwrap();
    let expect = reference::kmeans_iteration(&pts, &KMeans::new(centers, spec.centers, spec.dims));
    assert_eq!(out.len(), expect.len());
    for (k, v) in out {
        let cidx = codec::dec_key_u32(&k);
        let got = codec::get_f32s(&v);
        let (_, want) = expect.iter().find(|(ec, _)| *ec == cidx).unwrap();
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 0.02, "center {cidx}: {g} vs {w}");
        }
    }
}
