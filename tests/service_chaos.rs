//! Chaos on the resident service: node deaths with multiple tenants
//! resident on the shared cluster.
//!
//! A service job's fault plan is scoped to its own run, but a *node
//! death* is physical — the dead machine is marked dead in the shared
//! store, so co-tenant jobs see its replicas vanish mid-read. The
//! battery pins the composed invariant: the armed job recovers onto its
//! surviving nodes, the innocent co-tenant fails over its reads, and
//! **both** finish byte-identical to solo fault-free references. Per-job
//! speculation ledgers must balance (`launched == won + cancelled +
//! failed`) even with two jobs speculating independently.

use std::sync::Arc;
use std::time::Duration;

use glasswing::apps::workloads::{web_logs, LogSpec};
use glasswing::apps::PageviewCount;
use glasswing::core::EngineError;
use glasswing::prelude::*;
use glasswing::service::{ServiceConfig, ServiceReport, TenantSpec};

const NODES: u32 = 4;
const SLOTS: u32 = 2;

fn log_spec(seed: u64) -> LogSpec {
    LogSpec {
        entries: 240,
        hot_urls: 16,
        hot_fraction: 0.2,
        seed,
    }
}

fn input_path(seed: u64) -> String {
    format!("/svc/in-{seed}")
}

fn write_inputs(dfs: &Dfs, seeds: &[u64]) {
    for &seed in seeds {
        let records = web_logs(&log_spec(seed));
        dfs.write_records(
            &input_path(seed),
            NodeId(0),
            400,
            3, // every block keeps replicas beyond any single dead node
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    }
}

/// Supervised config: heartbeats + liveness scan so a killed node's
/// splits reschedule, and a watchdog backstop so nothing can hang.
fn chaos_cfg(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::new(input_path(seed), "/ignored");
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 16;
    cfg.max_task_retries = 1;
    cfg.heartbeat_interval = Duration::from_millis(10);
    cfg.node_timeout = Duration::from_millis(200);
    cfg.job_deadline = Some(Duration::from_secs(60));
    cfg
}

fn service_over(dfs: Arc<Dfs>) -> Service {
    let cfg = ServiceConfig {
        cache_capacity: 0, // chaos runs must all execute, never cache-hit
        tenants: vec![TenantSpec::new("armed", 1), TenantSpec::new("bystander", 1)],
        ..ServiceConfig::default()
    };
    Service::start(Arc::new(Cluster::new(dfs, NetProfile::unlimited())), cfg)
}

/// Solo fault-free reference on a dedicated SLOTS-node cluster.
fn solo_reference(seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(SLOTS).free_io()));
    write_inputs(&dfs, &[seed]);
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = chaos_cfg(seed);
    cfg.output = format!("/solo/out-{seed}");
    let report = cluster.run(Arc::new(PageviewCount::new()), &cfg).unwrap();
    read_job_output(cluster.store(), &report).unwrap()
}

fn submit(
    service: &Service,
    tenant: &str,
    seed: u64,
    plan: Option<FaultPlan>,
    speculate: bool,
) -> glasswing::service::JobTicket {
    let mut cfg = chaos_cfg(seed);
    if speculate {
        cfg.speculation.enabled = true;
        cfg.speculation.min_runtime = Duration::from_millis(5);
        cfg.speculation.backoff = Duration::from_millis(5);
    }
    service
        .submit(JobSpec {
            tenant: tenant.into(),
            app: Arc::new(PageviewCount::new()),
            cfg,
            workload_seed: seed,
            slots: SLOTS,
            fault_plan: plan,
        })
        .expect("within admission bounds")
}

fn assert_ledger_balances(tag: &str, report: &ServiceReport) {
    let s = &report.report.speculation;
    assert_eq!(
        s.launched,
        s.won + s.cancelled + s.failed,
        "{tag}: speculation ledger out of balance: {s:?}"
    );
}

#[test]
fn node_kill_with_two_resident_jobs_recovers_both_byte_identical() {
    // Sweep style: kill virtual node 0 or 1 of the armed job at each
    // pipeline crash site. Ten schedules, each on a fresh service with
    // two jobs resident; both must match their solo fault-free bytes.
    let ref_armed = solo_reference(1);
    let ref_bystander = solo_reference(2);
    for site in [
        CrashSite::Read,
        CrashSite::Stage,
        CrashSite::Kernel,
        CrashSite::Retrieve,
        CrashSite::Shuffle,
    ] {
        for node in 0..SLOTS {
            let tag = format!("site {} node {node}", site.name());
            let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
            write_inputs(&dfs, &[1, 2]);
            let service = service_over(dfs);

            let armed = submit(
                &service,
                "armed",
                1,
                Some(FaultPlan::crash(node, site, 1)),
                false,
            );
            let bystander = submit(&service, "bystander", 2, None, false);

            let ra = armed
                .wait()
                .unwrap_or_else(|e| panic!("{tag}: armed job did not recover: {e}"));
            let rb = bystander
                .wait()
                .unwrap_or_else(|e| panic!("{tag}: bystander job failed: {e}"));

            assert_eq!(
                ra.report.nodes_lost, 1,
                "{tag}: the armed job must lose exactly one node"
            );
            assert_eq!(
                rb.report.nodes_lost, 0,
                "{tag}: the bystander's own nodes all survive"
            );
            assert_eq!(
                *ra.output, ref_armed,
                "{tag}: armed job output diverged from its solo reference"
            );
            assert_eq!(
                *rb.output, ref_bystander,
                "{tag}: bystander output diverged — multi-tenancy leaked into bytes"
            );
            assert_ledger_balances(&tag, &ra);
            assert_ledger_balances(&tag, &rb);
        }
    }
}

#[test]
fn seeded_sweep_with_a_bystander_is_correct_or_fails_cleanly() {
    // gw-chaos seeded schedules (crashes, stalls, net faults) against the
    // armed tenant, SLOTS-node scoped. The bystander must *always* finish
    // with reference bytes; the armed job either recovers byte-identical
    // or fails with a clean typed error — never a hang past the watchdog.
    let ref_armed = solo_reference(1);
    let ref_bystander = solo_reference(2);
    let mut recovered = 0usize;
    let seeds: Vec<u64> = std::env::var("GW_CHAOS_SEEDS")
        .ok()
        .map(|s| s.split_whitespace().map(|t| t.parse().unwrap()).collect())
        .unwrap_or_else(|| (0..10).collect());
    for &seed in &seeds {
        let plan = FaultPlan::from_seed(seed, SLOTS);
        let schedule = plan.describe();
        let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
        write_inputs(&dfs, &[1, 2]);
        let service = service_over(dfs);

        let armed = submit(&service, "armed", 1, Some(plan), false);
        let bystander = submit(&service, "bystander", 2, None, false);

        match armed.wait() {
            Ok(ra) => {
                assert_eq!(
                    *ra.output, ref_armed,
                    "seed {seed} ({schedule}): armed output diverged"
                );
                assert_ledger_balances(&format!("seed {seed} armed"), &ra);
                recovered += 1;
            }
            Err(ServiceError::Engine(EngineError::JobTimeout(_))) => {
                panic!("seed {seed} ({schedule}): armed job hung until the watchdog")
            }
            Err(ServiceError::Engine(_)) => {
                // Clean typed failure is acceptable; silence is not.
            }
            Err(other) => panic!("seed {seed} ({schedule}): unexpected error {other}"),
        }
        let rb = bystander
            .wait()
            .unwrap_or_else(|e| panic!("seed {seed} ({schedule}): bystander failed: {e}"));
        assert_eq!(
            *rb.output, ref_bystander,
            "seed {seed} ({schedule}): bystander output diverged"
        );
        assert_ledger_balances(&format!("seed {seed} bystander"), &rb);
    }
    assert!(
        recovered * 2 >= seeds.len(),
        "only {recovered}/{} seeds recovered — service recovery too lossy",
        seeds.len()
    );
}

#[test]
fn speculating_tenants_keep_independent_balanced_ledgers() {
    // Both jobs speculate; one is also slowed by a gray fault so it
    // actually launches clones. Budgets and ledgers are per job: each
    // must balance on its own, and bytes never change.
    let ref_armed = solo_reference(1);
    let ref_bystander = solo_reference(2);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    write_inputs(&dfs, &[1, 2]);
    let service = service_over(dfs);

    let armed = submit(
        &service,
        "armed",
        1,
        Some(FaultPlan::empty().with_slowdown(0, 400)),
        true,
    );
    let bystander = submit(&service, "bystander", 2, None, true);

    let ra = armed.wait().expect("gray faults never kill a job");
    let rb = bystander.wait().expect("unarmed job runs clean");
    assert_eq!(*ra.output, ref_armed);
    assert_eq!(*rb.output, ref_bystander);
    assert_ledger_balances("armed", &ra);
    assert_ledger_balances("bystander", &rb);
    assert_eq!(ra.report.nodes_lost, 0);
    assert_eq!(rb.report.nodes_lost, 0);
    assert!(
        rb.report.speculation.launched <= chaos_cfg(2).speculation.budget,
        "budget is per job, not per service"
    );
}
