//! The analysis layer inherits the trace's determinism contract (ISSUE
//! 5 acceptance): `PerfAnalysis` is a pure fold of the trace, so its
//! *logical* projection — [`PerfAnalysis::determinism_digest`], which
//! renders chunk counts, token-wait counts, fused flags, critical-path
//! gates, straggler ranking and anomaly counts but no timing — must be
//! byte-identical
//!
//! * across repeated runs of the same `(seed, JobConfig)`, and
//! * across buffering levels B ∈ {1, 2, 3}: deeper buffering moves wait
//!   *durations*, never what the pipeline did.
//!
//! Mirrors `tests/trace_determinism.rs`: same corpus generator, same
//! single-writer-per-lane config, one level up the stack.

use std::sync::Arc;

use proptest::prelude::*;

use glasswing::apps::WordCount;
use glasswing::prelude::*;

/// Deterministic pseudo-text: the seed fully determines every line.
fn input_lines(seed: u64, lines: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    const WORDS: [&str; 8] = [
        "glasswing",
        "scales",
        "mapreduce",
        "vertically",
        "horizontally",
        "pipeline",
        "shuffle",
        "kernel",
    ];
    (0..lines)
        .map(|i| {
            let n = 1 + (next() % 6) as usize;
            let line = (0..n)
                .map(|_| WORDS[(next() % WORDS.len() as u64) as usize])
                .collect::<Vec<_>>()
                .join(" ");
            (format!("{i:04}").into_bytes(), line.into_bytes())
        })
        .collect()
}

fn job_config(buffering: Buffering) -> JobConfig {
    let mut cfg = JobConfig::new("/det/in", "/det/out");
    cfg.device_threads = 1;
    cfg.partition_threads = 1;
    cfg.buffering = buffering;
    cfg.collector_capacity = 1 << 16;
    cfg.cache_threshold = 1 << 12;
    cfg.output_replication = 1;
    cfg
}

/// Run the job and fold the trace down to the analysis digest.
fn digest_run(records: &[(Vec<u8>, Vec<u8>)], buffering: Buffering) -> String {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/det/in",
        NodeId(0),
        256,
        1,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let report = cluster
        .run(Arc::new(WordCount::new()), &job_config(buffering))
        .unwrap();
    report.analysis.determinism_digest()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Three runs of the same `(seed, JobConfig)` fold to the same
    /// digest, at every buffering level.
    #[test]
    fn repeated_runs_fold_to_the_same_digest(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let first = digest_run(&records, buffering);
            for _ in 0..2 {
                prop_assert_eq!(&digest_run(&records, buffering), &first);
            }
        }
    }

    /// The buffering level is invisible to the digest: B ∈ {1,2,3}
    /// report the same chunk counts, wait counts, gates and anomalies.
    #[test]
    fn buffering_level_does_not_change_the_digest(
        seed in any::<u64>(),
        lines in 4usize..32,
    ) {
        let records = input_lines(seed, lines);
        let single = digest_run(&records, Buffering::Single);
        prop_assert_eq!(&digest_run(&records, Buffering::Double), &single);
        prop_assert_eq!(&digest_run(&records, Buffering::Triple), &single);
    }
}
