//! Property-based tests of the analytical and simulation models.

use std::time::Duration;

use proptest::prelude::*;

use glasswing::core::schedule::{pipeline_makespan, pipeline_schedule, ChunkTimes};
use glasswing::core::Buffering;
use glasswing::sim::engine::Sim;
use glasswing::sim::sweep::{simulate, FrameworkKind};
use glasswing::sim::{AppParams, ClusterParams};

fn chunk_strategy() -> impl Strategy<Value = Vec<ChunkTimes>> {
    proptest::collection::vec(
        proptest::array::uniform5(0u64..50).prop_map(|ms| {
            [
                Duration::from_millis(ms[0]),
                Duration::from_millis(ms[1]),
                Duration::from_millis(ms[2]),
                Duration::from_millis(ms[3]),
                Duration::from_millis(ms[4]),
            ]
        }),
        0..40,
    )
}

proptest! {
    /// More buffering never increases the pipeline makespan.
    #[test]
    fn schedule_monotone_in_buffering(chunks in chunk_strategy()) {
        let single = pipeline_makespan(&chunks, Buffering::Single);
        let double = pipeline_makespan(&chunks, Buffering::Double);
        let triple = pipeline_makespan(&chunks, Buffering::Triple);
        prop_assert!(double <= single);
        prop_assert!(triple <= double);
    }

    /// The makespan is bounded below by every stage's total busy time and
    /// by the per-chunk critical path, and bounded above by fully serial
    /// execution.
    #[test]
    fn schedule_is_sandwiched(chunks in chunk_strategy()) {
        for b in [Buffering::Single, Buffering::Double, Buffering::Triple] {
            let makespan = pipeline_makespan(&chunks, b);
            for s in 0..5 {
                let stage_total: Duration = chunks.iter().map(|c| c[s]).sum();
                prop_assert!(makespan >= stage_total);
            }
            let serial: Duration = chunks.iter().flat_map(|c| c.iter()).sum();
            prop_assert!(makespan <= serial);
        }
    }

    /// Stage completion times are monotone within a chunk and per stage
    /// across chunks (the schedule is a valid partial order).
    #[test]
    fn schedule_respects_precedence(chunks in chunk_strategy()) {
        let sched = pipeline_schedule(&chunks, Buffering::Double);
        for (c, stages) in sched.end.iter().enumerate() {
            for s in 1..5 {
                prop_assert!(stages[s] >= stages[s - 1], "chunk {c} stage order");
            }
            if c > 0 {
                for s in 0..5 {
                    prop_assert!(
                        sched.end[c][s] >= sched.end[c - 1][s],
                        "stage {s} FIFO order"
                    );
                }
            }
        }
    }

    /// DES resources conserve work: with a single server, the completion
    /// time of n requests equals the max arrival plus queued service.
    #[test]
    fn des_single_server_conserves_work(
        services in proptest::collection::vec(0.0f64..10.0, 1..20))
    {
        let mut sim = Sim::new();
        let r = sim.add_resource(1);
        let total: f64 = services.iter().sum();
        for &s in &services {
            sim.schedule(0.0, move |sim| {
                sim.use_resource(r, s, |_| {});
            });
        }
        let end = sim.run();
        prop_assert!((end - total).abs() < 1e-9, "end {end} vs total {total}");
    }

    /// DES semaphores never lose permits: after all acquire/release pairs
    /// complete, the event queue drains and time is finite.
    #[test]
    fn des_semaphore_pairs_drain(
        holds in proptest::collection::vec(0.0f64..5.0, 1..25),
        permits in 1usize..4)
    {
        let mut sim = Sim::new();
        let sem = sim.add_semaphore(permits);
        for &h in &holds {
            sim.schedule(0.0, move |sim| {
                sim.acquire(sem, move |sim| {
                    sim.schedule(h, move |sim| sim.release(sem));
                });
            });
        }
        let end = sim.run();
        let total: f64 = holds.iter().sum();
        // With k permits the span is at least total/k and at most total.
        prop_assert!(end <= total + 1e-9);
        prop_assert!(end + 1e-9 >= total / permits as f64);
    }

    /// Simulated job times scale down monotonically with node count for
    /// every framework (no superlinear anomalies in the models).
    #[test]
    fn sim_total_monotone_in_nodes(app_idx in 0usize..5, fw in 0usize..3) {
        let app = &AppParams::all()[app_idx];
        let cluster = ClusterParams::das4_cpu_hdfs();
        let framework = [
            FrameworkKind::Glasswing,
            FrameworkKind::Hadoop,
            FrameworkKind::GPMR,
        ][fw];
        let mut prev = f64::INFINITY;
        for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
            let t = simulate(framework, app, &cluster, nodes).total;
            prop_assert!(t > 0.0);
            prop_assert!(
                t <= prev * 1.001,
                "{} under {:?}: {nodes} nodes took {t} > prev {prev}",
                app.name, framework
            );
            prev = t;
        }
    }

    /// Glasswing's simulated total is never worse than the Hadoop model's
    /// on the same configuration (the paper's blanket result).
    #[test]
    fn sim_glasswing_dominates_hadoop(app_idx in 0usize..5, nodes_pow in 0u32..7) {
        let app = &AppParams::all()[app_idx];
        let cluster = ClusterParams::das4_cpu_hdfs();
        let nodes = 1usize << nodes_pow;
        let gw = simulate(FrameworkKind::Glasswing, app, &cluster, nodes).total;
        let hd = simulate(FrameworkKind::Hadoop, app, &cluster, nodes).total;
        prop_assert!(gw < hd, "{}: glasswing {gw} !< hadoop {hd} at {nodes}", app.name);
    }
}
