//! Bottleneck-advisor validation: on a job built to be kernel-bound, the
//! advisor must *name* the Kernel stage at every buffering level, and
//! the prediction must agree with measurement, in two regimes:
//!
//! * **Compute-bound** (integer burn): on this single-core host extra
//!   lanes cannot add real parallelism (EXPERIMENTS.md § methodology
//!   note), so the measured counterpart of the advisor's 0.5× service
//!   replay is physically doubling the service *rate* — halving the
//!   per-record burn. Ordering comparison only, no absolute thresholds.
//! * **Latency-bound** (per-record sleep, the shape of paced I/O): lanes
//!   overlap service waits even on one core, so here we close the loop
//!   the way `JobConfig::lane_plan` does in production — add one lane to
//!   exactly the stage the advisor named and check the measured speedup
//!   lands inside a tolerance band around the predicted `lane_scaling`,
//!   while a lane on a stage the advisor did *not* name buys less.

use std::sync::Arc;
use std::time::Duration;

use glasswing::core::{PipelineKind, StageId};
use glasswing::prelude::*;

/// A map-heavy app: every record burns a fixed budget of integer mixing
/// and/or sleeps a fixed latency in the kernel and emits one tiny pair,
/// so with free I/O the Kernel stage dominates the map pipeline by
/// orders of magnitude. Burn models a compute-bound kernel; sleep models
/// a latency-bound one (service that lanes can overlap on one core).
struct BurnMap {
    rounds: u64,
    sleep: Duration,
}

impl GwApp for BurnMap {
    fn name(&self) -> &'static str {
        "burnmap"
    }

    fn map(&self, key: &[u8], value: &[u8], emit: &Emit<'_>) {
        let mut x = value
            .iter()
            .fold(1u64, |a, &b| a.wrapping_mul(31) + b as u64);
        for _ in 0..self.rounds {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        if !self.sleep.is_zero() {
            std::thread::sleep(self.sleep);
        }
        // Emit the digest so the burn can't be optimised away.
        emit.emit(&key[..2.min(key.len())], &x.to_le_bytes());
    }

    fn reduce(
        &self,
        key: &[u8],
        values: &[&[u8]],
        state: &mut Vec<u8>,
        last: bool,
        emit: &Emit<'_>,
    ) {
        let mut acc = if state.is_empty() {
            0u64
        } else {
            u64::from_le_bytes(state[..8].try_into().unwrap())
        };
        for v in values {
            acc ^= v.iter().fold(0u64, |a, &b| (a << 8) | b as u64);
        }
        if last {
            emit.emit(key, &acc.to_le_bytes());
        } else {
            state.clear();
            state.extend_from_slice(&acc.to_le_bytes());
        }
    }
}

fn records() -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..256u32)
        .map(|i| {
            (
                format!("{i:04}").into_bytes(),
                format!("payload line {i:08}").into_bytes(),
            )
        })
        .collect()
}

fn run_app(
    buffering: Buffering,
    app: BurnMap,
    partition_threads: usize,
    plan: LanePlan,
) -> JobReport {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    let recs = records();
    dfs.write_records(
        "/advise/in",
        NodeId(0),
        512,
        1,
        recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/advise/in", "/advise/out");
    cfg.buffering = buffering;
    cfg.device_threads = 1;
    cfg.partition_threads = partition_threads;
    cfg.output_replication = 1;
    cfg.lane_plan = plan;
    cluster.run(Arc::new(app), &cfg).unwrap()
}

fn run(buffering: Buffering, rounds: u64, partition_threads: usize) -> JobReport {
    let app = BurnMap {
        rounds,
        sleep: Duration::ZERO,
    };
    run_app(buffering, app, partition_threads, LanePlan::single())
}

const ROUNDS: u64 = 50_000;

/// Best-of-3 wall time for one configuration, to shave scheduler noise.
fn best_elapsed(rounds: u64, partition_threads: usize) -> Duration {
    (0..3)
        .map(|_| run(Buffering::Double, rounds, partition_threads).elapsed)
        .min()
        .unwrap()
}

/// Best-of-3 wall time for the latency-bound kernel under a lane plan.
fn best_lane_elapsed(sleep: Duration, plan: LanePlan) -> Duration {
    (0..3)
        .map(|_| run_app(Buffering::Double, BurnMap { rounds: 0, sleep }, 1, plan).elapsed)
        .min()
        .unwrap()
}

#[test]
fn advisor_names_kernel_on_a_kernel_bound_job_at_every_buffering_level() {
    for buffering in [Buffering::Single, Buffering::Double, Buffering::Triple] {
        let report = run(buffering, ROUNDS, 1);
        let advice = &report.analysis.advice;
        assert_eq!(
            advice.bottleneck,
            Some(StageId::Kernel),
            "advisor missed the kernel bottleneck at {buffering:?}: {:?}",
            advice.lines
        );
        // The prediction itself says kernel doubling wins the largest
        // modelled speedup of all live map stages.
        let kernel_gain = advice.doubling_speedup(StageId::Kernel);
        for (stage, gain) in &advice.lane_scaling {
            assert!(
                kernel_gain >= *gain,
                "{stage:?} predicted {gain:.3} > kernel {kernel_gain:.3} at {buffering:?}"
            );
        }
        // And the kernel really did carry the busy time it was judged on.
        let map = report
            .analysis
            .pipeline(0, PipelineKind::Map)
            .expect("map pipeline present");
        let kernel = map.stage(StageId::Kernel).unwrap();
        assert!(kernel.chunks > 0 && kernel.busy_ns > 0);
    }
}

#[test]
fn predicted_bottleneck_matches_measured_doubling_speedup() {
    let base = best_elapsed(ROUNDS, 1);
    // Double the *named* stage's service rate: half the per-record burn.
    let faster_kernel = best_elapsed(ROUNDS / 2, 1);
    // Accelerate a stage the advisor did not name instead.
    let more_partition = best_elapsed(ROUNDS, 2);

    let kernel_speedup = base.as_secs_f64() / faster_kernel.as_secs_f64();
    let partition_speedup = base.as_secs_f64() / more_partition.as_secs_f64();

    // The advisor named Kernel; measurement must agree: doubling the
    // named stage's speed beats accelerating a non-bottleneck stage.
    assert!(
        kernel_speedup > partition_speedup,
        "doubling kernel speed gave {kernel_speedup:.3}x but accelerating \
         partitioning gave {partition_speedup:.3}x \
         (base {base:?}, kernel {faster_kernel:?}, partition {more_partition:?})"
    );
}

#[test]
fn lane_on_the_named_bottleneck_realizes_the_predicted_speedup() {
    // The inverted loop (DESIGN.md §3.9): ask the advisor, widen exactly
    // the stage it named, and check reality against the prediction. The
    // kernel is latency-bound (per-record sleep) so two lanes genuinely
    // overlap service even on this single-core host.
    const SLEEP: Duration = Duration::from_micros(200);

    let report = run_app(
        Buffering::Double,
        BurnMap {
            rounds: 0,
            sleep: SLEEP,
        },
        1,
        LanePlan::single(),
    );
    let advice = &report.analysis.advice;
    assert_eq!(
        advice.bottleneck,
        Some(StageId::Kernel),
        "advisor missed the latency-bound kernel: {:?}",
        advice.lines
    );
    let predicted = advice.doubling_speedup(StageId::Kernel);
    assert!(
        predicted > 1.2,
        "job not kernel-bound enough to validate lane scaling: {predicted:.3}x"
    );

    let base = best_lane_elapsed(SLEEP, LanePlan::single());
    let on_target = best_lane_elapsed(SLEEP, LanePlan::single().with_stage(StageId::Kernel, 2));
    let off_target = best_lane_elapsed(SLEEP, LanePlan::single().with_stage(StageId::Partition, 2));

    let measured = base.as_secs_f64() / on_target.as_secs_f64();
    let off_gain = base.as_secs_f64() / off_target.as_secs_f64();

    // Tolerance band: the measured gain must realise at least half of
    // the predicted one (the PR's acceptance floor) and not exceed 1.5×
    // of it — a wildly larger gain would mean the model missed the
    // bottleneck's true share of the makespan.
    let floor = 1.0 + 0.5 * (predicted - 1.0);
    let ceiling = 1.0 + 1.5 * (predicted - 1.0);
    assert!(
        measured >= floor && measured <= ceiling,
        "kernel lane gave {measured:.3}x, outside [{floor:.3}, {ceiling:.3}] \
         around predicted {predicted:.3}x (base {base:?}, lanes=2 {on_target:?})"
    );
    // And the same lane spent off-bottleneck must buy strictly less.
    assert!(
        measured > off_gain,
        "a lane on the named bottleneck gave {measured:.3}x but a lane on \
         partition gave {off_gain:.3}x (base {base:?}, off {off_target:?})"
    );
}
