//! Iterative K-Means on the Glasswing engine.
//!
//! The paper runs a single iteration "since this shows the performance
//! well for all frameworks", but the application is iterative; this test
//! drives several iterations end-to-end through
//! [`glasswing::apps::kmeans::run_iterations`] (each iteration a full
//! MapReduce job whose output seeds the next) on synthetic well-separated
//! clusters and checks convergence onto the true centroids.

use std::sync::Arc;

use glasswing::apps::kmeans::run_iterations;
use glasswing::apps::workloads::{clustered_points, KmeansSpec};
use glasswing::prelude::*;

#[test]
fn kmeans_converges_to_true_centroids() {
    let spec = KmeansSpec {
        points: 3000,
        dims: 3,
        centers: 4,
        seed: 2024,
    };
    let spread = 5.0;
    let (points, truth) = clustered_points(&spec, spread);

    let dfs = Arc::new(Dfs::new(DfsConfig::new(2).free_io()));
    dfs.write_records(
        "/km/in",
        NodeId(0),
        16 << 10,
        3,
        points.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/km/in", "/km/out");
    cfg.device_threads = 2;

    // Initialise near (but off) the true centroids so cluster identity is
    // stable and convergence is the thing under test.
    let init: Vec<f32> = truth.iter().map(|t| t + spread * 1.5).collect();
    let run = run_iterations(&cluster, &cfg, init, spec.centers, spec.dims, 4).unwrap();

    // Movement must shrink (convergence) ...
    assert!(
        run.movements.last().unwrap() < &(run.movements[0] * 0.2),
        "movements did not shrink: {:?}",
        run.movements
    );
    // ... onto the true centroids, within the noise scale.
    for c in 0..spec.centers {
        for d in 0..spec.dims {
            let got = run.centers[c * spec.dims + d];
            let want = truth[c * spec.dims + d];
            assert!(
                (got - want).abs() < spread,
                "center {c} dim {d}: {got} vs true {want}"
            );
        }
    }
}

#[test]
fn stationary_start_stays_stationary() {
    // Starting exactly at the converged solution, iterations barely move.
    let spec = KmeansSpec {
        points: 1500,
        dims: 2,
        centers: 3,
        seed: 7,
    };
    let (points, truth) = clustered_points(&spec, 2.0);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(1).free_io()));
    dfs.write_records(
        "/km/in",
        NodeId(0),
        16 << 10,
        1,
        points.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .unwrap();
    let cluster = Cluster::new(dfs, NetProfile::unlimited());
    let mut cfg = JobConfig::new("/km/in", "/km/stat");
    cfg.device_threads = 1;
    let run = run_iterations(&cluster, &cfg, truth.clone(), spec.centers, spec.dims, 2).unwrap();
    // First iteration snaps truth -> sample means (small), second is ~0.
    assert!(
        run.movements[1] <= run.movements[0] + 1e-3,
        "{:?}",
        run.movements
    );
}
