//! Live telemetry plane, end to end on the resident service.
//!
//! Four pillars:
//!
//! 1. **Telemetry under chaos** — the loop-closer with the `gw-chaos`
//!    gray plane: across a seeded sweep of gray schedules, every seed
//!    that arms a persistent slowdown must surface a `node-slow` health
//!    finding naming the *physical* slowed node within a bounded number
//!    of snapshot windows after the node first serves chunks, and
//!    fault-free runs must stay finding-free.
//! 2. **Determinism split** — the logical-counter digest is
//!    byte-identical across runs and across pipeline buffering levels
//!    for a fixed submission sequence; timing histograms are excluded.
//! 3. **Plane robustness** — snapshot-ring wraparound and zero-job idle
//!    pumps never panic and keep exporting valid documents.
//! 4. **Exporters** — live Prometheus text passes the in-repo linter;
//!    snapshot JSON is valid and schema-pinned.

use std::sync::Arc;
use std::time::Duration;

use glasswing::apps::workloads::{web_logs, LogSpec};
use glasswing::apps::PageviewCount;
use glasswing::prelude::*;
use glasswing::service::{JobTicket, ServiceConfig, TelemetryConfig, TenantSpec};
use glasswing::telemetry::{validate_exposition, HealthConfig, HealthFinding};

const NODES: u32 = 4;
const SLOTS: u32 = 4;

fn input_path(seed: u64) -> String {
    format!("/svc/in-{seed}")
}

fn write_inputs(dfs: &Dfs, seeds: &[u64]) {
    for &seed in seeds {
        let records = web_logs(&LogSpec {
            entries: 600,
            hot_urls: 16,
            hot_fraction: 0.2,
            seed,
        });
        dfs.write_records(
            &input_path(seed),
            NodeId(0),
            200,
            3,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )
        .unwrap();
    }
}

fn job_cfg(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::new(input_path(seed), "/ignored");
    cfg.device_threads = 1;
    cfg.partitions_per_node = 2;
    cfg.collector_capacity = 1 << 20;
    cfg.cache_threshold = 1 << 16;
    cfg.job_deadline = Some(Duration::from_secs(60));
    cfg
}

fn telemetry_cfg() -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        // The tests pump explicitly; keep the background cadence slow so
        // window boundaries are (mostly) where the test puts them.
        snapshot_every: Duration::from_millis(400),
        ring_capacity: 256,
        health: HealthConfig {
            // Gray slowdowns are ≥ 1.5×; with 4 nodes the fleet median
            // stays near the healthy base, so 1.35 splits signal from
            // scheduling noise.
            node_ratio: 1.35,
            confirm: 2,
            min_chunks: 4,
            ewma_alpha: 0.5,
            slo_p99_ms: Default::default(),
        },
    }
}

fn service_over(dfs: Arc<Dfs>, telemetry: TelemetryConfig) -> Service {
    let cfg = ServiceConfig {
        cache_capacity: 0, // every run must execute
        tenants: vec![TenantSpec::new("armed", 1), TenantSpec::new("bystander", 1)],
        telemetry,
        ..ServiceConfig::default()
    };
    Service::start(Arc::new(Cluster::new(dfs, NetProfile::unlimited())), cfg)
}

fn submit(service: &Service, tenant: &str, seed: u64, plan: Option<FaultPlan>) -> JobTicket {
    service
        .submit(JobSpec {
            tenant: tenant.into(),
            app: Arc::new(PageviewCount::new()),
            cfg: job_cfg(seed),
            workload_seed: seed,
            slots: SLOTS,
            fault_plan: plan,
        })
        .expect("within admission bounds")
}

/// Run one seed's job while pumping dense snapshot windows; returns the
/// service (shut down) after the ticket resolved and a final pump.
fn run_pumped(service: &Service, ticket: JobTicket) {
    let (tx, rx) = std::sync::mpsc::channel();
    let waiter = std::thread::spawn(move || {
        let r = ticket.wait();
        let _ = tx.send(());
        r
    });
    loop {
        service.pump_telemetry_now();
        if rx.recv_timeout(Duration::from_millis(10)).is_ok() {
            break;
        }
    }
    // One trailing window so the last chunks land in a capture.
    service.pump_telemetry_now();
    waiter.join().unwrap().expect("job finishes");
}

#[test]
fn gray_sweep_detector_names_the_slowed_node_within_bounded_windows() {
    let seeds: Vec<u64> = (0..10).collect();
    let mut armed_slow = 0usize;
    for &seed in &seeds {
        let plan = FaultPlan::gray_from_seed(seed, SLOTS);
        let Some((slow_node, factor)) = plan.gray_slowdown() else {
            continue; // stall/flaky-only schedules are covered by extras below
        };
        armed_slow += 1;
        let schedule = plan.describe();

        let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
        write_inputs(&dfs, &[seed + 1000]);
        let service = service_over(dfs, telemetry_cfg());
        let ticket = submit(&service, "armed", seed + 1000, Some(plan));
        run_pumped(&service, ticket);

        let tele = service.telemetry().expect("telemetry enabled");
        let findings = tele.findings();
        let named: Vec<_> = findings
            .iter()
            .filter_map(|f| match f {
                HealthFinding::NodeSlow { node, seq, .. } => Some((*node, *seq)),
                _ => None,
            })
            .collect();
        assert!(
            named.iter().any(|(n, _)| *n == slow_node),
            "seed {seed} ({schedule}, x{factor}): no node-slow finding named node \
             {slow_node}; findings: {findings:?}"
        );

        // Bounded detection latency: the finding fires within a handful
        // of windows after the slowed node first serves chunks.
        let snaps = tele.snapshots();
        let onset = snaps
            .iter()
            .find(|s| {
                s.histograms.iter().any(|h| {
                    h.name == "gw_node_chunk_wall_ns"
                        && h.label("node") == Some(slow_node.to_string().as_str())
                        && h.delta_count > 0
                })
            })
            .map(|s| s.seq)
            .expect("the slowed node served chunks in some window");
        let fired = named
            .iter()
            .filter(|(n, _)| *n == slow_node)
            .map(|(_, s)| *s)
            .min()
            .unwrap();
        assert!(
            fired >= onset && fired - onset <= 8,
            "seed {seed} ({schedule}): detection latency {} windows (onset {onset}, \
             fired {fired}) exceeds the bound",
            fired - onset
        );
        println!(
            "seed {seed}: x{:.1} slowdown on node {slow_node} detected in {} windows",
            factor as f64 / 100.0,
            fired - onset
        );
    }
    assert!(
        armed_slow >= 3,
        "the sweep must exercise several slowdown schedules, got {armed_slow}"
    );
}

#[test]
fn clean_runs_raise_no_findings() {
    for seed in [2000u64, 2001, 2002] {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
        write_inputs(&dfs, &[seed]);
        let service = service_over(dfs, telemetry_cfg());
        let ticket = submit(&service, "armed", seed, None);
        run_pumped(&service, ticket);
        let tele = service.telemetry().expect("telemetry enabled");
        assert!(
            tele.findings().is_empty(),
            "seed {seed}: fault-free run raised findings: {:?}",
            tele.findings()
        );
    }
}

#[test]
fn slo_burn_names_the_overbudget_tenant() {
    let mut tcfg = telemetry_cfg();
    // A 1µs p99 turnaround budget: any real job burns it.
    tcfg.health.slo_p99_ms.insert("armed".into(), 0.001);
    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    write_inputs(&dfs, &[3000]);
    let service = service_over(dfs, tcfg);
    let ticket = submit(&service, "armed", 3000, None);
    run_pumped(&service, ticket);
    let tele = service.telemetry().unwrap();
    let burn = tele
        .findings()
        .into_iter()
        .find(|f| f.kind() == "slo-burn")
        .unwrap_or_else(|| panic!("no slo-burn finding: {:?}", tele.findings()));
    match burn {
        HealthFinding::TenantSloBurn {
            tenant,
            p99_ms,
            budget_ms,
            ..
        } => {
            assert_eq!(tenant, "armed");
            assert!(p99_ms > budget_ms);
        }
        other => panic!("unexpected finding {other:?}"),
    }
}

#[test]
fn idle_pumps_and_ring_wraparound_never_panic() {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(2).free_io()));
    let mut tcfg = telemetry_cfg();
    tcfg.ring_capacity = 4;
    let cfg = ServiceConfig {
        tenants: vec![TenantSpec::new("armed", 1)],
        telemetry: tcfg,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::new(Cluster::new(dfs, NetProfile::unlimited())), cfg);
    // Zero jobs submitted: every pump is an idle window.
    for _ in 0..10 {
        assert!(service.pump_telemetry_now());
    }
    let tele = service.telemetry().unwrap();
    let snaps = tele.snapshots();
    assert_eq!(snaps.len(), 4, "ring wrapped to capacity");
    let seqs: Vec<u64> = snaps.iter().map(|s| s.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1) && *seqs.last().unwrap() >= 10,
        "monotone seqs surviving wraparound: {seqs:?}"
    );
    for s in &snaps {
        let json = s.to_json();
        glasswing::trace::validate_json(&json)
            .unwrap_or_else(|e| panic!("invalid snapshot JSON: {e}\n{json}"));
        assert!(json.starts_with("{\"schema\":\"gw-telemetry-v1\""));
    }
    // Exposition of an idle (gauges-only) registry still lints clean.
    validate_exposition(&tele.prometheus()).expect("idle exposition lints");
}

#[test]
fn digest_is_identical_across_runs_and_buffering_levels() {
    let digest_of = |buffering: Buffering| -> (String, Vec<(String, u64)>) {
        let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
        write_inputs(&dfs, &[4000, 4001]);
        let service = service_over(dfs, telemetry_cfg());
        for seed in [4000u64, 4001] {
            let mut cfg = job_cfg(seed);
            cfg.buffering = buffering;
            let ticket = service
                .submit(JobSpec {
                    tenant: "armed".into(),
                    app: Arc::new(PageviewCount::new()),
                    cfg,
                    workload_seed: seed,
                    slots: SLOTS,
                    fault_plan: None,
                })
                .unwrap();
            // Sequential waits: no cache races, so the logical counters
            // are a pure function of the submission sequence.
            ticket.wait().unwrap();
        }
        service.pump_telemetry_now();
        let tele = service.telemetry().unwrap();
        let logical = tele
            .latest()
            .unwrap()
            .counters
            .iter()
            .filter(|c| c.deterministic)
            .map(|c| (format!("{}{:?}", c.name, c.labels), c.value))
            .collect();
        (tele.determinism_digest(), logical)
    };

    let a1 = digest_of(Buffering::Double);
    let a2 = digest_of(Buffering::Double);
    assert_eq!(a1.1, a2.1, "same sequence, same logical counters");
    assert_eq!(a1.0, a2.0, "same sequence, same digest, across runs");
    let b = digest_of(Buffering::Single);
    let c = digest_of(Buffering::Triple);
    assert_eq!(a1.1, b.1, "buffering level must not leak into the digest");
    assert_eq!(a1.0, b.0);
    assert_eq!(a1.1, c.1, "buffering level must not leak into the digest");
    assert_eq!(a1.0, c.0);
    assert!(a1.0.starts_with("tele-") && a1.0.len() == 21, "{}", a1.0);
}

#[test]
fn exporters_stay_valid_on_a_live_service() {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(NODES).free_io()));
    write_inputs(&dfs, &[5000, 5001]);
    let service = service_over(dfs, telemetry_cfg());
    let t1 = submit(&service, "armed", 5000, None);
    let t2 = submit(&service, "bystander", 5001, None);
    run_pumped(&service, t1);
    t2.wait().unwrap();
    service.pump_telemetry_now();

    let tele = service.telemetry().unwrap();
    let text = tele.prometheus();
    validate_exposition(&text).unwrap_or_else(|e| panic!("exposition invalid: {e}\n{text}"));
    assert!(text.contains("# TYPE gw_service_submitted_total counter"));
    assert!(text.contains("gw_service_submitted_total{tenant=\"armed\"} 1"));
    assert!(text.contains("# TYPE gw_node_chunk_wall_ns histogram"));
    assert!(text.contains("gw_service_completed_total 2"));

    let json = tele.snapshot_json().expect("pumped at least once");
    glasswing::trace::validate_json(&json).unwrap_or_else(|e| panic!("invalid snapshot JSON: {e}"));
    assert!(json.contains("\"digest\":\"tele-"));

    // Per-node chunk series exist for every slot the jobs ran on.
    let latest = tele.latest().unwrap();
    let chunk_nodes = latest
        .histograms
        .iter()
        .filter(|h| h.name == "gw_node_chunk_wall_ns")
        .count();
    assert_eq!(chunk_nodes, NODES as usize, "one series per physical node");
}
