//! Golden-file test for the Chrome `trace_event` exporter (ISSUE:
//! satellite 2).
//!
//! The exporter writes JSON by hand (no vendored JSON crate), so its
//! schema — field order included — is part of the crate's contract: a
//! reordered field or a changed lane name silently breaks every tool
//! that consumes dumped traces. The fixture pins the full document for a
//! small two-node trace; regenerate it with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_chrome_golden
//! ```
//!
//! and review the diff like any other API change. Alongside the byte
//! comparison, the test checks the structural invariants any Chrome
//! trace viewer relies on: the document is valid JSON (RFC 8259,
//! hand-rolled validator) and `B`/`E` span events nest properly per
//! `(pid, tid)` lane.

use glasswing::core::{
    validate_json, CounterId, Event, EventKind, LaneId, MarkId, PipelineKind, ReadClass, Realm,
    SpanId, StageId, Trace,
};

const GOLDEN: &str = include_str!("fixtures/golden_trace.json");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace.json"
);

fn ev(at_ns: u64, kind: EventKind) -> Event {
    Event { at_ns, kind }
}

fn pipeline_lane(node: u32, stage: StageId) -> LaneId {
    LaneId {
        job: 0,
        node,
        realm: Realm::Pipeline {
            kind: PipelineKind::Map,
            stage,
            lane: 0,
        },
    }
}

/// A small but representative trace: two nodes; chunk spans with a
/// nested token wait; a fused-passage mark; storage, shuffle and chaos
/// lanes. Timestamps are fixed by hand so the export is reproducible.
fn sample_trace() -> Trace {
    let chunk = |seq| SpanId::Chunk { seq };
    let input0 = vec![
        ev(100, EventKind::Begin { span: chunk(0) }),
        ev(
            900,
            EventKind::End {
                span: chunk(0),
                wall_ns: 800,
                modeled_ns: 800,
                accounted: true,
            },
        ),
        ev(
            950,
            EventKind::Instant {
                mark: MarkId::FusedPassage {
                    fused: StageId::Stage,
                    seq: 0,
                },
            },
        ),
    ];
    let kernel0 = vec![
        ev(
            1_000,
            EventKind::Begin {
                span: SpanId::TokenWait { group: 0, seq: 0 },
            },
        ),
        ev(
            1_200,
            EventKind::End {
                span: SpanId::TokenWait { group: 0, seq: 0 },
                wall_ns: 0,
                modeled_ns: 0,
                accounted: false,
            },
        ),
        ev(1_250, EventKind::Begin { span: chunk(0) }),
        ev(
            3_250,
            EventKind::End {
                span: chunk(0),
                wall_ns: 2_000,
                modeled_ns: 2_600,
                accounted: true,
            },
        ),
    ];
    let storage0 = vec![
        ev(
            150,
            EventKind::Instant {
                mark: MarkId::DfsRead {
                    block: 0,
                    class: ReadClass::Local,
                },
            },
        ),
        ev(
            160,
            EventKind::Count {
                counter: CounterId::DfsReadLocal,
                delta: 1,
            },
        ),
        ev(
            170,
            EventKind::Count {
                counter: CounterId::DfsReadBytes,
                delta: 4_096,
            },
        ),
    ];
    let net_tx0 = vec![
        ev(
            3_400,
            EventKind::Count {
                counter: CounterId::ShuffleSendMsgs,
                delta: 1,
            },
        ),
        ev(
            3_410,
            EventKind::Count {
                counter: CounterId::ShuffleSendBytes,
                delta: 640,
            },
        ),
    ];
    let net_rx1 = vec![ev(
        3_900,
        EventKind::Count {
            counter: CounterId::ShuffleRecvMsgs,
            delta: 1,
        },
    )];
    let chaos1 = vec![
        ev(
            10,
            EventKind::Instant {
                mark: MarkId::FaultArmed {
                    kind: "crash",
                    detail: 2,
                },
            },
        ),
        ev(
            5_000,
            EventKind::Instant {
                mark: MarkId::CrashFired {
                    site: "map-kernel",
                    after: 2,
                },
            },
        ),
    ];
    Trace {
        lanes: vec![
            (pipeline_lane(0, StageId::Input), input0),
            (pipeline_lane(0, StageId::Kernel), kernel0),
            (
                LaneId {
                    job: 0,
                    node: 0,
                    realm: Realm::Storage,
                },
                storage0,
            ),
            (
                LaneId {
                    job: 0,
                    node: 0,
                    realm: Realm::Net,
                },
                net_tx0,
            ),
            (
                LaneId {
                    job: 0,
                    node: 1,
                    realm: Realm::NetRx,
                },
                net_rx1,
            ),
            (
                LaneId {
                    job: 0,
                    node: 1,
                    realm: Realm::Chaos,
                },
                chaos1,
            ),
        ],
    }
}

/// Pull the events back out of the exported document, leaning on the
/// exporter's pinned field order (`name, ph, pid, tid, …`): each event
/// object starts `{"name":"…","ph":"X","pid":N,"tid":M`.
fn parse_events(json: &str) -> Vec<(String, char, u32, u32)> {
    // Anchor on `"ph"` — exactly one per event, and never inside `args`
    // (metadata `args` objects also contain a `"name"` key, so the event
    // name is the *last* `{"name":"` before each `"ph"`).
    let mut events = Vec::new();
    let pieces: Vec<&str> = json.split("\"ph\":\"").collect();
    for i in 1..pieces.len() {
        let before = pieces[i - 1];
        let name_at = before.rfind("{\"name\":\"").unwrap() + "{\"name\":\"".len();
        let name = before[name_at..].split('"').next().unwrap();
        let rest = pieces[i];
        let ph = rest.chars().next().unwrap();
        let pid: u32 = rest
            .split("\"pid\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .parse()
            .unwrap();
        let tid: u32 = rest
            .split("\"tid\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .parse()
            .unwrap();
        events.push((name.to_string(), ph, pid, tid));
    }
    events
}

#[test]
fn exporter_output_matches_the_checked_in_golden_file() {
    let json = sample_trace().chrome_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, format!("{json}\n")).unwrap();
        return;
    }
    assert_eq!(
        json,
        GOLDEN.trim_end(),
        "chrome export drifted from the golden fixture; \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn exported_document_is_valid_json() {
    let json = sample_trace().chrome_json();
    validate_json(&json).expect("chrome export must be RFC 8259 JSON");
    // And so is the fixture itself (guards hand-edits).
    validate_json(GOLDEN.trim_end()).expect("golden fixture must be valid JSON");
}

#[test]
fn spans_nest_properly_within_every_lane() {
    let json = sample_trace().chrome_json();
    let mut stacks: std::collections::BTreeMap<(u32, u32), Vec<String>> =
        std::collections::BTreeMap::new();
    for (name, ph, pid, tid) in parse_events(&json) {
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            'B' => stack.push(name),
            'E' => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E event {name:?} on lane ({pid},{tid}) with no open span")
                });
                assert_eq!(open, name, "span E must close the innermost open B");
            }
            'i' | 'C' | 'M' => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), stack) in stacks {
        assert!(
            stack.is_empty(),
            "lane ({pid},{tid}) ended with unclosed spans {stack:?}"
        );
    }
}

#[test]
fn every_lane_keeps_its_own_thread() {
    let json = sample_trace().chrome_json();
    // 2 nodes → 2 pids; node 0 has 4 lanes, node 1 has 2.
    for expect in [
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"map/input\"}}",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"map/kernel\"}}",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,\"args\":{\"name\":\"storage\"}}",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3,\"args\":{\"name\":\"net-tx\"}}",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"net-rx\"}}",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"chaos\"}}",
    ] {
        assert!(json.contains(expect), "missing metadata record {expect}");
    }
}
