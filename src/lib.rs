//! # Glasswing-rs
//!
//! A Rust reproduction of **Glasswing** — *"Scaling MapReduce Vertically
//! and Horizontally"* (El-Helw, Hofman, Bal; SC 2014): a MapReduce
//! framework built around a 5-stage pipeline that overlaps disk I/O,
//! host↔device transfers, kernel computation and network communication,
//! with OpenCL-style fine-grained parallelism inside every node.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`gw-core`) — the engine: pipelines, collectors, cluster
//!   runtime, configuration and schedule model;
//! * [`device`] (`gw-device`) — the OpenCL-like compute-device layer;
//! * [`storage`] (`gw-storage`) — HDFS-like DFS, local FS, SeqFile format;
//! * [`net`] (`gw-net`) — the throttled in-process cluster fabric;
//! * [`intermediate`] (`gw-intermediate`) — partition cache, compression,
//!   spills and k-way merging;
//! * [`chaos`] (`gw-chaos`) — seeded deterministic fault injection for
//!   exercising the engine's fault tolerance;
//! * [`service`] (`gw-service`) — the resident multi-tenant job service:
//!   admission control, weighted-fair slot scheduling and a byte-exact
//!   result cache over one shared cluster;
//! * [`telemetry`] (`gw-telemetry`) — the live telemetry plane: metrics
//!   registry, snapshot ring, Prometheus/JSON exporters and the
//!   SLO-driven health detector;
//! * [`apps`] (`gw-apps`) — the paper's five evaluation applications;
//! * [`baseline`] (`gw-baseline`) — Hadoop-model and GPMR-model engines;
//! * [`sim`] (`gw-sim`) — the discrete-event cluster simulator behind the
//!   horizontal-scalability figures.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use glasswing::prelude::*;
//!
//! // A 2-node in-process cluster over an HDFS-like store.
//! let dfs = Arc::new(Dfs::new(DfsConfig::new(2).free_io()));
//! let lines = [
//!     ("l1", "glasswing scales mapreduce"),
//!     ("l2", "mapreduce scales with glasswing"),
//! ];
//! dfs.write_records(
//!     "/demo/in", NodeId(0), 64, 2,
//!     lines.iter().map(|(k, v)| (k.as_bytes(), v.as_bytes())),
//! ).unwrap();
//!
//! let cluster = Cluster::new(dfs, NetProfile::unlimited());
//! let cfg = JobConfig::new("/demo/in", "/demo/out");
//! let report = cluster.run(Arc::new(WordCount::new()), &cfg).unwrap();
//! let output = read_job_output(cluster.store(), &report).unwrap();
//! assert!(output.iter().any(|(k, _)| k == b"glasswing"));
//! ```

pub use gw_apps as apps;
pub use gw_baseline as baseline;
pub use gw_chaos as chaos;
pub use gw_core as core;
pub use gw_device as device;
pub use gw_intermediate as intermediate;
pub use gw_net as net;
pub use gw_service as service;
pub use gw_sim as sim;
pub use gw_storage as storage;
pub use gw_telemetry as telemetry;
pub use gw_trace as trace;

/// Commonly used items in one import.
pub mod prelude {
    pub use gw_apps::{KMeans, MatMul, PageviewCount, TeraSort, WordCount};
    pub use gw_chaos::{CrashSite, FaultPlan, SpillOp};
    pub use gw_core::cluster::read_job_output;
    pub use gw_core::{
        Buffering, Cluster, CollectorKind, Combiner, Emit, GwApp, JobConfig, JobReport, LanePlan,
        MetricsSummary, NodeId, PerfAnalysis, SpeculationConfig, SpeculationReport, TimingMode,
        Trace, Tracer,
    };
    pub use gw_device::DeviceProfile;
    pub use gw_net::NetProfile;
    pub use gw_service::{
        JobSpec, RejectReason, Service, ServiceConfig, ServiceError, TelemetryConfig, TenantSpec,
    };
    pub use gw_storage::split::{FileStore, FileStoreExt};
    pub use gw_storage::{Dfs, DfsConfig, LocalFs};
    pub use gw_telemetry::{HealthConfig, HealthFinding, Registry, SnapshotRing};
}
