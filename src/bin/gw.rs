//! `gw` — command-line driver for the Glasswing reproduction.
//!
//! ```text
//! gw wordcount  [--nodes N] [--lines L] [--collector hash|pool] [--no-combiner]
//! gw pageviews  [--nodes N] [--entries E]
//! gw terasort   [--nodes N] [--records R] [--partitions-per-node P]
//! gw kmeans     [--nodes N] [--points P] [--centers K] [--dims D] [--iterations I] [--device cpu|gtx480|k20m|phi]
//! gw matmul     [--nodes N] [--n SIZE] [--tile T]
//! gw simulate   --app pvc|wc|ts|km|km64|mm --framework glasswing|hadoop|gpmr [--nodes-list 1,2,4,...]
//! ```
//!
//! Every job runs on an in-process cluster over the HDFS-like store,
//! prints a timing report, and verifies its output against the sequential
//! reference implementation.

use std::collections::HashMap;
use std::sync::Arc;

use glasswing::apps::workloads::{self, CorpusSpec, KmeansSpec, LogSpec, MatmulSpec};
use glasswing::apps::{codec, reference, MatMul, PageviewCount, TeraSort, WordCount};
use glasswing::core::StageId;
use glasswing::prelude::*;
use glasswing::sim;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, opts)) = parse(&args) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = match cmd.as_str() {
        "wordcount" => wordcount(&opts),
        "pageviews" => pageviews(&opts),
        "terasort" => terasort(&opts),
        "kmeans" => kmeans(&opts),
        "matmul" => matmul(&opts),
        "simulate" => simulate(&opts),
        _ => {
            eprintln!("unknown command `{cmd}`\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str =
    "usage: gw <wordcount|pageviews|terasort|kmeans|matmul|simulate> [--opt value]...
run `gw <command> --help` hints inline; see README.md for details";

type Opts = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Opts)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut opts = HashMap::new();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?.to_string();
        // Boolean flags take no value.
        if key == "no-combiner" || key == "help" {
            opts.insert(key, "true".into());
            continue;
        }
        let value = it.next()?.clone();
        opts.insert(key, value);
    }
    Some((cmd, opts))
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_cluster(records: &workloads::Records, nodes: u32, block: usize) -> Cluster {
    let dfs = Arc::new(Dfs::new(DfsConfig::new(nodes)));
    dfs.write_records(
        "/cli/in",
        NodeId(0),
        block,
        3,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
    .expect("load input");
    Cluster::new(dfs, NetProfile::ipoib_qdr())
}

fn base_cfg(opts: &Opts) -> JobConfig {
    let mut cfg = JobConfig::new("/cli/in", "/cli/out");
    cfg.partitions_per_node = get(opts, "partitions-per-node", 2u32);
    cfg.partition_threads = get(opts, "partition-threads", 2usize);
    cfg.max_task_retries = get(opts, "retries", 2usize);
    if let Some(collector) = opts.get("collector") {
        cfg.collector = match collector.as_str() {
            "pool" => CollectorKind::BufferPool,
            _ => CollectorKind::HashTable,
        };
    }
    if let Some(device) = opts.get("device") {
        cfg.device = match device.as_str() {
            "gtx480" => DeviceProfile::gtx480(),
            "k20m" => DeviceProfile::k20m(),
            "phi" => DeviceProfile::xeon_phi(),
            _ => DeviceProfile::host(),
        };
        if device != "cpu" {
            cfg.timing = TimingMode::Modeled;
        }
    }
    cfg
}

fn print_report(report: &JobReport) {
    println!("\nelapsed:       {:?}", report.elapsed);
    println!("merge delay:   {:?}", report.merge_delay());
    println!("records in:    {}", report.records_mapped());
    println!("records out:   {}", report.records_out());
    let retried: usize = report.nodes.iter().map(|n| n.map.tasks_retried).sum();
    if retried > 0 {
        println!("tasks retried: {retried}");
    }
    let timers = report.map_timers_total();
    println!("map stage totals:");
    for stage in StageId::ALL {
        let t = timers.wall(stage);
        if !t.is_zero() {
            println!("  {:<10} {t:?}", stage.name());
        }
    }
}

fn wordcount(opts: &Opts) -> Result<(), String> {
    let spec = CorpusSpec {
        lines: get(opts, "lines", 20_000),
        vocabulary: get(opts, "vocabulary", 20_000),
        ..Default::default()
    };
    let nodes = get(opts, "nodes", 2u32);
    let recs = workloads::text_corpus(&spec);
    let cluster = build_cluster(&recs, nodes, 128 << 10);
    let app: Arc<dyn GwApp> = if opts.contains_key("no-combiner") {
        Arc::new(WordCount::without_combiner())
    } else {
        Arc::new(WordCount::new())
    };
    let report = cluster
        .run(app, &base_cfg(opts))
        .map_err(|e| e.to_string())?;
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    let expect = reference::wordcount(&recs);
    println!(
        "wordcount: {} lines, {nodes} nodes, {} distinct words — output {}",
        spec.lines,
        out.len(),
        if out == expect {
            "VERIFIED"
        } else {
            "MISMATCH"
        }
    );
    out.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (w, c) in out.iter().take(5) {
        println!("  {:<14} {c}", String::from_utf8_lossy(w));
    }
    print_report(&report);
    Ok(())
}

fn pageviews(opts: &Opts) -> Result<(), String> {
    let spec = LogSpec {
        entries: get(opts, "entries", 20_000),
        ..Default::default()
    };
    let nodes = get(opts, "nodes", 2u32);
    let logs = workloads::web_logs(&spec);
    let cluster = build_cluster(&logs, nodes, 128 << 10);
    let report = cluster
        .run(Arc::new(PageviewCount::new()), &base_cfg(opts))
        .map_err(|e| e.to_string())?;
    let mut out: Vec<(Vec<u8>, u64)> = read_job_output(cluster.store(), &report)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(k, v)| (k, codec::dec_u64(&v)))
        .collect();
    out.sort();
    let verified = out == reference::pageviews(&logs);
    println!(
        "pageviews: {} entries, {nodes} nodes, {} distinct URLs — output {}",
        spec.entries,
        out.len(),
        if verified { "VERIFIED" } else { "MISMATCH" }
    );
    print_report(&report);
    Ok(())
}

fn terasort(opts: &Opts) -> Result<(), String> {
    let n_records = get(opts, "records", 50_000usize);
    let nodes = get(opts, "nodes", 2u32);
    let recs = workloads::teragen(n_records, get(opts, "seed", 42u64));
    let cluster = build_cluster(&recs, nodes, 256 << 10);
    let mut cfg = base_cfg(opts);
    cfg.output_replication = 1;
    let samples = workloads::sample_keys(&recs, 1000, 7);
    let app = Arc::new(TeraSort::new(samples, cfg.partitions_per_node * nodes));
    let report = cluster.run(app, &cfg).map_err(|e| e.to_string())?;
    let out = read_job_output(cluster.store(), &report).map_err(|e| e.to_string())?;
    // TeraValidate: total order + order-insensitive checksum vs the input.
    let vout =
        glasswing::apps::terasort::validate(out.iter().map(|(k, v)| (k.as_slice(), v.as_slice())));
    let vin =
        glasswing::apps::terasort::validate(recs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())));
    println!(
        "terasort: {n_records} records, {nodes} nodes — total order {}, checksum {}",
        if vout.ordered { "VERIFIED" } else { "MISMATCH" },
        if vout.records == vin.records && vout.checksum == vin.checksum {
            "VERIFIED"
        } else {
            "MISMATCH"
        },
    );
    print_report(&report);
    Ok(())
}

fn kmeans(opts: &Opts) -> Result<(), String> {
    let spec = KmeansSpec {
        points: get(opts, "points", 30_000),
        dims: get(opts, "dims", 8),
        centers: get(opts, "centers", 32),
        seed: get(opts, "seed", 11u64),
    };
    let nodes = get(opts, "nodes", 2u32);
    let iterations = get(opts, "iterations", 1usize);
    let pts = workloads::kmeans_points(&spec);
    let centers = workloads::kmeans_centers(&spec);
    println!(
        "kmeans: {} points, {} centers, {} dims, {iterations} iteration(s), {nodes} nodes",
        spec.points, spec.centers, spec.dims
    );
    let cluster = build_cluster(&pts, nodes, 256 << 10);
    let cfg = base_cfg(opts);
    let run = glasswing::apps::kmeans::run_iterations(
        &cluster,
        &cfg,
        centers,
        spec.centers,
        spec.dims,
        iterations,
    )
    .map_err(|e| e.to_string())?;
    for (i, m) in run.movements.iter().enumerate() {
        println!("  iteration {i}: total center movement {m:.3}");
    }
    Ok(())
}

fn matmul(opts: &Opts) -> Result<(), String> {
    let spec = MatmulSpec {
        n: get(opts, "n", 64),
        tile: get(opts, "tile", 16),
        seed: get(opts, "seed", 23u64),
    };
    let nodes = get(opts, "nodes", 2u32);
    let w = workloads::matmul_workload(&spec);
    let cluster = build_cluster(&w.records, nodes, 256 << 10);
    let app = Arc::new(MatMul::new(spec.tile));
    let report = cluster
        .run(app, &base_cfg(opts))
        .map_err(|e| e.to_string())?;
    let out = read_job_output(cluster.store(), &report).map_err(|e| e.to_string())?;
    let got = reference::assemble_tiles(&out, spec.n, spec.tile);
    let expect = reference::matmul(&w.a, &w.b);
    let diff = reference::max_abs_diff(&got, &expect);
    println!(
        "matmul: {0}x{0} in {1}x{1} tiles, {nodes} nodes — max |err| {diff:.2e} ({2})",
        spec.n,
        spec.tile,
        if diff < 1e-2 { "VERIFIED" } else { "MISMATCH" }
    );
    print_report(&report);
    Ok(())
}

fn simulate(opts: &Opts) -> Result<(), String> {
    let app = match opts.get("app").map(|s| s.as_str()) {
        Some("pvc") => sim::AppParams::pvc(),
        Some("wc") | None => sim::AppParams::wc(),
        Some("ts") => sim::AppParams::ts(),
        Some("km") => sim::AppParams::km_many_centers(),
        Some("km64") => sim::AppParams::km_few_centers(),
        Some("mm") => sim::AppParams::mm(),
        Some(other) => return Err(format!("unknown app `{other}`")),
    };
    let framework = match opts.get("framework").map(|s| s.as_str()) {
        Some("hadoop") => sim::FrameworkKind::Hadoop,
        Some("gpmr") => sim::FrameworkKind::GPMR,
        _ => sim::FrameworkKind::Glasswing,
    };
    let cluster = match opts.get("cluster").map(|s| s.as_str()) {
        Some("gpu") => sim::ClusterParams::das4_gpu_hdfs(),
        Some("gpu-local") => sim::ClusterParams::das4_gpu_local(),
        _ => sim::ClusterParams::das4_cpu_hdfs(),
    };
    let nodes: Vec<usize> = opts
        .get("nodes-list")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(sim::sweep::paper_node_counts);
    println!(
        "simulate: {} under {} ({:?} storage)",
        app.name,
        framework.name(),
        cluster.storage
    );
    println!(
        "{:>6} | {:>12} | {:>10} | {:>10} | {:>10}",
        "nodes", "total (s)", "map", "merge", "reduce"
    );
    for &n in &nodes {
        let r = sim::sweep::simulate(framework, &app, &cluster, n);
        println!(
            "{n:>6} | {:>12.1} | {:>10.1} | {:>10.1} | {:>10.1}",
            r.total, r.map_phase, r.merge_phase, r.reduce_phase
        );
    }
    Ok(())
}
