//! Vendored minimal stand-in for `serde_derive`.
//!
//! The vendored `serde` defines `Serialize`/`Deserialize` as marker
//! traits (no serializer backend exists in this offline workspace), so
//! the derives only need to find the type name and emit an empty impl.
//! Written against `proc_macro` directly — no syn/quote available.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        // Everything that is not an identifier (attribute groups, doc
        // comments, ...) is skipped.
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde derive: no type name found");
}

/// Generic parameters are not supported by this stand-in; every consumer
/// in the workspace derives on plain structs. Detect and fail loudly.
fn assert_no_generics(input: &TokenStream) {
    let mut after_name = false;
    let mut saw_keyword = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(ident) => {
                let s = ident.to_string();
                if saw_keyword {
                    after_name = true;
                    saw_keyword = false;
                    continue;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_keyword = true;
                }
            }
            TokenTree::Punct(p) if after_name && p.as_char() == '<' => {
                panic!("vendored serde derive does not support generic types");
            }
            _ => {
                if after_name {
                    break;
                }
            }
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    assert_no_generics(&input);
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .expect("serde derive: emit impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    assert_no_generics(&input);
    format!("impl ::serde::Deserialize for {} {{}}", type_name(input))
        .parse()
        .expect("serde derive: emit impl")
}
