//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the small slice of the `bytes` API it uses (see
//! `vendor/` in the repo root). [`Bytes`] here is an `Arc<[u8]>`-backed
//! immutable buffer: `clone()` is a refcount bump sharing one allocation,
//! which is the property the intermediate-data path relies on (cached,
//! retained, and shipped runs all alias the same arena slice).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copies once; the real crate borrows, but no
    /// caller depends on that).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_default_and_roundtrip() {
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
        let v: Vec<u8> = Bytes::from(vec![9u8, 8]).into();
        assert_eq!(v, vec![9, 8]);
    }
}
