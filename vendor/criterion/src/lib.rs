//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset its micro-benchmarks use. Measurement is deliberately
//! simple: calibrate an iteration count to a target sample duration, take
//! `sample_size` wall-clock samples, report min/mean/max per iteration.
//! No statistical regression machinery — trend tracking lives in the
//! repo's own `BENCH_*.json` files instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Benchmark driver: collects named measurements and prints a summary
/// line per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group; benchmarks inside print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Upstream-API shim: nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput (printed with the timing).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Measure one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-iteration work unit declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter label.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Conversion into a printable benchmark id (accepts `&str` too).
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Handed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
        };
        iters = iters.saturating_mul(grow.max(2));
    }
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters.max(1) as u32);
    }
    per_iter.sort_unstable();
    let min = per_iter.first().copied().unwrap_or_default();
    let max = per_iter.last().copied().unwrap_or_default();
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len().max(1) as u32;
    println!("{name:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({samples} samples x {iters} iters)");
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            ran += 1;
        });
        assert!(ran >= 3, "calibration + samples should invoke the closure");
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(100));
        g.bench_function("fast", |b| b.iter(|| black_box(0)));
        g.finish();
    }
}
