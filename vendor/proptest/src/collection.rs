//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count bound for collection strategies; converts from the
/// range/size forms the `vec` API accepts.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_cover_the_range() {
        let s = vec(any::<u8>(), 0..4);
        let mut rng = TestRng::for_case("collection-tests", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v.len() < 4);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths seen: {seen:?}");
    }

    #[test]
    fn nested_vecs_generate() {
        let s = vec(vec(any::<u8>(), 1..3), 2..=2);
        let mut rng = TestRng::for_case("collection-tests-nested", 0);
        let v = s.new_value(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|inner| (1..3).contains(&inner.len())));
    }
}
