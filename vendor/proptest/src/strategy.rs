//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw a uniform value of the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform in [-1e9, 1e9) covers the use cases
        // without NaN/inf surprises.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.unit_f64() - 0.5) * 2e9) as f32
    }
}

/// Whole-domain strategy for `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// One boxed generator arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among boxed arms of the same value type (built by
/// `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Combine pre-boxed arms.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one strategy as an arm.
    pub fn arm<S>(strategy: S) -> UnionArm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(move |rng| strategy.new_value(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        (self.arms[pick])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_tuples_and_map() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0u8..5).new_value(&mut r);
            assert!(v < 5);
            let w = (97u8..=102).new_value(&mut r);
            assert!((97..=102).contains(&w));
            let (a, b) = ((0u32..10), (0.0f64..1.0)).new_value(&mut r);
            assert!(a < 10 && (0.0..1.0).contains(&b));
            let m = (0u8..10).prop_map(|x| x as u32 * 2).new_value(&mut r);
            assert!(m < 20 && m % 2 == 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let u = Union::new(vec![Union::arm(Just(1u8)), Union::arm(Just(2u8))]);
        let mut r = rng();
        let draws: Vec<u8> = (0..100).map(|_| u.new_value(&mut r)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
        assert!(draws.iter().all(|&d| d == 1 || d == 2));
    }
}
