//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro,
//! `prop_assert*` macros, [`prop_oneof!`], [`strategy::Strategy`] with
//! `prop_map`, `any::<T>()`, [`strategy::Just`], range strategies, tuple
//! strategies, [`collection::vec`], and [`array`] strategies.
//!
//! Differences from upstream, deliberate and visible:
//!
//! - **No shrinking.** A failing case reports its inputs (`Debug`) and
//!   the deterministic case seed, not a minimized counterexample.
//! - **Deterministic by construction.** Case `i` of test `t` draws from a
//!   PRNG seeded by `hash(module_path, test name, i)`, so failures
//!   reproduce across runs and machines without a persistence file.
//! - Default case count matches upstream (256) so coverage per test stays
//!   comparable.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run deterministic randomized cases of each contained `#[test]`
/// function; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_id, case);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body };
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case}/{total} of {id} failed: {err}\n  inputs: {inputs}",
                            case = case,
                            total = config.cases,
                            id = test_id,
                            err = err,
                            inputs = inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Skip the enclosing proptest case unless the condition holds (upstream
/// rejects and redraws; here the case simply passes vacuously, which keeps
/// determinism and costs only the already-cheap draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fail the enclosing proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the enclosing proptest case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fail the enclosing proptest case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($strategy)),+
        ])
    };
}
