//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[S::Value; N]`, every element drawn from `element`.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// Array strategy drawing every element from `element`.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}

uniform_fns! {
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform8 => 8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn uniform5_fills_all_slots() {
        let s = uniform5(1u64..50);
        let mut rng = TestRng::for_case("array-tests", 0);
        for _ in 0..100 {
            let a = s.new_value(&mut rng);
            assert_eq!(a.len(), 5);
            assert!(a.iter().all(|&v| (1..50).contains(&v)));
        }
    }
}
