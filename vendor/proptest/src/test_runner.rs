//! Test execution support: configuration, case errors, and the
//! deterministic per-case PRNG.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only the fields this workspace uses exist; construct with struct
/// update syntax (`ProptestConfig { cases: 12, ..Default::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure of a single property case (produced by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic case PRNG (SplitMix64 over a seed hashed from the test
/// identifier and case number), so failures reproduce without state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of test `test_id`.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case_and_distinct_across_cases() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("mod::test", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("mod::test", 4);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
