//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset it uses: [`channel`] with multi-producer multi-consumer
//! bounded/unbounded channels. Semantics match crossbeam where the engine
//! depends on them: bounded `send` blocks when full (pipeline
//! backpressure), `recv` blocks when empty, and both unblock with a
//! disconnect error once the other side is fully dropped.

pub mod channel;
