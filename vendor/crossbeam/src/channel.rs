//! MPMC channels over `Mutex<VecDeque>` + condvars.
//!
//! Small and obvious rather than lock-free: channel traffic in this
//! workspace is chunk-granular (thousands of messages per job, not
//! millions), so a mutex queue is nowhere near the critical path.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error on [`Sender::send`]: every receiver is gone; the value is
/// returned to the caller.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Debug independent of `T` so `unwrap()` works on any payload,
/// matching upstream crossbeam.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error on [`Receiver::recv`]: channel empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error on [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

/// Error on [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `None` = unbounded. A bound of 0 behaves as 1
    /// (true rendezvous is not needed by any caller in this workspace).
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Channel holding at most `cap` in-flight messages; `send` blocks when
/// full. `cap == 0` is treated as 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Deliver a message, blocking while the channel is at capacity.
    /// Fails (returning the message) once every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .chan
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender")
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking until one arrives or every sender
    /// is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            Ok(value)
        } else if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// [`Receiver::recv`] bounded by a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.chan.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self
                .chan
                .not_empty
                .wait_timeout(state, left)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
            if result.timed_out() && state.queue.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.lock();
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            tx.send(4).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
        h.join().unwrap();
    }

    #[test]
    fn multi_consumer_partitions_the_stream() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut mine = Vec::new();
        while let Ok(v) = rx.recv() {
            mine.push(v);
        }
        let mut all = mine;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
