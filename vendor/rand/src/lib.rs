//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset it uses. [`rngs::StdRng`] here is xoshiro256++ seeded
//! through SplitMix64 — a different stream than upstream `StdRng`, which
//! is fine because every consumer in this workspace only relies on
//! *determinism for a given seed* (workload generators, chaos plans),
//! never on matching upstream rand's exact output.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges drawable by [`Rng::gen_range`]. Generic over the output type
/// (like upstream rand) so float literals in a range infer their width
/// from the call site's expected type.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire multiply-shift; the tiny modulo bias is irrelevant
                // for workload generation.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va, (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(10u32..20);
            assert!((10..20).contains(&i));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        // 37 zero bytes after filling would be a (2^-296)-probability event.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
