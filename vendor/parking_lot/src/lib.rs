//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset it uses, implemented over `std::sync`. The semantic
//! difference that matters to callers is preserved: locks are
//! **poison-free** (`lock()`/`read()`/`write()` return guards directly,
//! recovering the data if a holder panicked).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (poison-free `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the underlying std guard; it is always `Some` outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock (poison-free `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// [`Condvar::wait`] with a timeout; returns `true` if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_poison_free() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: a panicking holder does not poison.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
