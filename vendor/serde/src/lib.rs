//! Vendored minimal stand-in for the `serde` crate.
//!
//! No serializer backend exists in this offline workspace (`serde_json`
//! et al. are not vendored), so `Serialize`/`Deserialize` are marker
//! traits: deriving them documents intent and keeps type signatures
//! source-compatible with the real crate, and nothing can call into a
//! data format until one is added.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize {}
